"""Benchmark: regenerate Fig. 6 (detector incentives and report costs).

Runs the full platform — real scans, two-phase races, PoW mining,
contract payouts — so this is also the end-to-end throughput benchmark
of the whole system.
"""

import pytest

from repro.experiments import run_fig6


def test_bench_fig6(benchmark):
    result = benchmark.pedantic(
        run_fig6, kwargs={"samples": 20}, iterations=1, rounds=1
    )
    result.to_table().print()

    payout = result.payout_per_vulnerable_release

    # Shape (a): incentives track capability — top half out-earns
    # bottom half, and the 8-thread/1-thread ratio is near the paper's
    # ≈7.8 (wide band: the denominator is a small count).
    bottom = sum(payout[f"detector-{i}"] for i in (1, 2, 3, 4))
    top = sum(payout[f"detector-{i}"] for i in (5, 6, 7, 8))
    assert top > bottom
    assert 2.5 < result.capability_ratio() < 25.0

    # Shape (a): +0.01 VP adds ether within the paper's 3-23.5 band
    # (loose envelope for sampling noise).
    deltas = [result.delta_per_hundredth(f"detector-{i}") for i in range(1, 9)]
    assert min(deltas) > 0.5
    assert max(deltas) < 40.0

    # Shape (b): cost per detection report ≈ 0.011 ether, negligible
    # against incentives.
    for detector_id, cost in result.cost_per_report.items():
        if cost:
            assert cost == pytest.approx(0.011, rel=0.05)
