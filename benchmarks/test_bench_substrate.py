"""Microbenchmarks of the substrate layers.

Not paper figures — these watch the cost of the hot paths every
experiment leans on (signing, Merkle trees, block validation, the
mining model, and a full platform release lifecycle), so a substrate
regression shows up here before it distorts the figure benches.
"""

import random

import pytest

from repro.chain.block import Block, ChainRecord, GENESIS_PARENT, RecordKind
from repro.chain.chain import Blockchain
from repro.chain.consensus import MiningSimulation, make_genesis
from repro.chain.merkle import MerkleTree
from repro.chain.pow import PAPER_HASHPOWER_SHARES, mine_block
from repro.chain.validation import BlockValidator
from repro.core import PlatformConfig, SmartCrowdPlatform
from repro.crypto.hashing import hash_fields
from repro.crypto.keys import KeyPair
from repro.detection import build_detector_fleet, build_system

KEYS = KeyPair.from_seed(b"bench-keys")
DIGEST = hash_fields("bench-message")


def test_bench_ecdsa_sign(benchmark):
    signature = benchmark(KEYS.sign, DIGEST)
    assert KEYS.verify(DIGEST, signature)


def test_bench_ecdsa_verify(benchmark):
    signature = KEYS.sign(DIGEST)
    assert benchmark(KEYS.verify, DIGEST, signature)


def test_bench_merkle_tree_256_leaves(benchmark):
    payloads = [hash_fields("leaf", i) for i in range(256)]
    tree = benchmark(MerkleTree, payloads)
    assert tree.proof(100).verify(tree.root)


def test_bench_block_validation(benchmark):
    genesis = make_genesis(difficulty=100)
    chain = Blockchain(genesis)
    records = tuple(
        ChainRecord(
            kind=RecordKind.TRANSACTION,
            record_id=hash_fields("bench-rec", i),
            payload=b"x" * 64,
        )
        for i in range(32)
    )
    block = Block.assemble(
        genesis.block_id, 1, records, 1.0, 100, KEYS.address
    )
    validator = BlockValidator(require_pow=False)
    result = benchmark(validator.validate, block, chain)
    assert result.ok


def test_bench_midstate_nonce_search(benchmark):
    """Pure nonce-search throughput of the midstate miner."""
    block = Block.assemble(
        GENESIS_PARENT, 1, (), 0.0, 1 << 255, KEYS.address
    )
    benchmark(mine_block, block, 2000)
    mined = mine_block(Block.assemble(GENESIS_PARENT, 1, (), 0.0, 64, KEYS.address))
    assert mined is not None


def test_bench_mining_simulation_1000_blocks(benchmark):
    def _run():
        addresses = {
            name: KeyPair.from_seed(name.encode()).address
            for name in PAPER_HASHPOWER_SHARES
        }
        simulation = MiningSimulation.from_shares(
            PAPER_HASHPOWER_SHARES, addresses, rng=random.Random(0)
        )
        simulation.run_blocks(1000)
        return simulation

    simulation = benchmark.pedantic(_run, iterations=1, rounds=3)
    assert simulation.chain.height == 1000


def test_bench_platform_release_lifecycle(benchmark):
    """End-to-end: one vulnerable release through all four phases."""

    def _run():
        platform = SmartCrowdPlatform(
            PAPER_HASHPOWER_SHARES,
            build_detector_fleet(seed=1),
            PlatformConfig(seed=1, detection_window=600.0),
        )
        system = build_system("bench-sys", vulnerability_count=3, rng=random.Random(2))
        platform.announce_release("provider-1", system)
        platform.run_for(900.0)
        platform.finish_pending()
        return platform

    platform = benchmark.pedantic(_run, iterations=1, rounds=3)
    assert any(s.incentives_wei for s in platform.detector_stats.values())
