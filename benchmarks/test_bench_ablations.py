"""Benchmarks: mechanism ablations (DESIGN.md §6).

Not a paper figure — these quantify what each SmartCrowd mechanism is
buying, by disabling it and measuring the attack it was blocking.
"""

import pytest

from repro.experiments.ablations import (
    ablate_escrow,
    ablate_report_fee,
    ablate_two_phase,
)


def test_bench_ablate_two_phase(benchmark):
    result = benchmark(ablate_two_phase)
    result.to_table().print()

    # With the commitment the thief never wins; without it, the
    # fee-outbidding copy wins essentially always.
    assert result.rate_with == 0.0
    assert result.rate_without > 0.9


def test_bench_ablate_escrow(benchmark):
    result = benchmark(ablate_escrow)
    result.to_table().print()

    for fraction, (with_escrow, without) in result.payout_rates.items():
        assert with_escrow == 1.0
        assert without == pytest.approx(1.0 - fraction, abs=0.08)


def test_bench_ablate_report_fee(benchmark):
    result = benchmark(ablate_report_fee)
    result.to_table().print()

    fees = [fee for fee, _ in result.points]
    junk = [count for _, count in result.points]
    # Spam exposure grows monotonically as the fee drops, diverging at 0.
    assert junk == sorted(junk)
    assert junk[-1] == float("inf")
    assert fees[0] == 0.011  # the paper's operating point
