"""Benchmarks: regenerate Fig. 5 (provider balances and VPB)."""

import pytest

from repro.experiments import run_fig5a, run_fig5b


def test_bench_fig5a(benchmark):
    result = benchmark(run_fig5a)
    result.to_table().print()

    # Shape: VPB grows with hashpower and with the window; the paper's
    # reference point (14.90% HP, 10 min, I=1000) lands near 0.038.
    ordered = sorted(result.shares, key=result.shares.get)
    vpbs = [result.vpb[name][600.0] for name in ordered]
    assert vpbs == sorted(vpbs)
    assert result.vpb["provider-3"][600.0] == pytest.approx(0.038, abs=0.008)


def test_bench_fig5b(benchmark):
    result = benchmark(run_fig5b, trials=80)
    result.to_table().print()

    # Shape: ~0 balance at VPB; exactly ±10 ether per ∓0.01 VP.
    assert abs(result.mean_balance(result.vpb)) < 5.0
    vps = sorted(result.balances)
    low, mid, high = (result.mean_balance(vp) for vp in vps)
    assert low - mid == pytest.approx(10.0, abs=0.01)
    assert mid - high == pytest.approx(10.0, abs=0.01)
