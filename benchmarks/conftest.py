"""Benchmark configuration.

Each benchmark regenerates one paper table/figure, prints the
paper-vs-measured rows, and asserts the reproduction's shape criteria
(DESIGN.md §4).  Timings reported by pytest-benchmark measure the cost
of regenerating the result, making regressions in the simulation
substrate visible.
"""
