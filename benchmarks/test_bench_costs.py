"""Benchmark: regenerate the §VII gas-cost measurements."""

import pytest

from repro.experiments import run_costs


def test_bench_costs(benchmark):
    result = benchmark(run_costs, releases=3)
    result.to_table().print()

    # Paper: SRA deployment ≈ 0.095 ether; detection report ≈ 0.011.
    assert result.sra_cost_ether == pytest.approx(0.095, rel=0.02)
    assert result.report_cost_ether == pytest.approx(0.011, rel=0.05)
