"""Benchmark: detection-to-payout latency (automation responsiveness)."""

from repro.experiments.latency import run_payout_latency


def test_bench_payout_latency(benchmark):
    result = benchmark.pedantic(run_payout_latency, iterations=1, rounds=2)
    result.to_table().print()

    assert result.announce_to_pay, "campaign paid no bounties"
    # The mean sits above the 2-confirmation floor but within a few
    # block times of it — payouts are automatic, not operator-driven.
    mean = sum(result.announce_to_pay) / len(result.announce_to_pay)
    assert result.theoretical_floor * 0.8 < mean < result.theoretical_floor * 3.0
    # The R†-confirm → pay leg carries one confirmation wait.
    confirm_mean = sum(result.confirm_to_pay) / len(result.confirm_to_pay)
    assert confirm_mean > result.confirmation_depth * result.mean_block_time * 0.5
