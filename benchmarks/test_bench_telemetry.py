"""Telemetry cost gates: the observability layer must be free when off.

The disabled path is one ``telemetry.enabled`` truthiness check per
instrumented operation, measured here against a pinned copy of the
pre-telemetry mining loop (``pretelemetry_mine_block``) and gated at
≤5%.  The ledger head-state cache introduced alongside telemetry is
gated too: validating against a stable head must beat full-chain
replay by a wide margin.

Marked ``bench``, outside tier-1: ``pytest benchmarks -q -m bench``.
"""

import pytest

from repro.experiments.bench_substrate import (
    TELEMETRY_OVERHEAD_CEILING,
    run_suite,
)
from repro.chain.pow import mine_block
from repro.experiments.bench_substrate import _bench_block
from repro.telemetry import Telemetry

pytestmark = pytest.mark.bench


@pytest.fixture(scope="module")
def suite():
    return run_suite(quick=True, repeats=3, parallel_probe=False)


def test_disabled_telemetry_overhead_ceiling(suite):
    """Mining with telemetry off must stay within 5% of the pinned loop."""
    probe = suite["benchmarks"]["telemetry_overhead"]
    assert probe["disabled_ratio"] <= TELEMETRY_OVERHEAD_CEILING, (
        f"disabled-path overhead {probe['disabled_ratio']:.3f}x exceeds "
        f"the {TELEMETRY_OVERHEAD_CEILING:.2f}x ceiling"
    )


def test_ledger_cached_validation_beats_replay(suite):
    """Head-state caching must clearly beat per-validation replay."""
    probe = suite["benchmarks"]["ledger_validate"]
    assert probe["speedup"] >= 3.0, (
        f"cached validation only {probe['speedup']:.2f}x over replay"
    )


def test_enabled_telemetry_records_the_search():
    """With telemetry on, the search leaves attempts + outcome behind."""
    telemetry = Telemetry()
    block = _bench_block(difficulty=64)
    mined = mine_block(block, max_attempts=100_000, telemetry=telemetry)
    assert mined is not None
    attempts = telemetry.counter("pow.nonce_attempts").value
    assert attempts == mined.header.nonce + 1
    assert telemetry.counter("pow.searches", outcome="found").value == 1
    histogram = telemetry.histogram("pow.attempts_per_search")
    assert histogram.count == 1 and histogram.max == attempts
