"""Benchmarks: regenerate Fig. 3 (mining rewards and block time)."""

import statistics

import pytest

from repro.experiments import run_fig3a, run_fig3b


def test_bench_fig3a(benchmark):
    result = benchmark(run_fig3a, blocks=2000)
    result.to_table().print()

    # Shape: rewards are ~5 ether per block for everyone; win counts
    # track hashpower shares.
    assert result.block_reward_ether == 5.0
    total_share = sum(result.shares.values())
    for name, share in result.shares.items():
        win_fraction = result.blocks_won[name] / result.blocks_total
        assert win_fraction == pytest.approx(share / total_share, abs=0.05)


def test_bench_fig3b(benchmark):
    result = benchmark(run_fig3b, blocks=2000)
    result.to_table().print()

    # Shape: mean ≈ 15.35 s (paper), right-skewed distribution.
    assert result.mean == pytest.approx(15.35, rel=0.1)
    assert statistics.median(result.intervals) < result.mean
