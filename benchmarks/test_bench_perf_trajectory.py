"""The perf-trajectory lane: the acceptance gates of the substrate suite.

Marked ``bench`` and living outside tier-1 (``testpaths`` only collects
``tests/``): run via ``pytest benchmarks -q -m bench`` or, with the
JSON baseline written, ``scripts/run_bench.sh``.
"""

import json

import pytest

from repro.experiments.bench_substrate import run_suite, to_table

pytestmark = pytest.mark.bench


@pytest.fixture(scope="module")
def suite():
    return run_suite(quick=True, repeats=3)


def test_nonce_search_speedup_floor(suite):
    """Midstate mining must hold a >=3x speedup over the naive loop."""
    nonce = suite["benchmarks"]["nonce_search"]
    assert nonce["same_nonce_as_naive"]
    assert nonce["speedup"] >= 3.0


def test_economics_batch_speedup_floor(suite):
    """Vectorized Eq. 7/10 settlement must hold >=5x over the scalar loop."""
    econ = suite["benchmarks"]["economics_batch"]
    assert econ["identical_to_scalar"]
    assert econ["speedup"] >= 5.0


def test_query_serving_speedup_floor(suite):
    """Indexed reads must hold >=5x over the pinned full-chain scan.

    The ratio is algorithmic — O(1) dict lookups vs an O(chain) walk —
    so it is safe to gate even on a loaded single-core host.
    """
    query = suite["benchmarks"]["query_serving"]
    assert query["identical_to_scan"]
    assert query["speedup"] >= 5.0


def test_query_warm_start_speedup_floor(suite):
    """A warm start (persisted load + delta replay) must hold >=5x over
    the cold from-genesis rebuild, with parity asserted before timing."""
    query = suite["benchmarks"]["query_serving"]
    assert query["warm_start_identical_to_cold"]
    assert query["warm_start_delta_blocks"] > 0
    assert query["warm_start_speedup"] >= 5.0


def test_parallel_runner_identical(suite):
    """The jobs>1 fig5b probe must be bit-identical to serial."""
    assert suite["benchmarks"]["parallel_fig5b"]["identical_to_serial"]


def test_parallel_probes_record_speedup_gate(suite):
    """Parallel probes must say whether their ratio is gateable here."""
    import os

    expected = (os.cpu_count() or 1) > 1
    assert suite["benchmarks"]["parallel_fig5b"]["speedup_gated"] is expected
    assert suite["benchmarks"]["runner_scaling"]["speedup_gated"] is expected
    assert suite["benchmarks"]["fleet_shard"]["speedup_gated"] is expected


def test_sharded_fleet_parity_gates(suite):
    """The sharded probe's parity gates: jobs=N vs the serial oracle,
    and one shard vs the single-process engine — asserted before any
    timing, on every host."""
    shard = suite["benchmarks"]["fleet_shard"]
    assert shard["identical_to_serial"]
    assert shard["identical_to_single_process"]
    assert shard["points"]  # the scale lane actually ran


def test_suite_is_json_serializable_and_renders(suite, tmp_path):
    path = tmp_path / "BENCH_substrate.json"
    path.write_text(json.dumps(suite, indent=2, sort_keys=True))
    reloaded = json.loads(path.read_text())
    assert reloaded["suite"] == "substrate"
    expected = {
        "header_hash_cold",
        "header_hash_cached",
        "nonce_search",
        "merkle_build_256",
        "gossip_round",
        "mini_experiment",
    }
    assert expected <= set(reloaded["benchmarks"])
    rendered = to_table(suite).render()
    assert "nonce search" in rendered


def test_cached_header_hash_is_faster(suite):
    cached = suite["benchmarks"]["header_hash_cached"]
    assert cached["speedup_vs_cold"] > 5.0
