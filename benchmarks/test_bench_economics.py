"""Microbenchmarks of the vectorized economics engine.

Times the batch Eq. 7-10 paths against the scalar closed forms they
replay, on the populations the platform actually settles (hundreds to
tens of thousands of detectors per block).  Every timed comparison is
also a parity assertion: the batch engine must reproduce the scalar
wei amounts bit for bit, so a "fast but wrong" regression cannot pass.
"""

import random

import numpy as np
import pytest

from repro.core.incentives import (
    IncentiveParameters,
    detector_cost,
    detector_incentive,
    provider_punishment,
)
from repro.economics.batch import (
    detector_settlement,
    provider_punishments,
    wei_list,
)

pytestmark = pytest.mark.bench

PARAMS = IncentiveParameters()


def _population(size, seed=17):
    rng = random.Random(seed)
    counts = [float(rng.randint(0, 50)) for _ in range(size)]
    rhos = [rng.random() for _ in range(size)]
    return counts, rhos


def test_bench_scalar_settlement_10k(benchmark):
    counts, rhos = _population(10_000)

    def _settle():
        return (
            [detector_incentive(PARAMS, n, r) for n, r in zip(counts, rhos)],
            [detector_cost(PARAMS, n, r) for n, r in zip(counts, rhos)],
        )

    incentives, costs = benchmark(_settle)
    assert len(incentives) == len(costs) == 10_000


def test_bench_batch_settlement_10k(benchmark):
    counts, rhos = _population(10_000)
    counts_array = np.asarray(counts, dtype=np.float64)
    rhos_array = np.asarray(rhos, dtype=np.float64)

    incentives, costs = benchmark(
        detector_settlement, PARAMS, counts_array, rhos_array
    )
    # Parity against the scalar loop — outside the timed region.
    assert wei_list(incentives) == [
        detector_incentive(PARAMS, n, r) for n, r in zip(counts, rhos)
    ]
    assert wei_list(costs) == [
        detector_cost(PARAMS, n, r) for n, r in zip(counts, rhos)
    ]


def test_bench_batch_settlement_10k_from_lists(benchmark):
    """The list-input path: array conversion included in the timing."""
    counts, rhos = _population(10_000)
    incentives, costs = benchmark(detector_settlement, PARAMS, counts, rhos)
    assert len(wei_list(incentives)) == 10_000
    assert len(wei_list(costs)) == 10_000


def test_bench_provider_punishments_100x64(benchmark):
    """Eq. 9 over 100 providers with 64 awarded detections each."""
    rng = random.Random(23)
    awarded = [
        [float(rng.randint(0, 20)) for _ in range(64)] for _ in range(100)
    ]
    rhos = [[rng.random() for _ in range(64)] for _ in range(100)]
    deployed = [rng.randint(1, 5) for _ in range(100)]

    punishments = benchmark(provider_punishments, PARAMS, awarded, rhos, deployed)
    assert punishments == [
        provider_punishment(PARAMS, counts, provider_rhos, contracts)
        for counts, provider_rhos, contracts in zip(awarded, rhos, deployed)
    ]
