"""Benchmarks: fork-rate sweep and detector-participation equilibrium."""

import pytest

from repro.analysis.participation import (
    equilibrium_fleet_size,
    simulate_participation,
)
from repro.core.incentives import IncentiveParameters
from repro.experiments.forks import run_fork_rate
from repro.units import to_wei


def test_bench_fork_rate(benchmark):
    result = benchmark.pedantic(
        run_fork_rate, kwargs={"blocks": 200}, iterations=1, rounds=2
    )
    result.to_table().print()

    rates = [result.orphan_rate(ratio) for ratio in sorted(result.points)]
    # Negligible at the paper's operating point, rising with delay.
    assert rates[0] < 0.03
    assert rates[-1] > rates[0]


def test_bench_participation_equilibrium(benchmark):
    params = IncentiveParameters()

    def _run():
        outcome = simulate_participation(params, candidate_pool=60, epochs=120)
        return outcome

    outcome = benchmark(_run)
    print(
        f"participation: equilibrium fleet {outcome.equilibrium_size}, "
        f"coverage {outcome.final_coverage:.4f}, "
        f"member balance {outcome.final_balances[0]:.1f} ETH/epoch"
    )

    # Incentives recruit a crowd; the crowd's coverage is near-total;
    # everyone still breaks even (the entry condition).
    assert outcome.equilibrium_size >= 8
    assert outcome.final_coverage > 0.99
    assert all(balance >= 0 for balance in outcome.final_balances)
    # Bigger bounties sustain strictly more participation.
    small = equilibrium_fleet_size(IncentiveParameters(bounty_wei=to_wei(50)))
    large = equilibrium_fleet_size(IncentiveParameters(bounty_wei=to_wei(500)))
    assert large > small
