"""Benchmark: the §VI-B capability analysis (Eq. 11) and §VIII fleet mix."""

import pytest

from repro.experiments.capability_curve import (
    run_capability_curve,
    run_fleet_composition,
)


def test_bench_capability_curve(benchmark):
    result = benchmark(run_capability_curve)
    result.to_table().print()

    theory = [result.points[m][0] for m in sorted(result.points)]
    assert theory == sorted(theory)  # DC_T monotone in m
    assert theory[-1] > 0.99  # approaches 1 (§VI-B)
    for m, (closed_form, simulated) in result.points.items():
        assert simulated == pytest.approx(closed_form, abs=0.04)


def test_bench_fleet_composition(benchmark):
    result = benchmark(run_fleet_composition)
    result.to_table().print()

    assert max(result.mean_coverage, key=result.mean_coverage.get) == "mixed"
    assert result.mean_coverage["mixed"] > 0.99
