"""Benchmarks: regenerate Fig. 4 (provider incentives and punishments)."""

import pytest

from repro.experiments import run_fig4a, run_fig4b


def test_bench_fig4a(benchmark):
    result = benchmark(run_fig4a, duration=1800.0)
    result.to_table().print()

    # Shape: incentives grow with time for every provider; the top-HP
    # provider out-earns the bottom one over the full window.
    for provider in result.shares:
        assert result.at_time(provider, 1800.0) >= result.at_time(provider, 600.0)
    assert result.at_time("provider-1", 1800.0) > result.at_time("provider-5", 1800.0)


def test_bench_fig4b(benchmark):
    result = benchmark(run_fig4b)
    result.to_table().print()

    # Shape: punishment linear in VP with slope = insurance; the
    # end-to-end simulated spot check matches the closed form.
    for insurance, curve in result.curves.items():
        (vp0, p0), (vp1, p1) = curve[0], curve[-1]
        slope = (p1 - p0) / (vp1 - vp0)
        assert slope == pytest.approx(insurance, rel=0.01)
    insurance, vp, measured = result.spot_check
    assert measured == pytest.approx(vp * insurance + 0.095, rel=0.02)
