"""Benchmark: regenerate Table I (third-party scan inconsistency)."""

from repro.experiments import run_table1


def test_bench_table1(benchmark):
    result = benchmark(run_table1)
    result.to_table().print()

    # Shape criteria: the signature services report zero, jaq.alibaba
    # dominates, and pairwise overlap is strictly partial.
    for service in ("VirusTotal", "Andrototal"):
        assert all(
            counts == (0, 0, 0) for counts in result.counts[service].values()
        )
    totals = {
        service: sum(sum(counts) for counts in per_app.values())
        for service, per_app in result.counts.items()
    }
    assert max(totals, key=totals.get) == "jaq.alibaba"
    assert 0.0 < result.max_overlap() < 1.0
