"""Contract runtime: deploy/call with gas metering and atomic revert.

Stands in for the EVM the paper's prototype runs on.  Execution
semantics preserved from Ethereum:

* the caller pays ``gas × gas_price`` to the fee collector (the miner
  of the including block) whether or not the call succeeds;
* value sent with a call is credited to the contract's escrow account
  before the method body runs;
* any :class:`~repro.contracts.contract.ContractError` reverts all
  balance movements of the call (but not the gas fee);
* events are only visible for successful calls.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional

from repro.contracts.contract import (
    CallContext,
    Contract,
    ContractError,
    ContractEvent,
    ContractRuntimeApi,
    Receipt,
)
from repro.contracts.gas import DEFAULT_GAS_SCHEDULE, GasSchedule
from repro.contracts.state import BURN_ADDRESS, InsufficientFunds, WorldState
from repro.crypto.hashing import hash_fields
from repro.crypto.keys import Address
from repro.telemetry import NULL_TELEMETRY, Telemetry

__all__ = ["ContractRuntime", "Receipt"]


class ContractRuntime(ContractRuntimeApi):
    """Deterministic smart-contract host over a :class:`WorldState`."""

    def __init__(
        self,
        state: Optional[WorldState] = None,
        gas_schedule: GasSchedule = DEFAULT_GAS_SCHEDULE,
        fee_collector: Address = BURN_ADDRESS,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.state = state if state is not None else WorldState()
        self.gas = gas_schedule
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        #: Where gas fees go; the consensus layer points this at the
        #: current block's miner so fees become ψ·ω income (Eq. 8).
        self.fee_collector = fee_collector
        self.block_time: float = 0.0
        self._contracts: Dict[Address, Contract] = {}
        self._events: List[ContractEvent] = []
        self._pending_events: List[ContractEvent] = []
        self._deploy_counter = itertools.count()
        #: Escrow outflows of the call in flight (committed on success).
        self._pending_payout_wei = 0
        self._pending_payouts = 0

    # -- ContractRuntimeApi -------------------------------------------------

    def contract_balance(self, contract: Address) -> int:
        return self.state.balance(contract)

    def contract_pay(
        self, contract: Address, recipient: Address, amount_wei: int
    ) -> None:
        self.state.transfer(contract, recipient, amount_wei)
        # Buffered, then committed by _execute only if the call sticks —
        # a reverted call's payouts never happened.
        self._pending_payout_wei += amount_wei
        self._pending_payouts += 1

    def emit(self, event: ContractEvent) -> None:
        self._pending_events.append(event)

    # -- host interface -------------------------------------------------

    @property
    def events(self) -> List[ContractEvent]:
        """All events from successful calls, in order."""
        return list(self._events)

    def events_named(self, name: str) -> List[ContractEvent]:
        """Filter the log by event name."""
        return [event for event in self._events if event.name == name]

    def events_since(self, start: int) -> List[ContractEvent]:
        """Events committed at log position ``start`` or later.

        The log is append-only (reverted calls never commit), so a
        cursor over it is stable: incremental consumers
        (:class:`repro.query.EventIndex`) remember how many events they
        have absorbed and fetch only the suffix.
        """
        return list(self._events[start:])

    def get_contract(self, address: Address) -> Optional[Contract]:
        """Look up a deployed contract."""
        return self._contracts.get(address)

    def advance_time(self, block_time: float) -> None:
        """Move the simulated block timestamp forward."""
        if block_time < self.block_time:
            raise ValueError("block time cannot move backwards")
        self.block_time = block_time

    def _charge_gas(self, sender: Address, operation: str) -> Receipt:
        fee = self.gas.fee_wei(operation)
        self.state.transfer(sender, self.fee_collector, fee)
        return Receipt(
            success=True,
            contract=BURN_ADDRESS,
            operation=operation,
            gas_used=self.gas.gas_for(operation),
            fee_wei=fee,
        )

    def deploy(
        self,
        contract: Contract,
        sender: Address,
        value_wei: int = 0,
        operation: str = "deploy_sra",
    ) -> Receipt:
        """Deploy a contract instance, charging deployment gas.

        The new contract address is derived from the sender and a
        deployment counter (as Ethereum derives it from sender+nonce).
        """
        address = Address(
            hash_fields(b"contract", sender.value, next(self._deploy_counter))[-20:]
        )
        return self._execute(
            operation=operation,
            sender=sender,
            value_wei=value_wei,
            contract=contract,
            address=address,
            method="on_deploy",
            args=(),
            kwargs={},
            is_deploy=True,
        )

    def call(
        self,
        address: Address,
        method: str,
        sender: Address,
        value_wei: int = 0,
        operation: Optional[str] = None,
        *args: Any,
        **kwargs: Any,
    ) -> Receipt:
        """Invoke ``method`` on the contract at ``address``."""
        contract = self._contracts.get(address)
        if contract is None:
            raise ContractError(f"no contract at {address}")
        return self._execute(
            operation=operation or method,
            sender=sender,
            value_wei=value_wei,
            contract=contract,
            address=address,
            method=method,
            args=args,
            kwargs=kwargs,
            is_deploy=False,
        )

    def _execute(
        self,
        operation: str,
        sender: Address,
        value_wei: int,
        contract: Contract,
        address: Address,
        method: str,
        args: tuple,
        kwargs: dict,
        is_deploy: bool,
    ) -> Receipt:
        if value_wei < 0:
            raise ValueError("call value cannot be negative")
        # Gas is charged up front and never refunded, as on Ethereum.
        fee = self.gas.fee_wei(operation)
        gas_used = self.gas.gas_for(operation)
        try:
            self.state.transfer(sender, self.fee_collector, fee)
        except InsufficientFunds as exc:
            if self.telemetry.enabled:
                self.telemetry.counter(
                    "contract.calls", operation=operation, outcome="no_gas"
                ).inc()
            return Receipt(
                success=False,
                contract=address,
                operation=operation,
                gas_used=0,
                fee_wei=0,
                error=f"cannot pay gas: {exc}",
            )

        snapshot = self.state.snapshot()
        self._pending_events = []
        self._pending_payout_wei = 0
        self._pending_payouts = 0
        try:
            self.state.transfer(sender, address, value_wei)
            ctx = CallContext(
                sender=sender,
                value_wei=value_wei,
                block_time=self.block_time,
                runtime=self,
            )
            if is_deploy:
                contract.address = address
                contract.owner = sender
                self._contracts[address] = contract
                result = contract.on_deploy(ctx)
            else:
                bound = getattr(contract, method, None)
                if bound is None or method.startswith("_"):
                    raise ContractError(f"no public method {method!r}")
                result = bound(ctx, *args, **kwargs)
        except (ContractError, InsufficientFunds) as exc:
            self.state.restore(snapshot)
            if is_deploy:
                self._contracts.pop(address, None)
                contract.address = None
                contract.owner = None
            self._pending_events = []
            if self.telemetry.enabled:
                telemetry = self.telemetry
                telemetry.counter(
                    "contract.calls", operation=operation, outcome="reverted"
                ).inc()
                # Gas is burned even on revert, as on Ethereum.
                telemetry.counter("contract.gas_wei").inc(fee)
                telemetry.histogram(
                    "contract.gas_used", operation=operation
                ).observe(gas_used)
                telemetry.event(
                    "contract.revert", operation=operation, error=str(exc)
                )
            return Receipt(
                success=False,
                contract=address,
                operation=operation,
                gas_used=gas_used,
                fee_wei=fee,
                error=str(exc),
            )
        committed_events = tuple(self._pending_events)
        self._events.extend(committed_events)
        self._pending_events = []
        if self.telemetry.enabled:
            telemetry = self.telemetry
            telemetry.counter(
                "contract.calls", operation=operation, outcome="ok"
            ).inc()
            telemetry.counter("contract.gas_wei").inc(fee)
            telemetry.histogram(
                "contract.gas_used", operation=operation
            ).observe(gas_used)
            if value_wei:
                # Escrow inflows: insurance/bounty deposits sent with calls.
                telemetry.counter("contract.deposit_wei").inc(value_wei)
            if self._pending_payout_wei:
                telemetry.counter("contract.payout_wei").inc(
                    self._pending_payout_wei
                )
                telemetry.counter("contract.payouts").inc(self._pending_payouts)
            if is_deploy:
                telemetry.event(
                    "contract.deploy",
                    operation=operation,
                    address=address.value.hex()[:16],
                    value_wei=value_wei,
                )
        return Receipt(
            success=True,
            contract=address,
            operation=operation,
            gas_used=gas_used,
            fee_wei=fee,
            return_value=result,
            events=committed_events,
        )
