"""World state: accounts, ether balances, and conservation accounting.

The contract runtime operates on this ledger.  All balances are integer
wei so that the incentive-conservation invariant — every wei paid out
was either deposited, charged as a fee, or minted as a block reward —
can be asserted exactly in tests (see ``tests/contracts``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Tuple

from repro.crypto.keys import Address

__all__ = ["WorldState", "InsufficientFunds", "BURN_ADDRESS"]

#: Sink for burned value (e.g. forfeited deposits with no payee).
BURN_ADDRESS = Address(b"\xff" * 20)


class InsufficientFunds(ValueError):
    """Raised when a transfer or charge exceeds the sender's balance."""


@dataclass
class WorldState:
    """Account balances plus mint/burn tallies.

    Supports O(1) snapshots via copy-on-write of the balance dict —
    failed contract calls revert atomically (§V-D's automated
    allocation must be all-or-nothing).
    """

    _balances: Dict[Address, int] = field(default_factory=dict)
    _minted: int = 0

    def balance(self, account: Address) -> int:
        """Current balance in wei (0 for unknown accounts)."""
        return self._balances.get(account, 0)

    def accounts(self) -> Iterator[Tuple[Address, int]]:
        """Iterate (address, balance) pairs with non-zero balances."""
        return iter(
            (account, amount)
            for account, amount in self._balances.items()
            if amount != 0
        )

    def mint(self, account: Address, amount_wei: int) -> None:
        """Create new ether (block rewards ν per Eq. 8)."""
        if amount_wei < 0:
            raise ValueError("cannot mint a negative amount")
        self._balances[account] = self.balance(account) + amount_wei
        self._minted += amount_wei

    def transfer(self, sender: Address, recipient: Address, amount_wei: int) -> None:
        """Move value between accounts; raises on insufficient funds."""
        if amount_wei < 0:
            raise ValueError("cannot transfer a negative amount")
        available = self.balance(sender)
        if available < amount_wei:
            raise InsufficientFunds(
                f"{sender} holds {available} wei, needs {amount_wei}"
            )
        self._balances[sender] = available - amount_wei
        self._balances[recipient] = self.balance(recipient) + amount_wei

    def burn(self, account: Address, amount_wei: int) -> None:
        """Destroy value from an account (sent to the burn sink)."""
        self.transfer(account, BURN_ADDRESS, amount_wei)

    @property
    def total_minted(self) -> int:
        """All wei ever created by mint (for conservation checks)."""
        return self._minted

    def total_supply(self) -> int:
        """Sum of all balances; equals :attr:`total_minted` at all times."""
        return sum(self._balances.values())

    def snapshot(self) -> "WorldStateSnapshot":
        """Capture state for atomic revert."""
        return WorldStateSnapshot(balances=dict(self._balances), minted=self._minted)

    def restore(self, snap: "WorldStateSnapshot") -> None:
        """Roll back to a snapshot."""
        self._balances = dict(snap.balances)
        self._minted = snap.minted


@dataclass(frozen=True)
class WorldStateSnapshot:
    """Immutable capture of a :class:`WorldState` for revert."""

    balances: Dict[Address, int]
    minted: int
