"""Gas schedule calibrated to the paper's measured costs.

The prototype measures (§VII):

* releasing an IoT system (deploying the SRA contract) costs ≈ 0.095
  ether of gas;
* submitting one detection report costs ≈ 0.011 ether (Fig. 6(b)),
  "negligible compared to the allocated incentives".

We reproduce those absolute numbers with an Ethereum-style split:
operation gas × gas price.  At the default 100 gwei price, SRA
deployment is 950,000 gas and a report is 110,000 gas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.units import GWEI, to_wei

__all__ = ["GasSchedule", "DEFAULT_GAS_SCHEDULE", "PAPER_SRA_COST_WEI", "PAPER_REPORT_COST_WEI"]

#: ≈0.095 ether — cost the paper measures per SRA contract deployment.
PAPER_SRA_COST_WEI = to_wei(0.095)

#: ≈0.011 ether — cost the paper measures per detection report (Fig. 6(b)).
PAPER_REPORT_COST_WEI = to_wei(0.011)


@dataclass(frozen=True)
class GasSchedule:
    """Per-operation gas amounts and the network gas price."""

    gas_price_wei: int = 100 * GWEI
    operation_gas: Dict[str, int] = field(
        default_factory=lambda: {
            "deploy_sra": 950_000,
            "submit_initial_report": 55_000,
            "submit_detailed_report": 55_000,
            "confirm_report": 40_000,
            "refund_insurance": 30_000,
            "transfer": 21_000,
            "default": 25_000,
        }
    )

    def gas_for(self, operation: str) -> int:
        """Gas units for an operation (falls back to ``default``)."""
        return self.operation_gas.get(operation, self.operation_gas["default"])

    def fee_wei(self, operation: str) -> int:
        """Fee in wei: gas × price."""
        return self.gas_for(operation) * self.gas_price_wei

    def report_submission_cost(self) -> int:
        """c in Eq. 10 — total gas cost of a two-phase report submission."""
        return self.fee_wei("submit_initial_report") + self.fee_wei(
            "submit_detailed_report"
        )

    def sra_deployment_cost(self) -> int:
        """cp_i in Eq. 9 — gas cost of releasing one IoT system."""
        return self.fee_wei("deploy_sra")


#: The schedule used throughout the reproduction.
DEFAULT_GAS_SCHEDULE = GasSchedule()
