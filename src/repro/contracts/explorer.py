"""Chain/contract explorer: account statements from public data.

The blockchain and the contract event log together record every
economic fact in SmartCrowd.  This explorer answers the questions the
stakeholders actually ask — "what did I earn?", "what did this release
cost its provider?", "who found what?" — without any private state,
mirroring what an Etherscan-style service would show for the paper's
deployment.

Reads go through a :class:`repro.query.EventIndex` (its own, or the
one inside a shared :class:`repro.query.QueryService`): the event log
is absorbed incrementally into by-name buckets, so building a release
statement is O(relevant events) instead of rescanning the whole log
once per event name per call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.contracts.contract import ContractEvent
from repro.contracts.vm import ContractRuntime
from repro.crypto.keys import Address
from repro.query.indices import EventIndex
from repro.units import from_wei

__all__ = ["DetectorStatement", "ReleaseStatement", "Explorer"]


@dataclass(frozen=True)
class DetectorStatement:
    """Everything a detector wallet earned, from the event log."""

    wallet: Address
    bounties: Tuple[ContractEvent, ...]

    @property
    def total_earned_wei(self) -> int:
        return sum(event.payload["amount_wei"] for event in self.bounties)

    @property
    def vulnerabilities_found(self) -> Tuple[str, ...]:
        return tuple(event.payload["vulnerability"] for event in self.bounties)

    def summary(self) -> str:
        return (
            f"{self.wallet}: {len(self.bounties)} bounties, "
            f"{from_wei(self.total_earned_wei):.2f} ETH"
        )


@dataclass(frozen=True)
class ReleaseStatement:
    """The economic outcome of one SRA, from the event log."""

    sra_id_hex: str
    insurance_wei: int
    bounty_wei: int
    bounties_paid: Tuple[ContractEvent, ...]
    refunded_wei: Optional[int]
    burned_wei: Optional[int]

    @property
    def total_paid_wei(self) -> int:
        return sum(event.payload["amount_wei"] for event in self.bounties_paid)

    @property
    def outcome(self) -> str:
        """'open', 'clean', or 'vulnerable'."""
        if self.refunded_wei is not None:
            return "clean"
        if self.burned_wei is not None:
            return "vulnerable"
        return "open"


class Explorer:
    """Reads the contract runtime's public event log (index-backed)."""

    def __init__(
        self, runtime: ContractRuntime, query: Optional[object] = None
    ) -> None:
        self.runtime = runtime
        # Share the QueryService's event index when handed one, so the
        # explorer and the service absorb the log exactly once between
        # them; otherwise keep a private index.
        shared = getattr(query, "events", None) if query is not None else None
        self._events: EventIndex = (
            shared if isinstance(shared, EventIndex) else EventIndex(runtime)
        )

    def _named(self, name: str) -> List[ContractEvent]:
        return self._events.named(name)

    # -- detector views ------------------------------------------------------

    def detector_statement(self, wallet: Address) -> DetectorStatement:
        """All bounties credited to one wallet."""
        bounties = tuple(
            event
            for event in self._named("BountyPaid")
            if self._event_wallet(event) == wallet
        )
        return DetectorStatement(wallet=wallet, bounties=bounties)

    def _event_wallet(self, event: ContractEvent) -> Optional[Address]:
        # BountyPaid events carry the detector id; resolve the wallet
        # through the paying contract's award records.
        contract = self.runtime.get_contract(event.contract)
        if contract is None or not hasattr(contract, "awards"):
            return None
        for award in contract.awards():
            if award.vulnerability_key == event.payload.get("vulnerability"):
                return award.wallet
        return None

    def top_detectors(self, limit: int = 10) -> List[Tuple[str, int]]:
        """(detector id, total earned wei) leaderboard."""
        totals: Dict[str, int] = {}
        for event in self._named("BountyPaid"):
            detector = event.payload["detector"]
            totals[detector] = totals.get(detector, 0) + event.payload["amount_wei"]
        ranked = sorted(totals.items(), key=lambda item: item[1], reverse=True)
        return ranked[:limit]

    # -- release views -----------------------------------------------------

    def release_statements(self) -> List[ReleaseStatement]:
        """One statement per announced release, in deployment order.

        All four event streams are pulled once from the index and
        joined in dicts keyed by contract / sra id — the historical
        form rescanned the full event log once per release per stream.
        """
        bounties_by_contract: Dict[Address, List[ContractEvent]] = {}
        for event in self._named("BountyPaid"):
            bounties_by_contract.setdefault(event.contract, []).append(event)
        refunded_by_sra = {
            event.payload["sra_id"]: event.payload["refunded_wei"]
            for event in self._named("InsuranceRefunded")
        }
        burned_by_sra = {
            event.payload["sra_id"]: event.payload["burned_wei"]
            for event in self._named("InsuranceForfeited")
        }
        statements: List[ReleaseStatement] = []
        for released in self._named("SystemReleased"):
            sra_id_hex = released.payload["sra_id"]
            statements.append(
                ReleaseStatement(
                    sra_id_hex=sra_id_hex,
                    insurance_wei=released.payload["insurance_wei"],
                    bounty_wei=released.payload["bounty_wei"],
                    bounties_paid=tuple(
                        bounties_by_contract.get(released.contract, ())
                    ),
                    refunded_wei=refunded_by_sra.get(sra_id_hex),
                    burned_wei=burned_by_sra.get(sra_id_hex),
                )
            )
        return statements

    def vulnerable_release_fraction(self) -> float:
        """Observed VP across all closed releases."""
        closed = [s for s in self.release_statements() if s.outcome != "open"]
        if not closed:
            return 0.0
        vulnerable = sum(1 for s in closed if s.outcome == "vulnerable")
        return vulnerable / len(closed)

    def isolation_events(self) -> List[str]:
        """Detector ids that were isolated by any contract."""
        return [
            event.payload["detector"]
            for event in self._named("DetectorIsolated")
        ]
