"""The SmartCrowd smart contract.

Python analog of the prototype's 350-line Solidity contract (§VII):
one instance is deployed per IoT system release and implements

* **insurance escrow** — the provider sends the insurance ``I_i`` with
  the deployment (Eq. 1); the contract holds it, so the provider cannot
  repudiate payouts (§IV-B challenge 4, §VI-A);
* **two-phase commitments** — initial reports register a hash
  commitment ``H(R*)`` first; a detailed report is only payable if its
  hash matches an earlier commitment by the *same* detector
  (anti-plagiarism, §V-B);
* **automated bounties** — each distinct vulnerability pays the preset
  incentive μ at most once ("there is up to one detection result can be
  confirmed for one vulnerability", §VI-B), to the first detector whose
  verified detailed report names it (Eq. 7 with ρ as the win indicator);
* **punishment semantics** — once any vulnerability is confirmed the
  insurance is forfeited ("an insurance that will not be refunded once
  any vulnerability is detected", §V-A): bounties are paid from it and
  the remainder is burned at close.  A clean system's insurance is
  refunded in full after the detection window.

On-chain confirmation is the trigger: the paper's contract fires "once
``R†`` and ``R*`` are all confirmed and recorded in the blockchain"
(§V-D).  Our runtime has no re-entrant chain oracle, so the platform's
consensus layer calls :meth:`confirm_initial_report` /
:meth:`award_detailed_report` from a designated *trigger authority*
address exactly when the corresponding block reaches confirmation
depth — same trigger condition, explicit caller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.contracts.contract import CallContext, Contract
from repro.contracts.state import BURN_ADDRESS
from repro.crypto.keys import Address

__all__ = ["SmartCrowdContract", "BountyAward", "ContractPhase"]


@dataclass(frozen=True)
class BountyAward:
    """One paid bounty: which detector earned μ for which vulnerability."""

    detector_id: str
    wallet: Address
    vulnerability_key: str
    amount_wei: int
    block_time: float


class ContractPhase:
    """Lifecycle phases of a release contract."""

    OPEN = "open"  # detection window active
    CLOSED_CLEAN = "closed_clean"  # window over, no vulnerabilities, refunded
    CLOSED_VULNERABLE = "closed_vulnerable"  # vulnerabilities found, forfeited


class SmartCrowdContract(Contract):
    """Per-release escrow + bounty contract.

    Parameters
    ----------
    sra_id:
        Δ_id of the release announcement this contract backs.
    provider:
        The releasing provider's address (insurance refunds go here).
    bounty_per_vulnerability_wei:
        μ — the preset incentive per detected vulnerability (§V-D).
    detection_window:
        Seconds after deployment during which reports are payable.
    trigger_authority:
        The only address allowed to fire confirmation triggers; wired
        to the platform's consensus engine.
    """

    def __init__(
        self,
        sra_id: bytes,
        provider: Address,
        bounty_per_vulnerability_wei: int,
        detection_window: float,
        trigger_authority: Address,
        excluded_keys: Optional[Set[str]] = None,
    ) -> None:
        super().__init__()
        if bounty_per_vulnerability_wei <= 0:
            raise ValueError("bounty must be positive")
        if detection_window <= 0:
            raise ValueError("detection window must be positive")
        self.sra_id = sra_id
        self.provider = provider
        self.bounty_wei = bounty_per_vulnerability_wei
        self.detection_window = detection_window
        self.trigger_authority = trigger_authority
        #: Keys never payable here — e.g. flaws already paid for in an
        #: earlier detection round of the same release (re-detection
        #: rounds must only reward *new* discoveries).
        self.excluded_keys: Set[str] = set(excluded_keys or ())

        self.insurance_wei: int = 0
        self.deployed_at: float = 0.0
        self.phase: str = ContractPhase.OPEN
        #: commitment hash -> (detector_id, wallet, commit time)
        self._commitments: Dict[bytes, Tuple[str, Address, float]] = {}
        #: vulnerability key -> award
        self._awards: Dict[str, BountyAward] = {}
        #: detectors isolated after failed verification (§V-C filtering)
        self._isolated: Set[str] = set()

    # -- lifecycle -------------------------------------------------------

    def on_deploy(self, ctx: CallContext) -> None:
        """Escrow the insurance sent with deployment."""
        self.require(ctx.sender == self.provider, "only the provider can deploy")
        self.require(ctx.value_wei > 0, "an SRA must carry a positive insurance")
        self.insurance_wei = ctx.value_wei
        self.deployed_at = ctx.block_time
        self.emit_event(
            ctx,
            "SystemReleased",
            sra_id=self.sra_id.hex(),
            provider=str(self.provider),
            insurance_wei=ctx.value_wei,
            bounty_wei=self.bounty_wei,
        )

    def _require_authority(self, ctx: CallContext) -> None:
        self.require(
            ctx.sender == self.trigger_authority,
            "only the consensus trigger authority can confirm reports",
        )

    def _require_open(self, ctx: CallContext) -> None:
        self.require(self.phase == ContractPhase.OPEN, "contract is closed")
        self.require(
            ctx.block_time <= self.deployed_at + self.detection_window,
            "detection window has expired",
        )

    # -- phase I: initial-report commitments -------------------------------

    def confirm_initial_report(
        self,
        ctx: CallContext,
        detector_id: str,
        wallet: Address,
        commitment: bytes,
    ) -> bool:
        """Register a confirmed ``R†``: the commitment ``H(R*)``.

        First commitment wins; a later identical commitment (the
        plagiarism case — copying someone's published ``R*`` produces
        the same hash) is rejected.  Returns True if registered.
        """
        self._require_authority(ctx)
        self._require_open(ctx)
        self.require(detector_id not in self._isolated, "detector is isolated")
        if commitment in self._commitments:
            self.emit_event(
                ctx,
                "DuplicateCommitment",
                detector=detector_id,
                commitment=commitment.hex(),
            )
            return False
        self._commitments[commitment] = (detector_id, wallet, ctx.block_time)
        self.emit_event(
            ctx,
            "InitialReportConfirmed",
            detector=detector_id,
            commitment=commitment.hex(),
        )
        return True

    # -- phase II: detailed reports & bounty payout -------------------------

    def award_detailed_report(
        self,
        ctx: CallContext,
        detector_id: str,
        wallet: Address,
        commitment: bytes,
        vulnerability_keys: Tuple[str, ...],
        verified: bool,
    ) -> int:
        """Pay bounties for a confirmed, verified ``R*``.

        ``commitment`` must equal ``H(R*)`` and match an earlier
        commitment registered by the same detector with the same wallet
        — otherwise the report is plagiarized or spoofed and pays
        nothing.  ``verified`` is the ``AutoVerif()`` outcome computed
        by the providers (Eq. 6); a FALSE verdict isolates the detector
        from this contract's future payouts (§V-C).

        Returns the total wei paid out.
        """
        self._require_authority(ctx)
        self._require_open(ctx)
        self.require(detector_id not in self._isolated, "detector is isolated")

        registered = self._commitments.get(commitment)
        self.require(registered is not None, "no prior initial-report commitment")
        committed_detector, committed_wallet, _ = registered  # type: ignore[misc]
        self.require(
            committed_detector == detector_id and committed_wallet == wallet,
            "commitment was registered by a different detector",
        )

        if not verified:
            self._isolated.add(detector_id)
            self.emit_event(ctx, "DetectorIsolated", detector=detector_id)
            return 0

        paid = 0
        for key in vulnerability_keys:
            if key in self._awards or key in self.excluded_keys:
                continue  # at most one confirmed result per vulnerability
            amount = min(self.bounty_wei, self.balance(ctx))
            if amount <= 0:
                self.emit_event(ctx, "InsuranceExhausted", detector=detector_id)
                break
            self.pay(ctx, wallet, amount)
            award = BountyAward(
                detector_id=detector_id,
                wallet=wallet,
                vulnerability_key=key,
                amount_wei=amount,
                block_time=ctx.block_time,
            )
            self._awards[key] = award
            paid += amount
            self.emit_event(
                ctx,
                "BountyPaid",
                detector=detector_id,
                vulnerability=key,
                amount_wei=amount,
            )
        return paid

    # -- closing -----------------------------------------------------------

    def close(self, ctx: CallContext) -> int:
        """Close after the detection window.

        Clean release: the full insurance is refunded to the provider.
        Vulnerable release: the unspent remainder is burned — the
        provider's punishment is the entire insurance plus deployment
        gas (Fig. 4(b): punishment scales with the insurance).

        Returns the wei refunded to the provider (0 when vulnerable).
        """
        self.require(self.phase == ContractPhase.OPEN, "already closed")
        self.require(
            ctx.block_time > self.deployed_at + self.detection_window,
            "detection window still open",
        )
        self.require(
            ctx.sender in (self.provider, self.trigger_authority),
            "only the provider or the authority can close",
        )
        remainder = self.balance(ctx)
        if self._awards:
            self.phase = ContractPhase.CLOSED_VULNERABLE
            if remainder > 0:
                self.pay(ctx, BURN_ADDRESS, remainder)
            self.emit_event(
                ctx,
                "InsuranceForfeited",
                sra_id=self.sra_id.hex(),
                burned_wei=remainder,
                vulnerabilities=len(self._awards),
            )
            return 0
        self.phase = ContractPhase.CLOSED_CLEAN
        if remainder > 0:
            self.pay(ctx, self.provider, remainder)
        self.emit_event(
            ctx, "InsuranceRefunded", sra_id=self.sra_id.hex(), refunded_wei=remainder
        )
        return remainder

    # -- views -------------------------------------------------------------

    def awards(self) -> List[BountyAward]:
        """All bounties paid so far."""
        return list(self._awards.values())

    def awarded_vulnerabilities(self) -> Set[str]:
        """Keys of vulnerabilities already paid for."""
        return set(self._awards)

    def total_paid_wei(self) -> int:
        """Sum of all bounty payouts (μ·Σ n_i·ρ_i of Eq. 9)."""
        return sum(award.amount_wei for award in self._awards.values())

    def is_isolated(self, detector_id: str) -> bool:
        """True if the detector was isolated after a failed AutoVerif."""
        return detector_id in self._isolated

    def has_commitment(self, commitment: bytes) -> bool:
        """True if an initial report with this ``H(R*)`` was confirmed."""
        return commitment in self._commitments
