"""Contract abstraction: storage, events, guarded methods.

The paper implements "SmartCrowd contracts with 350 lines of solidity"
(§VII).  With no EVM available, contracts here are Python classes run
by :class:`~repro.contracts.vm.ContractRuntime` under the same
discipline the EVM enforces: deterministic execution, metered gas,
value transfer through a runtime-controlled ledger, atomic revert on
failure, and an append-only event log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.crypto.keys import Address

__all__ = ["Contract", "ContractError", "ContractEvent", "CallContext"]


class ContractError(RuntimeError):
    """A contract-level revert (bad caller, bad state, bad arguments)."""


@dataclass(frozen=True)
class ContractEvent:
    """One emitted event, like a Solidity ``event`` log entry."""

    contract: Address
    name: str
    payload: Dict[str, Any]
    block_time: float


@dataclass
class CallContext:
    """Per-call environment the runtime passes to contract methods.

    Mirrors Solidity's ``msg`` object: ``sender``/``value`` plus the
    simulated block timestamp.
    """

    sender: Address
    value_wei: int
    block_time: float
    runtime: "ContractRuntimeApi"


class ContractRuntimeApi:
    """Interface contracts use to move value and emit events.

    Implemented by :class:`~repro.contracts.vm.ContractRuntime`;
    declared separately so contracts do not import the runtime.
    """

    def contract_balance(self, contract: Address) -> int:  # pragma: no cover
        raise NotImplementedError

    def contract_pay(
        self, contract: Address, recipient: Address, amount_wei: int
    ) -> None:  # pragma: no cover
        raise NotImplementedError

    def emit(self, event: ContractEvent) -> None:  # pragma: no cover
        raise NotImplementedError


class Contract:
    """Base class for deployed contracts.

    Subclasses implement public methods taking ``(ctx, ...)``; state
    lives in ordinary attributes.  The runtime snapshots the world
    state (not contract storage) around calls; contracts must therefore
    mutate their own storage only after all checks pass — the same
    checks-effects-interactions discipline Solidity code follows.
    """

    def __init__(self) -> None:
        self.address: Optional[Address] = None
        self.owner: Optional[Address] = None

    def on_deploy(self, ctx: CallContext) -> None:
        """Hook run at deployment (constructor body)."""

    def require(self, condition: bool, message: str) -> None:
        """Solidity-style ``require``: revert with ``message`` if false."""
        if not condition:
            raise ContractError(message)

    def emit_event(self, ctx: CallContext, name: str, **payload: Any) -> None:
        """Emit a log event through the runtime."""
        assert self.address is not None, "contract not deployed"
        ctx.runtime.emit(
            ContractEvent(
                contract=self.address,
                name=name,
                payload=payload,
                block_time=ctx.block_time,
            )
        )

    def balance(self, ctx: CallContext) -> int:
        """Ether currently held by this contract."""
        assert self.address is not None, "contract not deployed"
        return ctx.runtime.contract_balance(self.address)

    def pay(self, ctx: CallContext, recipient: Address, amount_wei: int) -> None:
        """Send ether from the contract's escrow to ``recipient``."""
        assert self.address is not None, "contract not deployed"
        ctx.runtime.contract_pay(self.address, recipient, amount_wei)


@dataclass(frozen=True)
class Receipt:
    """The result of a deployment or call."""

    success: bool
    contract: Address
    operation: str
    gas_used: int
    fee_wei: int
    return_value: Any = None
    error: Optional[str] = None
    events: Tuple[ContractEvent, ...] = field(default_factory=tuple)
