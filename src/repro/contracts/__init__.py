"""Smart-contract substrate: world state, gas, runtime, SmartCrowd contract.

Replaces the prototype's Ethereum/Solidity stack with a deterministic
Python contract host whose execution semantics (metered gas, value
escrow, atomic revert, event logs) match what the paper's incentive
scheme relies on.  Gas costs are calibrated to the paper's measured
0.095 ether per SRA deployment and 0.011 ether per detection report.
"""

from repro.contracts.contract import (
    CallContext,
    Contract,
    ContractError,
    ContractEvent,
    Receipt,
)
from repro.contracts.explorer import (
    DetectorStatement,
    Explorer,
    ReleaseStatement,
)
from repro.contracts.gas import (
    DEFAULT_GAS_SCHEDULE,
    GasSchedule,
    PAPER_REPORT_COST_WEI,
    PAPER_SRA_COST_WEI,
)
from repro.contracts.smartcrowd_contract import (
    BountyAward,
    ContractPhase,
    SmartCrowdContract,
)
from repro.contracts.state import BURN_ADDRESS, InsufficientFunds, WorldState
from repro.contracts.vm import ContractRuntime

__all__ = [
    "BURN_ADDRESS",
    "BountyAward",
    "CallContext",
    "Contract",
    "ContractError",
    "ContractEvent",
    "ContractPhase",
    "ContractRuntime",
    "DEFAULT_GAS_SCHEDULE",
    "DetectorStatement",
    "Explorer",
    "GasSchedule",
    "InsufficientFunds",
    "PAPER_REPORT_COST_WEI",
    "PAPER_SRA_COST_WEI",
    "Receipt",
    "ReleaseStatement",
    "SmartCrowdContract",
    "WorldState",
]
