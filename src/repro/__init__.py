"""SmartCrowd reproduction.

A from-scratch Python implementation of *SmartCrowd: Decentralized and
Automated Incentives for Distributed IoT System Detection* (Wu et al.,
ICDCS 2019): a blockchain-powered crowdsourcing platform where
detectors earn automatic bounties for IoT vulnerabilities, providers
are held accountable through escrowed insurances, and consumers read an
authoritative on-chain security reference.

Subpackages
-----------
``repro.crypto``      secp256k1 ECDSA + SHA-3 (pure Python)
``repro.chain``       PoW blockchain: blocks, Merkle trees, fork choice
``repro.contracts``   deterministic contract runtime + SmartCrowd contract
``repro.network``     discrete-event P2P gossip simulation
``repro.detection``   IoT systems, detectors, scanners, AutoVerif
``repro.core``        the paper's contribution: SRAs, two-phase reports,
                      Algorithm 1, incentives, the platform orchestrator
``repro.adversary``   attack library + 51%/double-spend analysis
``repro.analysis``    closed forms of SVI-B (DC_T, balances, VPB)
``repro.workloads``   the SVII experimental setup as reusable presets
``repro.experiments`` one runner per paper table/figure
``repro.query``       consumer read path: materialized indices, snapshot
                      caching, batched query serving
``repro.shard``       sharded fleet simulation: FleetSpec, barrier-
                      synchronized worker processes, bit-parity contract

Quickstart
----------
>>> from repro import SmartCrowdPlatform, PlatformConfig
>>> from repro.detection import build_detector_fleet, build_system
>>> from repro.chain import PAPER_HASHPOWER_SHARES
>>> platform = SmartCrowdPlatform(
...     PAPER_HASHPOWER_SHARES, build_detector_fleet(), PlatformConfig(seed=1)
... )
>>> system = build_system("smart-camera", vulnerability_count=2)
>>> sra = platform.announce_release("provider-1", system)
>>> _ = platform.advance_for(1200.0)
"""

from repro.core import (
    ConsumerClient,
    IncentiveParameters,
    PlatformConfig,
    SmartCrowdPlatform,
)
from repro.network.config import NetworkConfig
from repro.query import QueryRequest, QueryService
from repro.shard import FleetSpec, ShardedSimulator
from repro.units import ETHER, GWEI, WEI, format_ether, from_wei, to_wei

__version__ = "1.0.0"

__all__ = [
    "ConsumerClient",
    "ETHER",
    "FleetSpec",
    "GWEI",
    "IncentiveParameters",
    "NetworkConfig",
    "PlatformConfig",
    "QueryRequest",
    "QueryService",
    "ShardedSimulator",
    "SmartCrowdPlatform",
    "WEI",
    "__version__",
    "format_ether",
    "from_wei",
    "to_wei",
]
