"""PoW consensus driver: the mining competition among IoT providers.

Couples the stochastic :class:`~repro.chain.pow.MiningModel` with a
shared :class:`~repro.chain.chain.Blockchain` and
:class:`~repro.chain.mempool.Mempool`.  Each step samples which
provider wins the next block and after how long, assembles the block
from pending records, and appends it — the provider-side half of
Phase #3 ("Fault-tolerant verification and storage").

The simulation uses a *logical shared chain*: with an honest majority
and no partitions, all provider replicas converge to the same canonical
chain, so the economics experiments may track one copy.  Fork/reorg
behaviour is exercised separately in :mod:`repro.adversary` and the
network-level tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.chain.block import Block, ChainRecord, GENESIS_PARENT
from repro.chain.chain import Blockchain, DEFAULT_CONFIRMATION_DEPTH
from repro.chain.mempool import Mempool
from repro.chain.pow import (
    PAPER_DIFFICULTY,
    PAPER_MEAN_BLOCK_TIME,
    MiningModel,
)
from repro.crypto.keys import Address

__all__ = ["make_genesis", "MinedEvent", "MiningSimulation"]

#: Hook invoked when a block is appended: (event) -> None.
BlockListener = Callable[["MinedEvent"], None]


def make_genesis(timestamp: float = 0.0, difficulty: int = PAPER_DIFFICULTY) -> Block:
    """Create the SmartCrowd genesis block.

    The genesis carries no records and is attributed to a burn address;
    trustworthy IoT providers "serve as the initiators to bootstrap
    SmartCrowd" (§IV-A) by agreeing on this block out of band.
    """
    return Block.assemble(
        prev_block_id=GENESIS_PARENT,
        height=0,
        records=(),
        timestamp=timestamp,
        difficulty=difficulty,
        miner=Address(b"\x00" * 20),
    )


@dataclass(frozen=True)
class MinedEvent:
    """One mined block plus its competition context."""

    block: Block
    miner_name: str
    interval: float
    time: float
    fees_collected: int

    @property
    def omega(self) -> int:
        """ω — number of records aggregated into this block."""
        return self.block.omega


@dataclass
class MiningSimulation:
    """Drives the PoW competition over simulated time.

    Parameters mirror the paper's private-chain setup: provider
    hashpower shares, difficulty 0xf00000, mean block time 15.35 s.
    Use :meth:`run_for` / :meth:`run_blocks` for the Fig. 3/4 sweeps.
    """

    model: MiningModel
    miners: Mapping[str, Address]
    chain: Blockchain = field(default_factory=lambda: Blockchain(make_genesis()))
    mempool: Mempool = field(default_factory=Mempool)
    max_records_per_block: Optional[int] = None
    clock: float = 0.0
    listeners: List[BlockListener] = field(default_factory=list)

    @classmethod
    def from_shares(
        cls,
        shares: Mapping[str, float],
        miner_addresses: Mapping[str, Address],
        difficulty: int = PAPER_DIFFICULTY,
        mean_block_time: float = PAPER_MEAN_BLOCK_TIME,
        confirmation_depth: int = DEFAULT_CONFIRMATION_DEPTH,
        rng: Optional[random.Random] = None,
    ) -> "MiningSimulation":
        """Build a simulation from hashpower shares (paper's Fig. 3 setup)."""
        missing = set(shares) - set(miner_addresses)
        if missing:
            raise ValueError(f"no address for miners: {sorted(missing)}")
        model = MiningModel.from_shares(
            shares, difficulty=difficulty, mean_block_time=mean_block_time, rng=rng
        )
        genesis = make_genesis(difficulty=difficulty)
        return cls(
            model=model,
            miners=dict(miner_addresses),
            chain=Blockchain(genesis, confirmation_depth=confirmation_depth),
        )

    def add_listener(self, listener: BlockListener) -> None:
        """Register a callback fired after each appended block."""
        self.listeners.append(listener)

    def submit(self, record: ChainRecord) -> bool:
        """Queue a record for mining (returns False on duplicate)."""
        if self.chain.locate_record(record.record_id) is not None:
            return False
        return self.mempool.add(record)

    def step(self) -> MinedEvent:
        """Advance one block: sample winner, assemble, append."""
        outcome = self.model.next_block()
        return self.apply_outcome(outcome)

    def apply_outcome(self, outcome) -> MinedEvent:
        """Advance the clock and append the block for a sampled outcome."""
        self.clock += outcome.interval
        miner_address = self.miners[outcome.winner]
        records = self.mempool.select(
            limit=self.max_records_per_block,
            exclude=self.chain.record_ids_on_canonical(),
        )
        block = Block.assemble(
            prev_block_id=self.chain.head.block_id,
            height=self.chain.height + 1,
            records=records,
            timestamp=self.clock,
            difficulty=self.model.difficulty,
            miner=miner_address,
        )
        self.chain.add_block(block)
        self.mempool.prune(record.record_id for record in records)
        event = MinedEvent(
            block=block,
            miner_name=outcome.winner,
            interval=outcome.interval,
            time=self.clock,
            fees_collected=block.total_fees(),
        )
        for listener in self.listeners:
            listener(event)
        return event

    def run_blocks(self, count: int) -> List[MinedEvent]:
        """Mine exactly ``count`` blocks (Fig. 3(b) measures 2000)."""
        return [self.step() for _ in range(count)]

    def run_for(self, duration: float) -> List[MinedEvent]:
        """Mine until simulated time advances by ``duration`` seconds.

        The block whose discovery crosses the deadline is *not*
        included (it would have been found after the window closed).
        """
        deadline = self.clock + duration
        events: List[MinedEvent] = []
        while True:
            outcome = self.model.next_block()
            if self.clock + outcome.interval > deadline:
                self.clock = deadline
                return events
            events.append(self.apply_outcome(outcome))

    def blocks_won(self) -> Dict[str, int]:
        """χ per miner: canonical blocks each provider has created (Eq. 8)."""
        by_address: Dict[Address, str] = {
            address: name for name, address in self.miners.items()
        }
        counts: Dict[str, int] = {name: 0 for name in self.miners}
        for block in self.chain.iter_canonical():
            if block.height == 0:
                continue
            name = by_address.get(block.header.miner)
            if name is not None:
                counts[name] += 1
        return counts

    def observed_block_times(self) -> Tuple[float, ...]:
        """Inter-block times along the canonical chain (Fig. 3(b))."""
        blocks = list(self.chain.iter_canonical())
        return tuple(
            later.header.timestamp - earlier.header.timestamp
            for earlier, later in zip(blocks, blocks[1:])
        )
