"""The ledger state machine: replaying a chain into balances.

The blockchain is "essentially a public decentralized ledger" (§II) —
meaning the authoritative account state is a *function of the chain*:
anyone replaying the same blocks derives the same balances.  This
module implements that function:

* :func:`apply_block` executes one block — mint the block reward to
  the miner, then execute each TRANSACTION record (signature, nonce,
  and balance checks; fee to the miner);
* :class:`LedgerStateMachine` replays whole chains and *re-derives*
  state after reorgs, which is how a fork switch atomically rewrites
  economic history without any compensation logic.

Invalid transactions inside a block make the whole block invalid (as
in Bitcoin/Ethereum) — tested in ``tests/chain/test_ledger.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.chain.block import Block, RecordKind
from repro.chain.chain import Blockchain
from repro.chain.transactions import SignedTransaction
from repro.contracts.state import WorldState, WorldStateSnapshot
from repro.crypto.keys import Address
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.units import to_wei

__all__ = ["LedgerError", "apply_block", "LedgerStateMachine"]

#: ν — default mining reward per block (5 ether, §VII).
DEFAULT_BLOCK_REWARD_WEI = to_wei(5)


class LedgerError(ValueError):
    """A block contains an inexecutable transaction."""


def apply_block(
    state: WorldState,
    nonces: Dict[Address, int],
    block: Block,
    block_reward_wei: int = DEFAULT_BLOCK_REWARD_WEI,
) -> None:
    """Execute one block against ``state`` in place.

    Raises :class:`LedgerError` (leaving partially-applied state — use
    :class:`LedgerStateMachine` for atomic replay) if any transaction
    is forged, replayed, out of order, or unfunded.
    """
    miner = block.header.miner
    if block.height > 0:
        state.mint(miner, block_reward_wei)
    for record in block.records:
        if record.kind != RecordKind.TRANSACTION:
            continue  # SRAs/reports are executed by the contract layer
        transaction = SignedTransaction.from_payload(record.payload)
        if not transaction.verify():
            raise LedgerError("forged transaction signature")
        expected_nonce = nonces.get(transaction.sender, 0)
        if transaction.nonce != expected_nonce:
            raise LedgerError(
                f"nonce {transaction.nonce} out of order "
                f"(expected {expected_nonce})"
            )
        total = transaction.value_wei + transaction.fee_wei
        if state.balance(transaction.sender) < total:
            raise LedgerError("unfunded transaction")
        state.transfer(transaction.sender, transaction.recipient, transaction.value_wei)
        if transaction.fee_wei:
            state.transfer(transaction.sender, miner, transaction.fee_wei)
        nonces[transaction.sender] = expected_nonce + 1


#: Distinct canonical heads whose derived state is retained; replicas
#: flip between at most a couple of competing tips, so a small cache
#: covers fork churn without growing with chain length.
_MAX_CACHED_HEADS = 8


@dataclass
class LedgerStateMachine:
    """Derives (and re-derives) account state from a chain.

    ``genesis_allocations`` seeds pre-mined balances (the accounts the
    bootstrap providers fund, §IV-A).

    Head-state caching: :meth:`head_state` memoizes the derived
    (state, nonces) per canonical head id, so validating a stream of
    candidates on a stable head costs one block execution instead of a
    full-chain replay each time.  Block ids are content-addressed, so a
    head id uniquely determines the canonical history behind it — a
    reorg changes the head id and thereby invalidates the entry
    naturally.  Mutating :attr:`genesis_allocations` after use requires
    an explicit :meth:`invalidate`.
    """

    block_reward_wei: int = DEFAULT_BLOCK_REWARD_WEI
    genesis_allocations: Dict[Address, int] = field(default_factory=dict)
    telemetry: Telemetry = field(
        default_factory=lambda: NULL_TELEMETRY, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        #: head block id -> (state snapshot, nonces) at that head.
        self._head_cache: Dict[
            bytes, Tuple[WorldStateSnapshot, Dict[Address, int]]
        ] = {}

    def invalidate(self) -> None:
        """Drop all cached head states (after reward/allocation edits)."""
        self._head_cache.clear()

    def head_state(self, chain: Blockchain) -> Tuple[WorldState, Dict[Address, int]]:
        """Derived (state, nonces) at the canonical head, cached by head id.

        The returned objects are private copies — callers may execute
        candidate blocks against them without poisoning the cache.
        """
        head_id = chain.head.block_id
        cached = self._head_cache.get(head_id)
        if cached is not None:
            if self.telemetry.enabled:
                self.telemetry.counter("ledger.head_state", outcome="hit").inc()
            state = WorldState()
            state.restore(cached[0])
            return state, dict(cached[1])
        if self.telemetry.enabled:
            self.telemetry.counter("ledger.head_state", outcome="miss").inc()
        state, nonces = self.replay(chain)
        while len(self._head_cache) >= _MAX_CACHED_HEADS:
            self._head_cache.pop(next(iter(self._head_cache)))
        self._head_cache[head_id] = (state.snapshot(), dict(nonces))
        return state, nonces

    def replay(self, chain: Blockchain) -> Tuple[WorldState, Dict[Address, int]]:
        """Replay the canonical chain from genesis; atomic on failure.

        Returns the derived (state, nonces).  Raises
        :class:`LedgerError` with no partial result if any block is
        inexecutable.
        """
        state = WorldState()
        for account, amount in self.genesis_allocations.items():
            state.mint(account, amount)
        nonces: Dict[Address, int] = {}
        for block in chain.iter_canonical():
            apply_block(state, nonces, block, self.block_reward_wei)
        return state, nonces

    def validate_block(
        self,
        chain: Blockchain,
        block: Block,
    ) -> Optional[str]:
        """Would ``block`` execute on top of the current canonical head?

        Returns None if executable, else the reason.  This is the
        semantic hook miners use before extending with a candidate.
        """
        if block.header.prev_block_id != chain.head.block_id:
            return "block does not extend the canonical head"
        try:
            state, nonces = self.head_state(chain)
            apply_block(state, nonces, block, self.block_reward_wei)
        except LedgerError as error:
            return str(error)
        return None

    def balance_at_head(self, chain: Blockchain, account: Address) -> int:
        """The account's balance implied by the current canonical chain."""
        state, _ = self.head_state(chain)
        return state.balance(account)
