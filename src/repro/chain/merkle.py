"""Merkle trees over block records.

Fig. 2 of the paper: "block *i* contains ω_i detection results, which is
organized based on the Merkle tree structure like the transaction
organization in Bitcoin."  This module provides the tree, audit-path
proofs, and proof verification used by lightweight detectors (§V-B),
which do not store the chain and instead verify inclusion proofs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.crypto.hashing import merkle_pair_hash, sha3_256
from repro.crypto.hashpool import leaf_hashes, pair_hashes

__all__ = ["MerkleTree", "MerkleProof", "compute_merkle_root"]

#: Root of the empty tree (hash of an empty marker, Bitcoin-style).
EMPTY_ROOT = sha3_256(b"smartcrowd-empty-merkle")


@dataclass(frozen=True)
class MerkleProof:
    """An audit path proving one leaf's inclusion under a root.

    ``path`` lists sibling hashes from leaf level to just below the
    root; ``directions[i]`` is True when the sibling at level *i* is the
    *right* child (i.e. our running hash is the left input).
    """

    leaf_index: int
    leaf_hash: bytes
    path: Tuple[bytes, ...]
    directions: Tuple[bool, ...]

    def verify(self, root: bytes) -> bool:
        """Check the audit path against ``root``."""
        if len(self.path) != len(self.directions):
            return False
        node = self.leaf_hash
        for sibling, sibling_is_right in zip(self.path, self.directions):
            if sibling_is_right:
                node = merkle_pair_hash(node, sibling)
            else:
                node = merkle_pair_hash(sibling, node)
        return node == root


class MerkleTree:
    """A binary Merkle tree with Bitcoin-style odd-node duplication.

    Levels are materialized bottom-up at construction; proofs are then
    O(log n) lookups.  Leaves are raw record payloads; they are
    domain-separated from interior nodes (see :mod:`repro.crypto.hashing`)
    so an interior node cannot masquerade as a leaf.
    """

    def __init__(self, payloads: Sequence[bytes]) -> None:
        # Pooled batch hashing (repro.crypto.hashpool) — digests equal
        # merkle_leaf_hash/merkle_pair_hash applied one at a time.
        self._leaf_hashes: List[bytes] = leaf_hashes(payloads)
        self._levels: List[List[bytes]] = self._build_levels(self._leaf_hashes)

    @staticmethod
    def _build_levels(leaves: List[bytes]) -> List[List[bytes]]:
        if not leaves:
            return [[EMPTY_ROOT]]
        levels = [list(leaves)]
        while len(levels[-1]) > 1:
            current = levels[-1]
            if len(current) % 2 == 1:
                current = current + [current[-1]]  # duplicate odd tail
            levels.append(pair_hashes(current))
        return levels

    def __len__(self) -> int:
        return len(self._leaf_hashes)

    @property
    def root(self) -> bytes:
        """The Merkle root committing to all leaves."""
        return self._levels[-1][0]

    def leaf_hash(self, index: int) -> bytes:
        """The hash of the leaf at ``index``."""
        return self._leaf_hashes[index]

    def proof(self, index: int) -> MerkleProof:
        """Build the audit path for the leaf at ``index``."""
        if not 0 <= index < len(self._leaf_hashes):
            raise IndexError(f"leaf index {index} out of range")
        path: List[bytes] = []
        directions: List[bool] = []
        position = index
        for level in self._levels[:-1]:
            padded = level if len(level) % 2 == 0 else level + [level[-1]]
            if position % 2 == 0:
                path.append(padded[position + 1])
                directions.append(True)
            else:
                path.append(padded[position - 1])
                directions.append(False)
            position //= 2
        return MerkleProof(
            leaf_index=index,
            leaf_hash=self._leaf_hashes[index],
            path=tuple(path),
            directions=tuple(directions),
        )


def compute_merkle_root(payloads: Sequence[bytes]) -> bytes:
    """Convenience: the Merkle root of ``payloads`` without keeping the tree."""
    return MerkleTree(payloads).root
