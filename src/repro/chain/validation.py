"""Block validation rules.

Every provider validates a received block before adopting it (§VI-A:
"SmartCrowd can defend against this misbehavior by enabling each newly
generated block to be correctly verified by IoT providers").  A block
from a misbehaved provider that violates any structural rule is
rejected regardless of its PoW.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.chain.block import Block, ChainRecord
from repro.chain.chain import Blockchain
from repro.chain.merkle import compute_merkle_root
from repro.chain.pow import check_pow

__all__ = ["BlockValidator", "ValidationResult", "RecordValidator"]

#: Hook: semantic validation of one record (wired to Algorithm 1 by core).
RecordValidator = Callable[[ChainRecord], bool]

#: Maximum allowed clock skew into the future, seconds (Bitcoin uses 2 h;
#: our simulated clocks are tighter).
MAX_FUTURE_DRIFT = 120.0


@dataclass(frozen=True)
class ValidationResult:
    """Outcome of block validation, with the reasons for rejection."""

    ok: bool
    errors: tuple

    @classmethod
    def success(cls) -> "ValidationResult":
        return cls(ok=True, errors=())

    @classmethod
    def failure(cls, errors: List[str]) -> "ValidationResult":
        return cls(ok=False, errors=tuple(errors))


class BlockValidator:
    """Structural + PoW + (pluggable) semantic validation of blocks.

    ``record_validator`` is the hook where :mod:`repro.core` installs
    Algorithm 1 — signature/identifier checks and ``AutoVerif`` — so the
    chain layer stays agnostic to report semantics.
    """

    def __init__(
        self,
        record_validator: Optional[RecordValidator] = None,
        require_pow: bool = True,
        max_records_per_block: Optional[int] = None,
    ) -> None:
        self._record_validator = record_validator
        self._require_pow = require_pow
        self._max_records = max_records_per_block

    def validate(
        self,
        block: Block,
        chain: Blockchain,
        now: Optional[float] = None,
    ) -> ValidationResult:
        """Validate ``block`` against the current ``chain`` state.

        ``now`` is the validator's local clock; when given, blocks
        timestamped more than :data:`MAX_FUTURE_DRIFT` ahead of it are
        rejected (Bitcoin's future-timestamp rule).
        """
        errors: List[str] = []

        parent = chain.get_block(block.header.prev_block_id)
        if parent is None:
            errors.append("unknown parent block")
        else:
            if block.height != parent.height + 1:
                errors.append(
                    f"bad height {block.height}, parent at {parent.height}"
                )
            if block.header.timestamp < parent.header.timestamp:
                errors.append("timestamp precedes parent")

        if now is not None and block.header.timestamp > now + MAX_FUTURE_DRIFT:
            errors.append("timestamp too far in the future")

        if block.block_id in chain:
            errors.append("duplicate block")

        expected_root = compute_merkle_root([r.to_bytes() for r in block.records])
        if block.header.merkle_root != expected_root:
            errors.append("merkle root mismatch")

        if self._require_pow and not check_pow(block.header):
            errors.append("proof of work does not meet target")

        if self._max_records is not None and block.omega > self._max_records:
            errors.append(f"block carries {block.omega} records, over limit")

        seen_ids = set()
        for record in block.records:
            if record.record_id in seen_ids:
                errors.append("duplicate record id within block")
                break
            seen_ids.add(record.record_id)

        if not errors:
            # Judged against the branch this block extends (not the
            # validator's canonical chain): the same record may exist on
            # both sides of a fork, and adopting the heavier side must
            # stay possible.
            for record in block.records:
                if chain.record_on_branch(
                    record.record_id, block.header.prev_block_id
                ):
                    errors.append("record already on this branch")
                    break

        if self._record_validator is not None and not errors:
            for record in block.records:
                if not self._record_validator(record):
                    errors.append(
                        f"record {record.record_id.hex()[:12]} failed semantic validation"
                    )
                    break

        if errors:
            return ValidationResult.failure(errors)
        return ValidationResult.success()
