"""Block and chain serialization — the ledger as portable bytes.

The paper's chain is a *public* ledger "publicly inquired by anyone at
anytime" (§II); serialization is what makes that operational: full
nodes export blocks to light clients, archives, and auditors, and any
party can re-validate a dump offline.  Encoding is the repo's framed
codec (length-prefixed, delimiter-safe); deserialization re-derives
every identifier rather than trusting the dump.
"""

from __future__ import annotations

from typing import List

from repro.codec import CodecError, pack, unpack
from repro.chain.block import Block, BlockHeader, ChainRecord, RecordKind
from repro.chain.chain import Blockchain
from repro.chain.fastpath import pack_header_fields
from repro.crypto.keys import Address

__all__ = [
    "encode_record",
    "decode_record",
    "encode_header",
    "decode_header",
    "encode_block",
    "decode_block",
    "export_chain",
    "import_chain",
]


def encode_record(record: ChainRecord) -> bytes:
    """Serialize one chain record.

    The wire encoding *is* the record's canonical byte form — the same
    length-prefixed frame :meth:`ChainRecord.to_bytes` commits to the
    Merkle root — so dumps and proofs can never disagree about a
    record's identity bytes.
    """
    return record.to_bytes()


def decode_record(data: bytes) -> ChainRecord:
    """Parse one chain record."""
    kind, record_id, payload, fee, sender = unpack(data, 5)
    return ChainRecord(
        kind=RecordKind(kind.decode()),
        record_id=record_id,
        payload=payload,
        fee=int.from_bytes(fee, "big"),
        sender=Address(sender) if sender else None,
    )


def _header_wire_bytes(header: BlockHeader) -> bytes:
    """The framed wire fields of a header, via the struct fast path.

    Byte-identical to packing the seven fields through the generic
    codec; non-standard id widths (only reachable through hand-built
    headers) fall back to :func:`repro.codec.pack`.
    """
    if len(header.prev_block_id) == 32 and len(header.merkle_root) == 32:
        return pack_header_fields(
            header.prev_block_id,
            header.merkle_root,
            repr(float(header.timestamp)).encode(),
            header.nonce,
            header.height,
            header.difficulty,
            header.miner.value,
        )
    return pack(
        [
            header.prev_block_id,
            header.merkle_root,
            repr(float(header.timestamp)).encode(),
            header.nonce.to_bytes(16, "big"),
            header.height.to_bytes(8, "big"),
            header.difficulty.to_bytes(32, "big"),
            header.miner.value,
        ]
    )


def encode_header(header: BlockHeader) -> bytes:
    """Serialize a bare block header (light clients, header stores)."""
    return _header_wire_bytes(header)


def decode_header(data: bytes) -> BlockHeader:
    """Parse a bare block header; the hash is re-derived, never trusted."""
    (
        prev_block_id,
        merkle_root,
        timestamp,
        nonce,
        height,
        difficulty,
        miner,
    ) = unpack(data, 7)
    return BlockHeader(
        prev_block_id=prev_block_id,
        merkle_root=merkle_root,
        timestamp=float(timestamp.decode()),
        nonce=int.from_bytes(nonce, "big"),
        height=int.from_bytes(height, "big"),
        difficulty=int.from_bytes(difficulty, "big"),
        miner=Address(miner),
    )


def encode_block(block: Block) -> bytes:
    """Serialize a block (header fields + framed records)."""
    records_blob = pack([encode_record(record) for record in block.records])
    return (
        _header_wire_bytes(block.header)
        + len(records_blob).to_bytes(4, "big")
        + records_blob
    )


def decode_block(data: bytes) -> Block:
    """Parse a block; the header hash is re-derived, never trusted."""
    (
        prev_block_id,
        merkle_root,
        timestamp,
        nonce,
        height,
        difficulty,
        miner,
        records_blob,
    ) = unpack(data, 8)
    header = BlockHeader(
        prev_block_id=prev_block_id,
        merkle_root=merkle_root,
        timestamp=float(timestamp.decode()),
        nonce=int.from_bytes(nonce, "big"),
        height=int.from_bytes(height, "big"),
        difficulty=int.from_bytes(difficulty, "big"),
        miner=Address(miner),
    )
    # Record count is discovered by scanning the framed blob.
    records: List[ChainRecord] = []
    offset = 0
    while offset < len(records_blob):
        length = int.from_bytes(records_blob[offset : offset + 4], "big")
        records.append(decode_record(records_blob[offset + 4 : offset + 4 + length]))
        offset += 4 + length
    block = Block(header=header, records=tuple(records))
    if block.merkle_tree().root != merkle_root:
        raise CodecError("block records do not match the header's merkle root")
    return block


def export_chain(chain: Blockchain) -> bytes:
    """Dump the canonical chain, genesis first."""
    return pack([encode_block(block) for block in chain.iter_canonical()])


def import_chain(
    data: bytes, confirmation_depth: int = 6
) -> Blockchain:
    """Rebuild a chain from a dump, re-linking and re-validating ids.

    Raises :class:`~repro.codec.CodecError` for a dump whose blocks do
    not link (tampered or truncated exports).
    """
    blocks: List[Block] = []
    offset = 0
    while offset < len(data):
        length = int.from_bytes(data[offset : offset + 4], "big")
        blocks.append(decode_block(data[offset + 4 : offset + 4 + length]))
        offset += 4 + length
    if not blocks:
        raise CodecError("empty chain dump")
    chain = Blockchain(blocks[0], confirmation_depth=confirmation_depth)
    for block in blocks[1:]:
        if block.header.prev_block_id not in chain:
            raise CodecError("dumped blocks do not link")
        chain.add_block(block)
    return chain
