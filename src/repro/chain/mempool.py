"""Mempool of pending records awaiting inclusion in a block.

IoT providers accumulate verified SRAs and detection reports, then
aggregate them into blocks (§V-C: "IoT providers can aggregate and
record the received detection results in the blockchain").  Selection
is fee-priority with FIFO tiebreak, as real miners do — this is what
makes the report transaction fee ψ an actual incentive (Eq. 8).
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.chain.block import ChainRecord, RecordKind
from repro.telemetry import NULL_TELEMETRY, Telemetry

__all__ = ["Mempool"]


class Mempool:
    """Pending, not-yet-mined chain records.

    Records are deduplicated by ``record_id``: re-announcing the same
    report (or a plagiarized byte-identical copy) is a no-op, which is
    the chain-level half of SmartCrowd's plagiarism defence.
    """

    def __init__(
        self,
        max_size: Optional[int] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self._records: Dict[bytes, ChainRecord] = {}
        self._arrival: Dict[bytes, int] = {}
        self._counter = itertools.count()
        self._max_size = max_size
        #: Mutable so a deployment can arm telemetry after construction.
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, record_id: bytes) -> bool:
        return record_id in self._records

    def add(self, record: ChainRecord) -> bool:
        """Queue a record; returns False on duplicate or overflow."""
        telemetry = self.telemetry
        if record.record_id in self._records:
            if telemetry.enabled:
                telemetry.counter("mempool.adds", outcome="duplicate").inc()
            return False
        if self._max_size is not None and len(self._records) >= self._max_size:
            # A zero-capacity pool (or one drained concurrently) has no
            # victim to scan for — reject instead of min() on nothing.
            if not self._records:
                if telemetry.enabled:
                    telemetry.counter("mempool.adds", outcome="overflow").inc()
                return False
            # Evict the lowest-fee record if the newcomer pays more.
            victim_id = min(
                self._records,
                key=lambda rid: (self._records[rid].fee, -self._arrival[rid]),
            )
            if self._records[victim_id].fee >= record.fee:
                if telemetry.enabled:
                    telemetry.counter("mempool.adds", outcome="overflow").inc()
                return False
            self.remove(victim_id)
            if telemetry.enabled:
                telemetry.counter("mempool.evictions").inc()
        self._records[record.record_id] = record
        self._arrival[record.record_id] = next(self._counter)
        if telemetry.enabled:
            telemetry.counter("mempool.adds", outcome="accepted").inc()
            telemetry.gauge("mempool.size").set(len(self._records))
        return True

    def add_all(self, records: Iterable[ChainRecord]) -> int:
        """Queue many records; returns how many were accepted."""
        return sum(1 for record in records if self.add(record))

    def get(self, record_id: bytes) -> Optional[ChainRecord]:
        """Look up a pending record without removing it."""
        return self._records.get(record_id)

    def remove(self, record_id: bytes) -> Optional[ChainRecord]:
        """Remove and return a record, or None if absent."""
        self._arrival.pop(record_id, None)
        return self._records.pop(record_id, None)

    def prune(self, mined_ids: Iterable[bytes]) -> int:
        """Drop records that made it into a block; returns count dropped."""
        dropped = 0
        for record_id in mined_ids:
            if self.remove(record_id) is not None:
                dropped += 1
        return dropped

    def select(
        self,
        limit: Optional[int] = None,
        kind: Optional[RecordKind] = None,
        exclude: Optional[Set[bytes]] = None,
    ) -> Tuple[ChainRecord, ...]:
        """Pick records for the next block: highest fee first, FIFO ties.

        ``exclude`` lets miners skip ids already on their canonical
        chain (protection against re-mining after a reorg).
        """
        candidates: List[ChainRecord] = [
            record
            for record in self._records.values()
            if (kind is None or record.kind == kind)
            and (exclude is None or record.record_id not in exclude)
        ]
        candidates.sort(
            key=lambda record: (-record.fee, self._arrival[record.record_id])
        )
        if limit is not None:
            candidates = candidates[:limit]
        if self.telemetry.enabled:
            self.telemetry.histogram("mempool.selection_size").observe(
                len(candidates)
            )
        return tuple(candidates)

    def pending_ids(self) -> Set[bytes]:
        """The set of queued record ids."""
        return set(self._records)

    def clear(self) -> None:
        """Drop everything (used when resetting simulations)."""
        self._records.clear()
        self._arrival.clear()
