"""Struct-packed serialization fast path — same bytes, one C call.

The generic codecs build header byte layouts field by field:
:func:`repro.crypto.hashing.field_frame` frames each hash input and
:func:`repro.codec.pack` frames each wire field, both via per-field
Python loops and ``join``.  Headers dominate the mining/serialization
hot paths and their layout is almost fixed — only the timestamp string
and the integer magnitudes vary in width — so this module compiles the
whole header layout into one cached :class:`struct.Struct` keyed by
those widths and emits the frame in a single C call.

Byte-compatibility is the contract: every function here produces output
identical to the generic codec it shadows (property-tested in
``tests/chain/test_fastpath.py``), so digests, stored frames, and wire
dumps are indistinguishable from the slow path.
"""

from __future__ import annotations

import struct
from typing import Dict, Tuple

from repro.crypto.hashpool import int_frame_parts

__all__ = [
    "header_hash_frame",
    "pack_header_fields",
]

# Cached layouts keyed by the variable field widths.  The key space is
# tiny (timestamp reprs and integer magnitudes only span a few dozen
# widths) so the caches stay small for the life of the process.
_HASH_FRAME_STRUCTS: Dict[Tuple[int, int, int, int], struct.Struct] = {}
_WIRE_STRUCTS: Dict[int, struct.Struct] = {}


def header_hash_frame(
    prev_block_id: bytes,
    merkle_root: bytes,
    timestamp_repr: bytes,
    nonce: int,
    height: int,
    difficulty: int,
    miner_value: bytes,
) -> bytes:
    """The exact byte stream ``hash_fields`` hashes for a block header.

    Concatenation of the seven ``field_frame`` frames (32-byte prev id,
    32-byte merkle root, timestamp repr string, three ints, 20-byte
    miner address) emitted by one cached :class:`struct.Struct`.
    Feeding the result to SHA3-256 yields
    :meth:`repro.chain.block.BlockHeader.header_hash`.
    """
    nonce_sign, nonce_mag = int_frame_parts(nonce)
    height_sign, height_mag = int_frame_parts(height)
    diff_sign, diff_mag = int_frame_parts(difficulty)
    key = (len(timestamp_repr), len(nonce_mag), len(height_mag), len(diff_mag))
    layout = _HASH_FRAME_STRUCTS.get(key)
    if layout is None:
        layout = struct.Struct(
            ">IB32sIB32sIB%dsIBB%dsIBB%dsIBB%dsIB20s" % key
        )
        _HASH_FRAME_STRUCTS[key] = layout
    return layout.pack(
        33, 0x00, prev_block_id,
        33, 0x00, merkle_root,
        len(timestamp_repr) + 1, 0x01, timestamp_repr,
        len(nonce_mag) + 2, 0x02, nonce_sign, nonce_mag,
        len(height_mag) + 2, 0x02, height_sign, height_mag,
        len(diff_mag) + 2, 0x02, diff_sign, diff_mag,
        21, 0x00, miner_value,
    )


def pack_header_fields(
    prev_block_id: bytes,
    merkle_root: bytes,
    timestamp_repr: bytes,
    nonce: int,
    height: int,
    difficulty: int,
    miner_value: bytes,
) -> bytes:
    """``repro.codec.pack`` of the seven wire header fields, struct-packed.

    Byte-identical to the generic ``pack`` call in
    :func:`repro.chain.serialization.encode_header`: each field framed
    with a 4-byte length, integers in their fixed wire widths (16-byte
    nonce, 8-byte height, 32-byte difficulty).  Raises ``OverflowError``
    for values that do not fit those widths, exactly like ``to_bytes``.
    """
    layout = _WIRE_STRUCTS.get(len(timestamp_repr))
    if layout is None:
        layout = struct.Struct(
            ">I32sI32sI%dsI16sI8sI32sI20s" % len(timestamp_repr)
        )
        _WIRE_STRUCTS[len(timestamp_repr)] = layout
    return layout.pack(
        32, prev_block_id,
        32, merkle_root,
        len(timestamp_repr), timestamp_repr,
        16, nonce.to_bytes(16, "big"),
        8, height.to_bytes(8, "big"),
        32, difficulty.to_bytes(32, "big"),
        20, miner_value,
    )
