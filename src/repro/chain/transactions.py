"""Signed value transactions — the "transactions" of Fig. 2.

"Each block records several transactions that have been conducted in a
distributed system" (§II).  Besides SRAs and reports, SmartCrowd blocks
carry plain value transfers (detectors cashing out bounties, providers
topping up insurance accounts).  A transaction is authorized by an
ECDSA signature over its content and ordered per-sender by an account
nonce, exactly the two mechanisms that make an Ethereum-style account
ledger safe against forgery and replay.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codec import pack, unpack
from repro.crypto.ecdsa import Signature
from repro.crypto.hashing import hash_fields
from repro.crypto.keys import Address, KeyPair, PublicKey

__all__ = ["SignedTransaction", "make_transaction"]


@dataclass(frozen=True)
class SignedTransaction:
    """A value transfer: sender → recipient, authorized and replay-safe."""

    sender: Address
    recipient: Address
    value_wei: int
    fee_wei: int
    nonce: int
    sender_key: PublicKey  # the key that must hash to ``sender``
    signature: Signature

    def tx_id(self) -> bytes:
        """Content hash (also the chain record id)."""
        return hash_fields(
            b"transaction",
            self.sender.value,
            self.recipient.value,
            self.value_wei,
            self.fee_wei,
            self.nonce,
        )

    def verify(self) -> bool:
        """Signature and key-to-address binding checks.

        A transaction is only valid if the embedded public key derives
        the claimed sender address *and* signed this content — nonce
        and balance checks are the ledger's job at execution time.
        """
        if self.value_wei < 0 or self.fee_wei < 0 or self.nonce < 0:
            return False
        if self.sender_key.address() != self.sender:
            return False
        return self.sender_key.verify(self.tx_id(), self.signature)

    def to_payload(self) -> bytes:
        """Serialize for inclusion as a chain record."""
        return pack(
            [
                self.sender.value,
                self.recipient.value,
                self.value_wei.to_bytes(16, "big"),
                self.fee_wei.to_bytes(16, "big"),
                self.nonce.to_bytes(8, "big"),
                self.sender_key.to_bytes(),
                self.signature.to_bytes(),
            ]
        )

    @classmethod
    def from_payload(cls, payload: bytes) -> "SignedTransaction":
        """Parse the chain-record form."""
        sender, recipient, value, fee, nonce, key, signature = unpack(payload, 7)
        return cls(
            sender=Address(sender),
            recipient=Address(recipient),
            value_wei=int.from_bytes(value, "big"),
            fee_wei=int.from_bytes(fee, "big"),
            nonce=int.from_bytes(nonce, "big"),
            sender_key=PublicKey.from_bytes(key),
            signature=Signature.from_bytes(signature),
        )


def make_transaction(
    sender_keys: KeyPair,
    recipient: Address,
    value_wei: int,
    nonce: int,
    fee_wei: int = 0,
) -> SignedTransaction:
    """Build and sign a transfer from ``sender_keys``."""
    unsigned = SignedTransaction(
        sender=sender_keys.address,
        recipient=recipient,
        value_wei=value_wei,
        fee_wei=fee_wei,
        nonce=nonce,
        sender_key=sender_keys.public,
        signature=Signature(1, 1),  # placeholder, replaced below
    )
    signature = sender_keys.sign(unsigned.tx_id())
    return SignedTransaction(
        sender=unsigned.sender,
        recipient=unsigned.recipient,
        value_wei=unsigned.value_wei,
        fee_wei=unsigned.fee_wei,
        nonce=unsigned.nonce,
        sender_key=unsigned.sender_key,
        signature=signature,
    )
