"""Proof-of-work: literal mining and the stochastic mining model.

SmartCrowd uses PoW consensus among IoT providers (§V-C) with a fixed
block difficulty of ``0xf00000`` in the prototype, yielding a measured
mean block time of 15.35 s over 2000 blocks (Fig. 3(b)).

Two layers are provided:

* **Literal PoW** (:func:`check_pow`, :func:`mine_block`) — actually
  search nonces until the header hash meets the target.  Used in unit
  tests and small examples with low difficulty, and to validate blocks.
* **Stochastic model** (:class:`MiningModel`) — for experiments, the
  time for a miner with hashrate *h* to find a block at difficulty *D*
  is exponential with rate ``h / D`` (hash trials are Bernoulli with
  success probability ``1/D``, so inter-block times are geometric ≈
  exponential).  The winner of each round is the miner whose sample is
  smallest — equivalently, winner probability is proportional to
  hashrate, which is exactly the property the paper's Fig. 3(a)/4(a)
  economics rely on.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.chain.block import Block, BlockHeader
from repro.crypto.hashing import field_frame, fields_midstate
from repro.crypto.hashpool import search_nonce
from repro.telemetry import NULL_TELEMETRY, Telemetry

__all__ = [
    "MAX_TARGET",
    "PAPER_DIFFICULTY",
    "PAPER_MEAN_BLOCK_TIME",
    "difficulty_to_target",
    "check_pow",
    "mine_block",
    "MiningModel",
    "network_hashrate_for_block_time",
]

#: 2^256, the hash space size.
MAX_TARGET = 1 << 256

#: The block difficulty the paper configures (§VII: "0xf00000").
PAPER_DIFFICULTY = 0xF00000

#: Mean block time the paper measures over 2000 blocks (Fig. 3(b)).
PAPER_MEAN_BLOCK_TIME = 15.35


def difficulty_to_target(difficulty: int) -> int:
    """Map a difficulty to the PoW target: hashes below target win."""
    if difficulty < 1:
        raise ValueError("difficulty must be >= 1")
    return MAX_TARGET // difficulty


def check_pow(header: BlockHeader) -> bool:
    """True if the header hash meets its difficulty target."""
    digest = int.from_bytes(header.header_hash(), "big")
    return digest < difficulty_to_target(header.difficulty)


def mine_block(
    block: Block,
    max_attempts: int = 1_000_000,
    start_nonce: int = 0,
    telemetry: Optional[Telemetry] = None,
) -> Optional[Block]:
    """Literally search nonces until the block meets its PoW target.

    Returns the mined block, or None if ``max_attempts`` nonces were
    exhausted.  Only sensible at low difficulty (tests, demos); the
    experiments use :class:`MiningModel` instead.

    The header fields before the nonce are hashed once into a SHA3-256
    midstate; the pooled searcher (:func:`repro.crypto.hashpool.search_nonce`)
    precomputes each chunk's nonce-frame+suffix tails so every attempt
    is one midstate copy and a single ``update``.  The digest is
    byte-for-byte what :meth:`BlockHeader.header_hash` computes, so
    :func:`check_pow` accepts exactly the same nonces as the naive loop.

    Telemetry (attempt counts, per-search histogram) is recorded after
    the search loop, never inside it, so the disabled path is the bare
    hot loop (gated ≤5% overhead in ``benchmarks/``).
    """
    header = block.header
    target = difficulty_to_target(header.difficulty)
    midstate = fields_midstate(
        header.prev_block_id,
        header.merkle_root,
        repr(float(header.timestamp)),
    )
    suffix = (
        field_frame(header.height)
        + field_frame(header.difficulty)
        + field_frame(header.miner.value)
    )
    found: Optional[Block] = None
    attempts = max_attempts
    hit = search_nonce(midstate, suffix, target, start_nonce, max_attempts)
    if hit is not None:
        nonce, digest = hit
        winner = header.with_nonce(nonce)
        object.__setattr__(winner, "_hash", digest)  # pre-warm the id cache
        found = Block(header=winner, records=block.records)
        attempts = nonce - start_nonce + 1
    if telemetry is not None and telemetry.enabled:
        telemetry.counter("pow.nonce_attempts").inc(attempts)
        telemetry.counter(
            "pow.searches", outcome="found" if found is not None else "exhausted"
        ).inc()
        telemetry.histogram("pow.attempts_per_search").observe(attempts)
    return found


def network_hashrate_for_block_time(
    difficulty: int, mean_block_time: float
) -> float:
    """Total network hashrate (hashes/s) giving the desired mean block time.

    With per-hash success probability ``1/difficulty``, a network doing
    ``H`` hashes/s finds blocks at rate ``H / difficulty``.
    """
    if mean_block_time <= 0:
        raise ValueError("mean block time must be positive")
    return difficulty / mean_block_time


@dataclass(frozen=True)
class MiningOutcome:
    """The result of one mining round: who won and after how long."""

    winner: str
    interval: float


class MiningModel:
    """Stochastic PoW competition among named miners.

    Each miner *i* holds hashrate ``h_i``; at difficulty ``D`` its block
    discovery process is Poisson with rate ``h_i / D``.  The next block
    is found after ``Exp(sum_i h_i / D)`` seconds and the finder is
    miner *i* with probability ``h_i / sum h`` — the memorylessness of
    the exponential makes sequential rounds independent, matching real
    PoW.  The paper's observation that rewards are "not strictly
    obeying" hashpower proportions (§VII-A) is exactly the variance of
    this sampling.
    """

    def __init__(
        self,
        hashrates: Mapping[str, float],
        difficulty: int = PAPER_DIFFICULTY,
        rng: Optional[random.Random] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if not hashrates:
            raise ValueError("at least one miner is required")
        if any(rate <= 0 for rate in hashrates.values()):
            raise ValueError("hashrates must be positive")
        self._hashrates: Dict[str, float] = dict(hashrates)
        self._difficulty = difficulty
        self._rng = rng if rng is not None else random.Random()
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        # Winner-selection index: miner names + cumulative hashrates,
        # rebuilt lazily after membership/hashrate changes.
        self._names: Optional[List[str]] = None
        self._cumulative: Optional[List[float]] = None

    @property
    def difficulty(self) -> int:
        """Current difficulty."""
        return self._difficulty

    @property
    def total_hashrate(self) -> float:
        """Sum of all miners' hashrates."""
        return sum(self._hashrates.values())

    @property
    def mean_block_time(self) -> float:
        """Expected seconds per block at current difficulty."""
        return self._difficulty / self.total_hashrate

    def hashrate_share(self, miner: str) -> float:
        """ζ_i — miner's proportion of total hashrate (Eq. 14)."""
        return self._hashrates[miner] / self.total_hashrate

    def set_hashrate(self, miner: str, hashrate: float) -> None:
        """Add or update a miner's hashrate (models join/leave/upgrade)."""
        if hashrate < 0:
            raise ValueError("hashrate must be non-negative")
        if hashrate == 0:
            self._hashrates.pop(miner, None)
            if not self._hashrates:
                raise ValueError("cannot remove the last miner")
        else:
            self._hashrates[miner] = hashrate
        self._names = None
        self._cumulative = None

    def _winner_index(self) -> Tuple[List[str], List[float]]:
        """The (names, cumulative hashrate) table for winner sampling."""
        if self._cumulative is None or self._names is None:
            self._names = list(self._hashrates)
            cumulative: List[float] = []
            running = 0.0
            for rate in self._hashrates.values():
                running += rate
                cumulative.append(running)
            self._cumulative = cumulative
        return self._names, self._cumulative

    def next_block(self) -> MiningOutcome:
        """Sample the next mining round: (winner, interval).

        Winner selection is a binary search over cumulative hashrates —
        O(log m) per block instead of a linear scan — and draws the same
        RNG stream (and thus the same winners) as the scan it replaced.
        """
        names, cumulative = self._winner_index()
        total = cumulative[-1]
        interval = self._rng.expovariate(total / self._difficulty)
        pick = self._rng.random() * total
        index = bisect_left(cumulative, pick)
        if index >= len(names):  # float edge: pick rounded up to total
            index = len(names) - 1
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.histogram("mining.interval_seconds").observe(interval)
            telemetry.counter("mining.blocks", winner=names[index]).inc()
        return MiningOutcome(winner=names[index], interval=interval)

    def sample_intervals(self, count: int) -> Tuple[float, ...]:
        """Sample ``count`` consecutive block intervals (Fig. 3(b))."""
        return tuple(self.next_block().interval for _ in range(count))

    def sample_interval_batch(self, count: int) -> Tuple[float, ...]:
        """Sample ``count`` block intervals without sampling winners.

        One RNG draw per block instead of two, and no winner lookup —
        for interval-only analyses (block-time distributions at scale).
        NOT stream-compatible with :meth:`sample_intervals`: it draws
        half as many variates from the shared RNG.
        """
        rate = self.total_hashrate / self._difficulty
        expovariate = self._rng.expovariate
        return tuple(expovariate(rate) for _ in range(count))

    @classmethod
    def from_shares(
        cls,
        shares: Mapping[str, float],
        difficulty: int = PAPER_DIFFICULTY,
        mean_block_time: float = PAPER_MEAN_BLOCK_TIME,
        rng: Optional[random.Random] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> "MiningModel":
        """Build a model from hashpower *shares* and a target block time.

        This mirrors the paper's setup: 5 providers configured to the
        top-5 Ethereum computation proportions, with difficulty tuned so
        the mean block time matches the measured 15.35 s.
        """
        total_share = sum(shares.values())
        if total_share <= 0:
            raise ValueError("shares must sum to a positive value")
        network_rate = network_hashrate_for_block_time(difficulty, mean_block_time)
        hashrates = {
            name: network_rate * share / total_share for name, share in shares.items()
        }
        return cls(hashrates, difficulty=difficulty, rng=rng, telemetry=telemetry)


#: The top-5 Ethereum miner computation proportions the paper simulates
#: (§VII: "set 5 nodes as IoT providers and adjust the thread numbers ...
#: to simulate top 5 computation proportions"; values read from Fig. 3/4).
PAPER_HASHPOWER_SHARES: Dict[str, float] = {
    "provider-1": 0.2630,
    "provider-2": 0.2220,
    "provider-3": 0.1490,
    "provider-4": 0.1180,
    "provider-5": 0.1010,
}
