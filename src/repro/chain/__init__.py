"""Blockchain substrate: blocks, Merkle trees, PoW, fork choice.

Reproduces the chain layer SmartCrowd builds on (Fig. 2, §V-C): blocks
linked by ``PreBlockID``/``CurBlockID`` carrying Merkle-organized
detection results, mined under PoW by IoT providers, with Bitcoin-style
6-block confirmation.
"""

from repro.chain.block import (
    Block,
    BlockHeader,
    ChainRecord,
    GENESIS_PARENT,
    RecordKind,
)
from repro.chain.chain import (
    Blockchain,
    ChainError,
    DEFAULT_CONFIRMATION_DEPTH,
    RecordLocation,
)
from repro.chain.consensus import MinedEvent, MiningSimulation, make_genesis
from repro.chain.mempool import Mempool
from repro.chain.merkle import MerkleProof, MerkleTree, compute_merkle_root
from repro.chain.pow import (
    MiningModel,
    PAPER_DIFFICULTY,
    PAPER_HASHPOWER_SHARES,
    PAPER_MEAN_BLOCK_TIME,
    check_pow,
    difficulty_to_target,
    mine_block,
    network_hashrate_for_block_time,
)
from repro.chain.ledger import LedgerError, LedgerStateMachine, apply_block
from repro.chain.transactions import SignedTransaction, make_transaction
from repro.chain.serialization import (
    decode_block,
    encode_block,
    export_chain,
    import_chain,
)
from repro.chain.retarget import (
    RetargetingMiner,
    epoch_adjust,
    homestead_adjust,
)
from repro.chain.validation import BlockValidator, ValidationResult

__all__ = [
    "Block",
    "BlockHeader",
    "BlockValidator",
    "Blockchain",
    "ChainError",
    "ChainRecord",
    "DEFAULT_CONFIRMATION_DEPTH",
    "GENESIS_PARENT",
    "LedgerError",
    "LedgerStateMachine",
    "Mempool",
    "MerkleProof",
    "MerkleTree",
    "MinedEvent",
    "MiningModel",
    "MiningSimulation",
    "PAPER_DIFFICULTY",
    "PAPER_HASHPOWER_SHARES",
    "PAPER_MEAN_BLOCK_TIME",
    "RecordKind",
    "RecordLocation",
    "RetargetingMiner",
    "SignedTransaction",
    "ValidationResult",
    "apply_block",
    "check_pow",
    "compute_merkle_root",
    "decode_block",
    "difficulty_to_target",
    "encode_block",
    "epoch_adjust",
    "export_chain",
    "homestead_adjust",
    "import_chain",
    "make_genesis",
    "make_transaction",
    "mine_block",
    "network_hashrate_for_block_time",
]
