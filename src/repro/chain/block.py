"""Blocks and chain records.

Implements the block layout of Fig. 2: a header carrying
``PreBlockID``, ``CurBlockID``, ``Timestamp`` and ``Nonce``, and a body
of ω detection results organized under a Merkle root.  Besides
detection results, SmartCrowd blocks also record SRAs and plain value
transactions (§IV-B: "Besides transactions, the blocks of SmartCrowd
also record SRAs and detection reports").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.codec import pack
from repro.crypto.hashing import hash_fields, sha3_256
from repro.crypto.keys import Address
from repro.chain.fastpath import header_hash_frame
from repro.chain.merkle import MerkleTree, compute_merkle_root

__all__ = ["RecordKind", "ChainRecord", "BlockHeader", "Block", "GENESIS_PARENT"]

#: Parent id of the genesis block.
GENESIS_PARENT = b"\x00" * 32


class RecordKind(enum.Enum):
    """The kinds of records a SmartCrowd block may carry."""

    TRANSACTION = "transaction"
    SRA = "sra"
    INITIAL_REPORT = "initial_report"
    DETAILED_REPORT = "detailed_report"
    CONTRACT_CALL = "contract_call"


@dataclass(frozen=True)
class ChainRecord:
    """One entry in a block body.

    The chain layer is agnostic to payload semantics: SRAs and reports
    are serialized by :mod:`repro.core` into ``payload`` bytes, and the
    semantic layer re-parses them on read.  ``fee`` is the transaction
    fee ψ paid to the miner (Eq. 8); ``sender`` funds it.
    """

    kind: RecordKind
    record_id: bytes
    payload: bytes
    fee: int = 0
    sender: Optional[Address] = None
    _encoded: Optional[bytes] = field(
        default=None, compare=False, repr=False, hash=False
    )

    def __post_init__(self) -> None:
        if len(self.record_id) != 32:
            raise ValueError("record_id must be a 32-byte hash")
        if self.fee < 0:
            raise ValueError("fee cannot be negative")

    def to_bytes(self) -> bytes:
        """Canonical byte encoding used as the Merkle leaf payload.

        Fields are length-prefixed (the repo's framed codec) rather than
        delimiter-joined: payloads and the optional sender are arbitrary
        bytes, so only explicit framing keeps the encoding injective —
        two distinct records can never share a Merkle leaf.  The result
        is memoized on the frozen record; it also serves as the wire
        encoding (:mod:`repro.chain.serialization`).
        """
        encoded = object.__getattribute__(self, "_encoded")
        if encoded is None:
            encoded = pack(
                [
                    self.kind.value.encode(),
                    self.record_id,
                    self.payload,
                    self.fee.to_bytes(16, "big"),
                    self.sender.value if self.sender is not None else b"",
                ]
            )
            object.__setattr__(self, "_encoded", encoded)
        return encoded


@dataclass(frozen=True)
class BlockHeader:
    """Block header per Fig. 2.

    ``block_id`` (CurBlockID) is the PoW-checked hash of the other
    fields; it is computed, never supplied.
    """

    prev_block_id: bytes
    merkle_root: bytes
    timestamp: float
    nonce: int
    height: int
    difficulty: int
    miner: Address
    _hash: Optional[bytes] = field(
        default=None, compare=False, repr=False, hash=False
    )

    def header_hash(self) -> bytes:
        """Compute CurBlockID — the hash the PoW target constrains.

        Memoized on the frozen header: ``block_id``, validation,
        light-client proof checks, and chain indexing all re-read the
        identity, so it is hashed once per header, not per call.
        """
        cached = object.__getattribute__(self, "_hash")
        if cached is not None:
            return cached
        # Timestamps are simulated-clock floats; encode via repr to keep
        # the encoding stable and injective for finite floats.
        if len(self.prev_block_id) == 32 and len(self.merkle_root) == 32:
            # Struct-packed fast path (repro.chain.fastpath): one C call
            # emits the exact field frames hash_fields would feed.
            digest = sha3_256(
                header_hash_frame(
                    self.prev_block_id,
                    self.merkle_root,
                    repr(float(self.timestamp)).encode(),
                    self.nonce,
                    self.height,
                    self.difficulty,
                    self.miner.value,
                )
            )
        else:  # non-standard id widths fall back to the generic codec
            digest = hash_fields(
                self.prev_block_id,
                self.merkle_root,
                repr(float(self.timestamp)),
                self.nonce,
                self.height,
                self.difficulty,
                self.miner.value,
            )
        object.__setattr__(self, "_hash", digest)
        return digest

    def with_nonce(self, nonce: int) -> "BlockHeader":
        """Return a copy with a different nonce (used while mining)."""
        return BlockHeader(
            prev_block_id=self.prev_block_id,
            merkle_root=self.merkle_root,
            timestamp=self.timestamp,
            nonce=nonce,
            height=self.height,
            difficulty=self.difficulty,
            miner=self.miner,
        )


@dataclass(frozen=True)
class Block:
    """A full block: header plus ω records.

    The Merkle tree over record encodings is built lazily and cached so
    that proof generation for lightweight detectors is cheap.
    """

    header: BlockHeader
    records: Tuple[ChainRecord, ...]
    _merkle: Optional[MerkleTree] = field(
        default=None, compare=False, repr=False, hash=False
    )
    _by_id: Optional[Dict[bytes, ChainRecord]] = field(
        default=None, compare=False, repr=False, hash=False
    )

    @property
    def block_id(self) -> bytes:
        """CurBlockID of this block."""
        return self.header.header_hash()

    @property
    def height(self) -> int:
        """Height above genesis."""
        return self.header.height

    @property
    def omega(self) -> int:
        """ω — the number of records in this block (paper's notation)."""
        return len(self.records)

    def merkle_tree(self) -> MerkleTree:
        """The Merkle tree over record encodings (cached)."""
        tree = object.__getattribute__(self, "_merkle")
        if tree is None:
            tree = MerkleTree([r.to_bytes() for r in self.records])
            object.__setattr__(self, "_merkle", tree)
        return tree

    def total_fees(self) -> int:
        """Sum of transaction fees ψ·ω collected by the miner (Eq. 8)."""
        return sum(record.fee for record in self.records)

    def find_record(self, record_id: bytes) -> Optional[ChainRecord]:
        """Locate a record by id, or None (indexed; first occurrence wins)."""
        index = object.__getattribute__(self, "_by_id")
        if index is None:
            index = {}
            for record in self.records:
                index.setdefault(record.record_id, record)
            object.__setattr__(self, "_by_id", index)
        return index.get(record_id)

    @classmethod
    def assemble(
        cls,
        prev_block_id: bytes,
        height: int,
        records: Tuple[ChainRecord, ...],
        timestamp: float,
        difficulty: int,
        miner: Address,
        nonce: int = 0,
    ) -> "Block":
        """Build an (unmined) block; the nonce is found by the PoW miner."""
        root = compute_merkle_root([r.to_bytes() for r in records])
        header = BlockHeader(
            prev_block_id=prev_block_id,
            merkle_root=root,
            timestamp=timestamp,
            nonce=nonce,
            height=height,
            difficulty=difficulty,
            miner=miner,
        )
        return cls(header=header, records=records)
