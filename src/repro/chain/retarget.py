"""Difficulty retargeting — an extension beyond the paper's prototype.

The prototype fixes difficulty at 0xf00000 (§VII), which only holds the
15.35 s block time while total hashpower is constant.  Real deployments
see providers join and leave; this module adds an Ethereum-Homestead-
style per-block adjustment and a Bitcoin-style epoch adjustment so the
block time re-converges after hashpower changes (exercised in
``tests/chain/test_retarget.py``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.chain.pow import MiningModel
from repro.telemetry import NULL_TELEMETRY, Telemetry

__all__ = [
    "homestead_adjust",
    "epoch_adjust",
    "RetargetingMiner",
]

#: Minimum difficulty floor (avoids death spirals at tiny hashpower).
MIN_DIFFICULTY = 16


def homestead_adjust(
    parent_difficulty: int,
    block_interval: float,
    target_time: float = 15.35,
) -> int:
    """Per-block adjustment à la Ethereum Homestead.

    Difficulty moves by ``parent/2048 × clamp(1 − interval/(target·2/3), −99)``:
    fast blocks push difficulty up, slow blocks pull it down, bounded
    so one outlier interval cannot swing it far.
    """
    if parent_difficulty < 1:
        raise ValueError("difficulty must be positive")
    if block_interval < 0:
        raise ValueError("interval cannot be negative")
    sensitivity = max(1 - int(block_interval / (target_time * 2 / 3)), -99)
    adjusted = parent_difficulty + (parent_difficulty // 2048) * sensitivity
    return max(MIN_DIFFICULTY, adjusted)


def epoch_adjust(
    current_difficulty: int,
    epoch_intervals: List[float],
    target_time: float = 15.35,
    max_factor: float = 4.0,
) -> int:
    """Epoch adjustment à la Bitcoin: rescale by observed vs target time.

    The correction factor is clamped to ``[1/max_factor, max_factor]``
    per epoch, as Bitcoin does, so a single anomalous epoch cannot move
    difficulty arbitrarily.
    """
    if not epoch_intervals:
        raise ValueError("epoch must contain at least one interval")
    observed_mean = sum(epoch_intervals) / len(epoch_intervals)
    factor = target_time / observed_mean if observed_mean > 0 else max_factor
    factor = min(max(factor, 1.0 / max_factor), max_factor)
    return max(MIN_DIFFICULTY, int(current_difficulty * factor))


@dataclass
class RetargetStep:
    """One mined block under retargeting."""

    interval: float
    difficulty: int
    winner: str


class RetargetingMiner:
    """A mining competition whose difficulty tracks a target block time.

    Wraps :class:`~repro.chain.pow.MiningModel`, re-deriving the model
    after every difficulty change; hashrates can be updated mid-run to
    model providers joining/leaving.
    """

    def __init__(
        self,
        hashrates: dict,
        initial_difficulty: int,
        target_time: float = 15.35,
        scheme: str = "homestead",
        epoch_length: int = 32,
        rng: Optional[random.Random] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if scheme not in ("homestead", "epoch"):
            raise ValueError(f"unknown retargeting scheme {scheme!r}")
        self._hashrates = dict(hashrates)
        self.difficulty = initial_difficulty
        self.target_time = target_time
        self.scheme = scheme
        self.epoch_length = epoch_length
        self._rng = rng if rng is not None else random.Random()
        self._epoch_buffer: List[float] = []
        self.history: List[RetargetStep] = []
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY

    def set_hashrate(self, miner: str, hashrate: float) -> None:
        """Model a provider joining, leaving, or rescaling."""
        if hashrate <= 0:
            self._hashrates.pop(miner, None)
            if not self._hashrates:
                raise ValueError("cannot remove the last miner")
        else:
            self._hashrates[miner] = hashrate

    def step(self) -> RetargetStep:
        """Mine one block and retarget."""
        model = MiningModel(self._hashrates, difficulty=self.difficulty, rng=self._rng)
        outcome = model.next_block()
        step = RetargetStep(
            interval=outcome.interval,
            difficulty=self.difficulty,
            winner=outcome.winner,
        )
        self.history.append(step)
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.histogram("retarget.interval_seconds").observe(
                outcome.interval
            )
            telemetry.histogram("retarget.difficulty").observe(self.difficulty)
            telemetry.counter("retarget.blocks", winner=outcome.winner).inc()
        if self.scheme == "homestead":
            self.difficulty = homestead_adjust(
                self.difficulty, outcome.interval, self.target_time
            )
        else:
            self._epoch_buffer.append(outcome.interval)
            if len(self._epoch_buffer) >= self.epoch_length:
                self.difficulty = epoch_adjust(
                    self.difficulty, self._epoch_buffer, self.target_time
                )
                self._epoch_buffer = []
        return step

    def run_blocks(self, count: int) -> List[RetargetStep]:
        """Mine ``count`` blocks."""
        return [self.step() for _ in range(count)]

    def recent_mean_interval(self, window: int = 64) -> float:
        """Mean block time over the last ``window`` blocks."""
        recent = self.history[-window:]
        if not recent:
            raise ValueError("no blocks mined yet")
        return sum(step.interval for step in recent) / len(recent)
