"""The blockchain store: fork choice, reorgs, confirmation depth.

SmartCrowd stores verified detection results in a PoW chain maintained
by IoT providers (§V-C).  "Like Bitcoin system, this block recording
detection results will be finally confirmed when 6 newly generated
blocks are linked to this blockchain" — confirmation depth is exposed
as :attr:`Blockchain.confirmation_depth` (default 6) and drives the
incentive triggers in :mod:`repro.core`.

Fork choice is heaviest-chain (total difficulty), as in Ethereum; with
the paper's fixed difficulty this coincides with longest-chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.chain.block import (
    Block,
    ChainRecord,
    GENESIS_PARENT,
    RecordKind,
)
from repro.crypto.keys import Address

__all__ = ["Blockchain", "ChainError", "DEFAULT_CONFIRMATION_DEPTH", "RecordLocation"]

#: Bitcoin-style finality depth used by the paper (§V-C).
DEFAULT_CONFIRMATION_DEPTH = 6


class ChainError(ValueError):
    """Raised for structurally invalid chain operations."""


@dataclass(frozen=True)
class RecordLocation:
    """Where a record lives on the canonical chain."""

    block_id: bytes
    height: int
    index_in_block: int


class Blockchain:
    """An append-only block DAG with heaviest-chain fork choice.

    All received valid blocks are retained (side branches included) so
    reorgs can switch the canonical head.  Record indexes are rebuilt
    against the canonical chain on every head change; consumers query
    only confirmed records.
    """

    def __init__(
        self,
        genesis: Block,
        confirmation_depth: int = DEFAULT_CONFIRMATION_DEPTH,
    ) -> None:
        if genesis.header.prev_block_id != GENESIS_PARENT:
            raise ChainError("genesis must point at the zero parent")
        if confirmation_depth < 0:
            raise ChainError("confirmation depth cannot be negative")
        self._blocks: Dict[bytes, Block] = {genesis.block_id: genesis}
        self._total_difficulty: Dict[bytes, int] = {
            genesis.block_id: genesis.header.difficulty
        }
        self._children: Dict[bytes, List[bytes]] = {}
        self._genesis_id = genesis.block_id
        self._head_id = genesis.block_id
        self.confirmation_depth = confirmation_depth
        self._record_index: Dict[bytes, RecordLocation] = {}
        self._reindex()

    # -- basic accessors -------------------------------------------------

    @property
    def genesis(self) -> Block:
        """The genesis block."""
        return self._blocks[self._genesis_id]

    @property
    def head(self) -> Block:
        """The tip of the canonical (heaviest) chain."""
        return self._blocks[self._head_id]

    @property
    def height(self) -> int:
        """Height of the canonical head."""
        return self.head.height

    def __len__(self) -> int:
        """Number of blocks on the canonical chain (including genesis)."""
        return self.head.height + 1

    def __contains__(self, block_id: bytes) -> bool:
        return block_id in self._blocks

    def get_block(self, block_id: bytes) -> Optional[Block]:
        """Fetch any stored block (canonical or side-branch) by id."""
        return self._blocks.get(block_id)

    def block_at_height(self, height: int) -> Optional[Block]:
        """The canonical block at ``height``, or None if above the head.

        Heights are absolute block numbers: bools are rejected (``True``
        is an ``int`` in Python and would silently read height 1) and so
        are negative heights — callers expecting Python-list semantics
        (``-1`` = head) would otherwise get a silent None where they
        meant the tip.
        """
        if isinstance(height, bool):
            raise ChainError(
                "block height must be an int, not a bool "
                "(True/False would silently read heights 1/0)"
            )
        if height < 0:
            raise ChainError(
                f"height {height} is negative: canonical heights are "
                "absolute, with no Python-list wraparound"
            )
        if height > self.head.height:
            return None
        block = self.head
        while block.height > height:
            block = self._blocks[block.header.prev_block_id]
        return block

    def iter_canonical(self) -> Iterator[Block]:
        """Iterate canonical blocks from genesis to head."""
        chain: List[Block] = []
        block = self.head
        while True:
            chain.append(block)
            if block.block_id == self._genesis_id:
                break
            block = self._blocks[block.header.prev_block_id]
        return iter(reversed(chain))

    def total_difficulty(self, block_id: Optional[bytes] = None) -> int:
        """Cumulative difficulty from genesis to ``block_id`` (default head)."""
        return self._total_difficulty[block_id or self._head_id]

    def is_canonical(self, block_id: bytes) -> bool:
        """True if ``block_id`` lies on the canonical chain."""
        block = self._blocks.get(block_id)
        if block is None:
            return False
        canonical = self.block_at_height(block.height)
        return canonical is not None and canonical.block_id == block_id

    # -- mutation ---------------------------------------------------------

    def add_block(self, block: Block) -> bool:
        """Store a block whose parent is known.

        Returns True if the head moved (extension or reorg).  Raises
        :class:`ChainError` for orphan parents or duplicate ids; PoW and
        record validity are the responsibility of
        :mod:`repro.chain.validation` before insertion.
        """
        parent_id = block.header.prev_block_id
        if block.block_id in self._blocks:
            raise ChainError("duplicate block")
        parent = self._blocks.get(parent_id)
        if parent is None:
            raise ChainError("unknown parent block")
        if block.height != parent.height + 1:
            raise ChainError(
                f"height {block.height} does not extend parent height {parent.height}"
            )
        self._blocks[block.block_id] = block
        self._total_difficulty[block.block_id] = (
            self._total_difficulty[parent_id] + block.header.difficulty
        )
        self._children.setdefault(parent_id, []).append(block.block_id)

        if self._total_difficulty[block.block_id] > self._total_difficulty[self._head_id]:
            is_extension = parent_id == self._head_id
            self._head_id = block.block_id
            if is_extension:
                # Pure extension: index only the new block's records.
                for position, record in enumerate(block.records):
                    self._record_index[record.record_id] = RecordLocation(
                        block_id=block.block_id,
                        height=block.height,
                        index_in_block=position,
                    )
            else:
                self._reindex()  # reorg: rebuild against the new branch
            return True
        return False

    def _reindex(self) -> None:
        """Rebuild the record index against the canonical chain."""
        self._record_index = {}
        for block in self.iter_canonical():
            for position, record in enumerate(block.records):
                self._record_index[record.record_id] = RecordLocation(
                    block_id=block.block_id,
                    height=block.height,
                    index_in_block=position,
                )

    # -- confirmation & queries -------------------------------------------

    def confirmations(self, block_id: bytes) -> int:
        """Blocks linked after ``block_id`` on the canonical chain.

        Returns -1 if the block is unknown or off the canonical chain
        (an orphaned/side-branch block has no confirmations).
        """
        if not self.is_canonical(block_id):
            return -1
        return self.head.height - self._blocks[block_id].height

    def is_confirmed(self, block_id: bytes) -> bool:
        """True once ``confirmation_depth`` blocks extend ``block_id``."""
        depth = self.confirmations(block_id)
        return depth >= self.confirmation_depth

    def locate_record(self, record_id: bytes) -> Optional[RecordLocation]:
        """Find a record on the canonical chain."""
        return self._record_index.get(record_id)

    def get_record(self, record_id: bytes) -> Optional[ChainRecord]:
        """Fetch a canonical record by id."""
        location = self._record_index.get(record_id)
        if location is None:
            return None
        return self._blocks[location.block_id].records[location.index_in_block]

    def record_is_confirmed(self, record_id: bytes) -> bool:
        """True if the record's containing block is confirmed."""
        location = self._record_index.get(record_id)
        return location is not None and self.is_confirmed(location.block_id)

    def confirmed_records(
        self, kind: Optional[RecordKind] = None
    ) -> List[ChainRecord]:
        """All confirmed canonical records, optionally filtered by kind."""
        results: List[ChainRecord] = []
        for block in self.iter_canonical():
            if not self.is_confirmed(block.block_id):
                continue
            for record in block.records:
                if kind is None or record.kind == kind:
                    results.append(record)
        return results

    def record_ids_on_canonical(self) -> Set[bytes]:
        """The set of record ids on the canonical chain (mempool dedup)."""
        return set(self._record_index)

    def record_on_branch(self, record_id: bytes, tip_id: bytes) -> bool:
        """True if the record appears in ``tip_id``'s ancestry (inclusive).

        The duplicate-record rule must be judged against the branch a
        block extends, not the validator's current canonical chain —
        the same record legitimately exists on both sides of a fork
        (mined independently during a partition, or resubmitted after a
        reorg), and a validator wedged on the lighter side must still
        be able to adopt the heavier branch.
        """
        cursor = self._blocks.get(tip_id)
        while cursor is not None:
            if any(record.record_id == record_id for record in cursor.records):
                return True
            if cursor.height == 0:
                return False
            cursor = self._blocks.get(cursor.header.prev_block_id)
        return False

    def blocks_mined_by(self, miner: Address) -> List[Block]:
        """Canonical blocks credited to ``miner`` (χ in Eq. 8)."""
        return [
            block
            for block in self.iter_canonical()
            if block.header.miner == miner and block.height > 0
        ]

    def fork_point(self, block_id: bytes) -> Optional[bytes]:
        """Nearest ancestor of ``block_id`` on the canonical chain.

        For a canonical block this is the block itself; for an unknown
        block it is None.  Used after reorgs and restarts to find where
        an abandoned branch diverged from the adopted one.
        """
        block = self._blocks.get(block_id)
        while block is not None:
            if self.is_canonical(block.block_id):
                return block.block_id
            block = self._blocks.get(block.header.prev_block_id)
        return None

    def orphaned_records(self, old_head_id: bytes) -> List[ChainRecord]:
        """Records stranded on the branch ending at ``old_head_id``.

        Walks from the abandoned tip down to its fork point with the
        current canonical chain and returns, oldest first, every record
        that is *not* also present on the canonical chain — these are
        the transactions a node must resubmit to its mempool after a
        reorg (or after adopting a heavier chain during resync), so no
        confirmed-then-reorged report silently disappears.
        """
        fork = self.fork_point(old_head_id)
        if fork is None or fork == old_head_id:
            return []
        canonical_ids = self.record_ids_on_canonical()
        stranded: List[ChainRecord] = []
        block = self._blocks[old_head_id]
        while block.block_id != fork:
            for record in reversed(block.records):
                if record.record_id not in canonical_ids:
                    stranded.append(record)
            block = self._blocks[block.header.prev_block_id]
        stranded.reverse()
        return stranded

    def fork_ids(self) -> Tuple[bytes, ...]:
        """Ids of stored blocks that are NOT canonical (side branches)."""
        return tuple(
            block_id for block_id in self._blocks if not self.is_canonical(block_id)
        )
