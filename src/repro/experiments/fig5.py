"""Fig. 5 — balance of IoT providers and the VP baseline.

Fig. 5(a): VPB — the break-even vulnerability proportion — per provider
hashpower for 10/20/30-minute windows with a 1000-ether insurance.
Higher HP ⇒ more mining income ⇒ a larger VPB can be absorbed; longer
windows accumulate more income against the single release's insurance,
so VPB grows with the window.  The paper reads VPB ≈ 0.038 for the
14.90%-HP provider at 10 minutes.

Fig. 5(b): provider balance at VP = VPB, VPB±0.01 (10-minute window,
1000-ether insurance): ≈0 at VPB, and ±~10 ether when VP moves by 0.01
(ΔVP·I = 0.01·1000).  Mining income is *measured* from the stochastic
competition so the figure keeps the paper's sampling noise; the
punishment term is the exact VP·I + cp expectation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.analysis.vpb import vpb_closed_form
from repro.chain.consensus import MiningSimulation
from repro.chain.pow import PAPER_HASHPOWER_SHARES
from repro.core.incentives import IncentiveParameters
from repro.crypto.keys import KeyPair
from repro.economics.batch import provider_balance_curves_ether
from repro.experiments.harness import ResultTable
from repro.experiments.runner import (
    SweepCheckpoint,
    derive_seeds,
    run_trials,
    sweep_checkpoint,
)
from repro.telemetry import Telemetry
from repro.workloads.scenarios import provider_zeta

__all__ = ["Fig5aResult", "Fig5bResult", "run_fig5a", "run_fig5b", "PAPER_VPB_REFERENCE"]

#: The paper's reference point: provider at 14.90% HP, 10 min, I=1000.
PAPER_VPB_REFERENCE = 0.038


@dataclass
class Fig5aResult:
    """VPB per provider per window."""

    #: provider -> window seconds -> VPB
    vpb: Dict[str, Dict[float, float]]
    shares: Dict[str, float]

    def to_table(self) -> ResultTable:
        windows = sorted(next(iter(self.vpb.values())))
        table = ResultTable(
            title="Fig. 5(a) — VP baseline (VPB) vs hashing power (I=1000 ETH)",
            columns=["Provider", "HP share"]
            + [f"t={int(w / 60)}min" for w in windows],
        )
        for name in sorted(self.shares, key=self.shares.get, reverse=True):
            table.add_row(
                name,
                f"{self.shares[name] * 100:.2f}%",
                *[round(self.vpb[name][w], 4) for w in windows],
            )
        table.add_note(
            f"paper reference: VPB ≈ {PAPER_VPB_REFERENCE} for 14.90% HP at 10 min"
        )
        table.add_note("higher HP -> larger VPB; longer window -> larger VPB")
        return table


def run_fig5a(
    windows: Tuple[float, ...] = (600.0, 1200.0, 1800.0),
    insurance_ether: float = 1000.0,
    omega_per_block: float = 2.0,
) -> Fig5aResult:
    """Closed-form VPB over the provider × window grid.

    ``omega_per_block`` — average detection reports per block (fee
    income); at the paper's report volume a couple per block is
    typical.
    """
    params = IncentiveParameters()
    vpb: Dict[str, Dict[float, float]] = {}
    for name in PAPER_HASHPOWER_SHARES:
        zeta = provider_zeta(name)
        vpb[name] = {
            window: vpb_closed_form(
                params,
                zeta_i=zeta,
                insurance_ether=insurance_ether,
                window=window,
                releases=1.0,
                omega_per_block=omega_per_block,
            )
            for window in windows
        }
    return Fig5aResult(vpb=vpb, shares=dict(PAPER_HASHPOWER_SHARES))


@dataclass
class Fig5bResult:
    """Provider balance at VPB and VPB±0.01 (measured mining income)."""

    provider: str
    vpb: float
    #: vp -> list of per-trial balances (ether)
    balances: Dict[float, List[float]]

    def mean_balance(self, vp: float) -> float:
        samples = self.balances[vp]
        return sum(samples) / len(samples)

    def to_table(self) -> ResultTable:
        table = ResultTable(
            title=f"Fig. 5(b) — balance of {self.provider} (I=1000 ETH, 10 min window)",
            columns=["VP", "Mean balance (ETH)", "Trials"],
        )
        for vp in sorted(self.balances):
            label = "VPB" if abs(vp - self.vpb) < 1e-6 else (
                "VPB+0.01" if vp > self.vpb else "VPB-0.01"
            )
            table.add_row(
                f"{vp:.3f} ({label})",
                round(self.mean_balance(vp), 2),
                len(self.balances[vp]),
            )
        table.add_note(
            "paper: ~0 at VPB; ±0.01 VP shifts balance by ~10 ETH (ΔVP·I)"
        )
        return table


def _fig5b_trial(args: Tuple[int, str, float]) -> int:
    """One mining-income trial: blocks ``provider`` wins in ``window``.

    Module-level and seed-driven so :func:`repro.experiments.runner.run_trials`
    can fan trials out across processes with bit-identical results.
    """
    trial_seed, provider, window = args
    addresses = {
        name: KeyPair.from_seed(f"fig5:{name}".encode()).address
        for name in PAPER_HASHPOWER_SHARES
    }
    simulation = MiningSimulation.from_shares(
        PAPER_HASHPOWER_SHARES,
        addresses,
        rng=random.Random(trial_seed),
    )
    events = simulation.run_for(window)
    return sum(1 for event in events if event.miner_name == provider)


def run_fig5b(
    provider: str = "provider-3",
    window: float = 600.0,
    insurance_ether: float = 1000.0,
    trials: int = 80,
    seed: int = 5,
    omega_per_block: float = 2.0,
    jobs: Optional[int] = None,
    telemetry: Optional[Telemetry] = None,
    checkpoint: Optional[Union[str, SweepCheckpoint]] = None,
) -> Fig5bResult:
    """Measure mining income per window; subtract the expected punishment.

    ``jobs`` fans the mining trials out over worker processes; per-trial
    seeds are pre-derived from ``seed`` exactly as the serial loop drew
    them, so any ``jobs`` value produces the same balances.
    ``checkpoint`` journals completed trials for resume.

    ``telemetry`` records per-trial win counts and a run summary event.
    Instrumentation happens after the trials return, so it composes
    with ``jobs`` and never perturbs the seeded trial streams.
    """
    params = IncentiveParameters()
    zeta = provider_zeta(provider)
    vpb = round(
        vpb_closed_form(
            params,
            zeta_i=zeta,
            insurance_ether=insurance_ether,
            window=window,
            omega_per_block=omega_per_block,
        ),
        6,
    )
    vps = (round(vpb - 0.01, 6), vpb, round(vpb + 0.01, 6))
    # Trial seeds follow the runner's shared derivation discipline
    # (identical values to the historical inline randrange loop).
    trial_seeds = derive_seeds(seed, trials)
    wins = run_trials(
        _fig5b_trial,
        [(trial_seed, provider, window) for trial_seed in trial_seeds],
        jobs=jobs,
        checkpoint=sweep_checkpoint(checkpoint, "fig5b", seed),
    )
    # Batch balance assembly: one vectorized pass over the trial axis,
    # bit-identical to the per-trial income/punishment arithmetic.
    balances = provider_balance_curves_ether(
        params, wins, vps, insurance_ether, omega_per_block
    )
    result = Fig5bResult(provider=provider, vpb=vpb, balances=balances)
    if telemetry is not None and telemetry.enabled:
        wins_histogram = telemetry.histogram("fig5b.blocks_won")
        for won in wins:
            wins_histogram.observe(won)
        telemetry.counter("fig5b.trials").inc(len(wins))
        telemetry.event(
            "fig5b.run",
            provider=provider,
            vpb=vpb,
            trials=len(wins),
            mean_balance_at_vpb=round(result.mean_balance(vpb), 4),
        )
    return result


def main() -> None:
    """CLI entry point."""
    run_fig5a().to_table().print()
    run_fig5b().to_table().print()


if __name__ == "__main__":
    main()
