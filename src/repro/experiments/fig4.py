"""Fig. 4 — incentives and punishments of IoT providers.

Fig. 4(a): cumulative provider incentives (mining rewards χ·ν plus
transaction fees ψ·ω) over 10-30 minutes, one curve per hashpower
share.  Incentives grow with time and (noisily) with HP — "not strictly
obeying their computation proportions" because block discovery is
probabilistic.

Fig. 4(b): provider punishment versus vulnerability proportion (VP) for
insurances of 500/1000/1500 ether — linear in VP with slope equal to
the insurance (the whole deposit is forfeited for a vulnerable
release), offset by the 0.095-ether deployment gas.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.balance import provider_punishment_ether
from repro.core.incentives import IncentiveParameters
from repro.detection.corpus import ReleaseCorpus, ReleaseCorpusConfig
from repro.detection.iot_system import build_system
from repro.experiments.harness import ResultTable
from repro.units import from_wei
from repro.workloads.scenarios import paper_setup

__all__ = ["Fig4aResult", "Fig4bResult", "run_fig4a", "run_fig4b"]


@dataclass
class Fig4aResult:
    """Cumulative incentives per provider sampled over time."""

    #: provider -> [(time_s, cumulative incentives in ether)]
    series: Dict[str, List[Tuple[float, float]]]
    shares: Dict[str, float]

    def at_time(self, provider: str, time_s: float) -> float:
        """Cumulative incentives at (or just before) ``time_s``."""
        value = 0.0
        for t, amount in self.series[provider]:
            if t > time_s:
                break
            value = amount
        return value

    def to_table(self, checkpoints: Tuple[float, ...] = (600.0, 1200.0, 1800.0)) -> ResultTable:
        table = ResultTable(
            title="Fig. 4(a) — provider incentives over time (ETH)",
            columns=["Provider", "HP share"]
            + [f"t={int(t / 60)}min" for t in checkpoints],
        )
        for name in sorted(self.shares, key=self.shares.get, reverse=True):
            table.add_row(
                name,
                f"{self.shares[name] * 100:.2f}%",
                *[round(self.at_time(name, t), 2) for t in checkpoints],
            )
        table.add_note(
            "paper: incentives increase with time and HP; higher-HP providers"
            " earn more but not strictly proportionally"
        )
        return table


def run_fig4a(
    duration: float = 1800.0,
    release_period: float = 600.0,
    seed: int = 3,
) -> Fig4aResult:
    """Run the full platform for ``duration`` with periodic releases."""
    setup = paper_setup(seed=seed)
    platform = setup.build_platform()
    corpus = ReleaseCorpus(
        ReleaseCorpusConfig(
            vulnerability_proportion=0.6,
            mean_vulnerabilities=3.0,
            release_period=release_period,
        ),
        seed=seed,
    )
    providers = sorted(setup.shares)
    rng = random.Random(seed)
    for scheduled in corpus.schedule(duration, start=0.0):
        provider = rng.choice(providers)
        platform.announce_release(
            provider, scheduled.system, at_time=max(scheduled.time - release_period, 0.0)
        )

    series: Dict[str, List[Tuple[float, float]]] = {name: [] for name in setup.shares}

    def _sample(event) -> None:
        for name in setup.shares:
            series[name].append(
                (event.time, from_wei(platform.provider_incentives_wei(name)))
            )

    platform.mining.add_listener(_sample)
    platform.run_until(duration)
    return Fig4aResult(series=series, shares=setup.shares)


@dataclass
class Fig4bResult:
    """Punishment-vs-VP curves per insurance, plus a simulated check."""

    #: insurance (ether) -> [(vp, punishment per release in ether)]
    curves: Dict[int, List[Tuple[float, float]]]
    #: simulated spot check: (insurance, vp, measured mean punishment)
    spot_check: Tuple[int, float, float]

    def to_table(self) -> ResultTable:
        vps = [point[0] for point in next(iter(self.curves.values()))]
        table = ResultTable(
            title="Fig. 4(b) — provider punishment vs vulnerability proportion (ETH/release)",
            columns=["VP"] + [f"I={insurance}" for insurance in sorted(self.curves)],
        )
        for index, vp in enumerate(vps):
            table.add_row(
                round(vp, 3),
                *[round(self.curves[ins][index][1], 2) for ins in sorted(self.curves)],
            )
        insurance, vp, measured = self.spot_check
        expected = vp * insurance + 0.095
        table.add_note(
            f"simulated check @ I={insurance}, VP={vp}: measured "
            f"{measured:.1f} ETH/release (closed form {expected:.1f})"
        )
        table.add_note("paper: punishment grows linearly with VP, steeper for larger insurance")
        return table


def run_fig4b(
    insurances: Tuple[int, ...] = (500, 1000, 1500),
    vp_grid: Tuple[float, ...] = (0.0, 0.02, 0.04, 0.06, 0.08, 0.10),
    spot_releases: int = 8,
    seed: int = 4,
) -> Fig4bResult:
    """Closed-form sweep plus one simulated spot check."""
    params = IncentiveParameters()
    curves: Dict[int, List[Tuple[float, float]]] = {}
    for insurance in insurances:
        curves[insurance] = [
            (vp, provider_punishment_ether(params, vp, float(insurance), releases=1.0))
            for vp in vp_grid
        ]

    # Simulated spot check with the vulnerable fraction fixed exactly at
    # VP (alternating vulnerable/clean releases), so the measured
    # punishment matches the closed form without Bernoulli noise.
    spot_vp = 0.5
    spot_insurance = 1000
    setup = paper_setup(seed=seed, insurance_ether=spot_insurance)
    platform = setup.build_platform()
    rng = random.Random(seed)
    provider = "provider-3"
    vulnerable_count = round(spot_releases * spot_vp)
    for index in range(spot_releases):
        flaws = 3 if index < vulnerable_count else 0
        system = build_system(
            f"fig4b-sys-{index}",
            vulnerability_count=flaws,
            rng=random.Random(rng.randrange(2**31)),
        )
        platform.announce_release(
            provider, system, at_time=index * setup.config.detection_window
        )
    platform.run_until(spot_releases * setup.config.detection_window + 600.0)
    platform.finish_pending()
    measured = from_wei(platform.punishments_wei[provider]) / spot_releases
    return Fig4bResult(
        curves=curves, spot_check=(spot_insurance, spot_vp, measured)
    )


def main() -> None:
    """CLI entry point."""
    run_fig4a().to_table().print()
    run_fig4b().to_table().print()


if __name__ == "__main__":
    main()
