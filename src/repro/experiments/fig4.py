"""Fig. 4 — incentives and punishments of IoT providers.

Fig. 4(a): cumulative provider incentives (mining rewards χ·ν plus
transaction fees ψ·ω) over 10-30 minutes, one curve per hashpower
share.  Incentives grow with time and (noisily) with HP — "not strictly
obeying their computation proportions" because block discovery is
probabilistic.

Fig. 4(b): provider punishment versus vulnerability proportion (VP) for
insurances of 500/1000/1500 ether — linear in VP with slope equal to
the insurance (the whole deposit is forfeited for a vulnerable
release), offset by the 0.095-ether deployment gas.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.analysis.balance import provider_punishment_ether
from repro.core.incentives import IncentiveParameters
from repro.economics.batch import punishment_curve_ether
from repro.detection.corpus import ReleaseCorpus, ReleaseCorpusConfig
from repro.detection.iot_system import build_system
from repro.experiments.harness import ResultTable
from repro.experiments.runner import SweepCheckpoint, run_trials, sweep_checkpoint
from repro.units import from_wei
from repro.workloads.scenarios import paper_setup

__all__ = ["Fig4aResult", "Fig4bResult", "run_fig4a", "run_fig4b"]


@dataclass
class Fig4aResult:
    """Cumulative incentives per provider sampled over time."""

    #: provider -> [(time_s, cumulative incentives in ether)]
    series: Dict[str, List[Tuple[float, float]]]
    shares: Dict[str, float]

    def at_time(self, provider: str, time_s: float) -> float:
        """Cumulative incentives at (or just before) ``time_s``."""
        value = 0.0
        for t, amount in self.series[provider]:
            if t > time_s:
                break
            value = amount
        return value

    def to_table(self, checkpoints: Tuple[float, ...] = (600.0, 1200.0, 1800.0)) -> ResultTable:
        table = ResultTable(
            title="Fig. 4(a) — provider incentives over time (ETH)",
            columns=["Provider", "HP share"]
            + [f"t={int(t / 60)}min" for t in checkpoints],
        )
        for name in sorted(self.shares, key=self.shares.get, reverse=True):
            table.add_row(
                name,
                f"{self.shares[name] * 100:.2f}%",
                *[round(self.at_time(name, t), 2) for t in checkpoints],
            )
        table.add_note(
            "paper: incentives increase with time and HP; higher-HP providers"
            " earn more but not strictly proportionally"
        )
        return table


def _fig4a_trial(args: Tuple[int, float, float]) -> Dict[str, Any]:
    """One full-platform incentive run (seed-pure, module-level).

    Returns JSON-native ``{"series": {name: [[t, ether], ...]},
    "shares": {name: share}}`` so the trial can be journaled to a sweep
    checkpoint byte-for-byte.
    """
    seed, duration, release_period = args
    setup = paper_setup(seed=seed)
    platform = setup.build_platform()
    corpus = ReleaseCorpus(
        ReleaseCorpusConfig(
            vulnerability_proportion=0.6,
            mean_vulnerabilities=3.0,
            release_period=release_period,
        ),
        seed=seed,
    )
    providers = sorted(setup.shares)
    rng = random.Random(seed)
    for scheduled in corpus.schedule(duration, start=0.0):
        provider = rng.choice(providers)
        platform.announce_release(
            provider, scheduled.system, at_time=max(scheduled.time - release_period, 0.0)
        )

    series: Dict[str, List[List[float]]] = {name: [] for name in setup.shares}

    def _sample(event) -> None:
        for name in setup.shares:
            series[name].append(
                [event.time, from_wei(platform.provider_incentives_wei(name))]
            )

    platform.mining.add_listener(_sample)
    platform.advance_until(duration)
    return {"series": series, "shares": dict(setup.shares)}


def run_fig4a(
    duration: float = 1800.0,
    release_period: float = 600.0,
    seed: int = 3,
    jobs: Optional[int] = None,
    checkpoint: Optional[Union[str, SweepCheckpoint]] = None,
) -> Fig4aResult:
    """Run the full platform for ``duration`` with periodic releases.

    A single-trial sweep: the whole run is one seed-pure worker fanned
    through :func:`run_trials`, so it shares the uniform ``--jobs`` and
    checkpoint/resume plumbing (one long platform run resumes for free).
    """
    (outcome,) = run_trials(
        _fig4a_trial,
        [(seed, duration, release_period)],
        jobs=jobs,
        checkpoint=sweep_checkpoint(checkpoint, "fig4a", seed),
    )
    series = {
        name: [(float(t), float(value)) for t, value in points]
        for name, points in outcome["series"].items()
    }
    return Fig4aResult(series=series, shares=dict(outcome["shares"]))


@dataclass
class Fig4bResult:
    """Punishment-vs-VP curves per insurance, plus a simulated check."""

    #: insurance (ether) -> [(vp, punishment per release in ether)]
    curves: Dict[int, List[Tuple[float, float]]]
    #: simulated spot check: (insurance, vp, measured mean punishment)
    spot_check: Tuple[int, float, float]

    def to_table(self) -> ResultTable:
        vps = [point[0] for point in next(iter(self.curves.values()))]
        table = ResultTable(
            title="Fig. 4(b) — provider punishment vs vulnerability proportion (ETH/release)",
            columns=["VP"] + [f"I={insurance}" for insurance in sorted(self.curves)],
        )
        for index, vp in enumerate(vps):
            table.add_row(
                round(vp, 3),
                *[round(self.curves[ins][index][1], 2) for ins in sorted(self.curves)],
            )
        insurance, vp, measured = self.spot_check
        expected = vp * insurance + 0.095
        table.add_note(
            f"simulated check @ I={insurance}, VP={vp}: measured "
            f"{measured:.1f} ETH/release (closed form {expected:.1f})"
        )
        table.add_note("paper: punishment grows linearly with VP, steeper for larger insurance")
        return table


def _fig4b_curve_trial(args: Tuple[int, Tuple[float, ...]]) -> List[List[float]]:
    """Closed-form punishment curve for one insurance level.

    The whole VP grid is evaluated in one vectorized pass
    (:func:`repro.economics.batch.punishment_curve_ether`); the scalar
    closed form audits every point as the cross-check oracle.
    """
    insurance, vp_grid = args
    params = IncentiveParameters()
    curve = punishment_curve_ether(params, vp_grid, float(insurance), releases=1.0)
    for vp, punishment in zip(vp_grid, curve):
        oracle = provider_punishment_ether(params, vp, float(insurance), releases=1.0)
        if punishment != oracle:
            raise AssertionError(
                f"batch punishment curve diverged at VP={vp}: {punishment} vs {oracle}"
            )
    return [[vp, punishment] for vp, punishment in zip(vp_grid, curve)]


def _fig4b_spot_trial(args: Tuple[int, int, float, int]) -> float:
    """Simulated spot check: mean punishment per release at a fixed VP.

    The vulnerable fraction is fixed exactly at VP (alternating
    vulnerable/clean releases), so the measured punishment matches the
    closed form without Bernoulli noise.
    """
    seed, spot_insurance, spot_vp, spot_releases = args
    setup = paper_setup(seed=seed, insurance_ether=spot_insurance)
    platform = setup.build_platform()
    rng = random.Random(seed)
    provider = "provider-3"
    vulnerable_count = round(spot_releases * spot_vp)
    for index in range(spot_releases):
        flaws = 3 if index < vulnerable_count else 0
        system = build_system(
            f"fig4b-sys-{index}",
            vulnerability_count=flaws,
            rng=random.Random(rng.randrange(2**31)),
        )
        platform.announce_release(
            provider, system, at_time=index * setup.config.detection_window
        )
    platform.advance_until(spot_releases * setup.config.detection_window + 600.0)
    platform.finish_pending()
    return from_wei(platform.punishments_wei[provider]) / spot_releases


def run_fig4b(
    insurances: Tuple[int, ...] = (500, 1000, 1500),
    vp_grid: Tuple[float, ...] = (0.0, 0.02, 0.04, 0.06, 0.08, 0.10),
    spot_releases: int = 8,
    seed: int = 4,
    jobs: Optional[int] = None,
    checkpoint: Optional[Union[str, SweepCheckpoint]] = None,
) -> Fig4bResult:
    """Closed-form sweep plus one simulated spot check.

    Each insurance curve and the spot check are independent seed-pure
    workers fanned out via ``jobs``; passing a checkpoint *path* (not an
    instance) journals both sub-sweeps under distinct experiment tags.
    """
    spot_vp = 0.5
    spot_insurance = 1000
    curve_outcomes = run_trials(
        _fig4b_curve_trial,
        [(insurance, tuple(vp_grid)) for insurance in insurances],
        jobs=jobs,
        checkpoint=sweep_checkpoint(checkpoint, "fig4b.curves", seed),
    )
    curves: Dict[int, List[Tuple[float, float]]] = {
        insurance: [(float(vp), float(punishment)) for vp, punishment in outcome]
        for insurance, outcome in zip(insurances, curve_outcomes)
    }
    (measured,) = run_trials(
        _fig4b_spot_trial,
        [(seed, spot_insurance, spot_vp, spot_releases)],
        jobs=jobs,
        checkpoint=sweep_checkpoint(checkpoint, "fig4b.spot", seed),
    )
    return Fig4bResult(
        curves=curves, spot_check=(spot_insurance, spot_vp, measured)
    )


def main() -> None:
    """CLI entry point."""
    run_fig4a().to_table().print()
    run_fig4b().to_table().print()


if __name__ == "__main__":
    main()
