"""Experiment runners — one per table/figure in the paper's evaluation.

=============  =======================================================
Experiment     Runner
=============  =======================================================
Table I        :func:`repro.experiments.table1.run_table1`
Fig. 3(a)      :func:`repro.experiments.fig3.run_fig3a`
Fig. 3(b)      :func:`repro.experiments.fig3.run_fig3b`
Fig. 4(a)      :func:`repro.experiments.fig4.run_fig4a`
Fig. 4(b)      :func:`repro.experiments.fig4.run_fig4b`
Fig. 5(a)      :func:`repro.experiments.fig5.run_fig5a`
Fig. 5(b)      :func:`repro.experiments.fig5.run_fig5b`
Fig. 6(a)+(b)  :func:`repro.experiments.fig6.run_fig6`
§VII costs     :func:`repro.experiments.costs.run_costs`
=============  =======================================================
"""

from repro.experiments.ablations import (
    ablate_escrow,
    ablate_report_fee,
    ablate_two_phase,
)
from repro.experiments.capability_curve import (
    run_capability_curve,
    run_fleet_composition,
)
from repro.experiments.costs import CostResult, run_costs
from repro.experiments.fleet_scale import FleetScaleResult, run_fleet_scale
from repro.experiments.forks import ForkRateResult, run_fork_rate
from repro.experiments.latency import LatencyResult, run_payout_latency
from repro.experiments.fig3 import Fig3aResult, Fig3bResult, run_fig3a, run_fig3b
from repro.experiments.fig4 import Fig4aResult, Fig4bResult, run_fig4a, run_fig4b
from repro.experiments.fig5 import Fig5aResult, Fig5bResult, run_fig5a, run_fig5b
from repro.experiments.fig6 import Fig6Result, run_fig6
from repro.experiments.harness import Comparison, ResultTable, summarize
from repro.experiments.runner import default_jobs, derive_seeds, run_trials
from repro.experiments.table1 import PAPER_TABLE1, Table1Result, run_table1

__all__ = [
    "Comparison",
    "CostResult",
    "Fig3aResult",
    "Fig3bResult",
    "Fig4aResult",
    "Fig4bResult",
    "Fig5aResult",
    "Fig5bResult",
    "Fig6Result",
    "FleetScaleResult",
    "ForkRateResult",
    "LatencyResult",
    "PAPER_TABLE1",
    "ResultTable",
    "Table1Result",
    "ablate_escrow",
    "ablate_report_fee",
    "ablate_two_phase",
    "default_jobs",
    "derive_seeds",
    "run_capability_curve",
    "run_costs",
    "run_fig3a",
    "run_fig3b",
    "run_fig4a",
    "run_fig4b",
    "run_fig5a",
    "run_fig5b",
    "run_fig6",
    "run_fleet_composition",
    "run_fleet_scale",
    "run_fork_rate",
    "run_payout_latency",
    "run_table1",
    "run_trials",
    "summarize",
]
