"""Fig. 3 — experimental setup: mining rewards and block time.

Fig. 3(a): the average reward when one block is created is ~5 ether for
every provider regardless of computation proportion (the reward is per
*block*, not per unit hashpower — hashpower determines how *often* you
win, not how much a win pays).

Fig. 3(b): block time over 2000 blocks; the paper measures a 15.35 s
average.  The reproduction samples the stochastic mining model at the
paper's difficulty and reports the distribution.
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.chain.consensus import MiningSimulation
from repro.chain.pow import (
    PAPER_HASHPOWER_SHARES,
    PAPER_MEAN_BLOCK_TIME,
    MiningModel,
)
from repro.crypto.keys import KeyPair
from repro.experiments.harness import ResultTable, summarize
from repro.experiments.runner import (
    SweepCheckpoint,
    derive_seeds,
    run_trials,
    sweep_checkpoint,
)

__all__ = ["Fig3aResult", "Fig3bResult", "run_fig3a", "run_fig3b"]


def _chunk_sizes(total: int, trials: int) -> List[int]:
    """Split ``total`` blocks into ``trials`` near-equal chunks."""
    trials = max(1, min(trials, total)) if total else 1
    base, remainder = divmod(total, trials)
    return [base + (1 if index < remainder else 0) for index in range(trials)]


@dataclass
class Fig3aResult:
    """Average per-block reward and win counts per provider."""

    block_reward_ether: float
    blocks_total: int
    blocks_won: Dict[str, int]
    shares: Dict[str, float]

    def to_table(self) -> ResultTable:
        table = ResultTable(
            title="Fig. 3(a) — average reward per created block",
            columns=["Provider", "HP share", "Blocks won", "Win fraction", "Avg reward/block (ETH)"],
        )
        total_share = sum(self.shares.values())
        for name in sorted(self.shares, key=self.shares.get, reverse=True):
            table.add_row(
                name,
                f"{self.shares[name] * 100:.2f}%",
                self.blocks_won[name],
                f"{self.blocks_won[name] / self.blocks_total:.3f}"
                + f" (expect {self.shares[name] / total_share:.3f})",
                self.block_reward_ether,
            )
        table.add_note("paper: every creator earns ~5 ether per block regardless of HP")
        return table


def _fig3a_trial(args: Tuple[int, int]) -> Dict[str, int]:
    """One mining trial: win counts over a seed-pure chunk of blocks.

    Module-level and seed-driven so :func:`repro.experiments.runner.run_trials`
    can fan chunks out across processes with bit-identical results.
    """
    trial_seed, blocks = args
    addresses = {
        name: KeyPair.from_seed(f"fig3:{name}".encode()).address
        for name in PAPER_HASHPOWER_SHARES
    }
    simulation = MiningSimulation.from_shares(
        PAPER_HASHPOWER_SHARES, addresses, rng=random.Random(trial_seed)
    )
    simulation.run_blocks(blocks)
    return dict(simulation.blocks_won())


def run_fig3a(
    blocks: int = 2000,
    block_reward_ether: float = 5.0,
    seed: int = 0,
    trials: int = 8,
    jobs: Optional[int] = None,
    checkpoint: Optional[Union[str, SweepCheckpoint]] = None,
) -> Fig3aResult:
    """Mine ``blocks`` blocks; rewards per block are constant ν.

    The mining is split into ``trials`` independently seeded chunks
    (:func:`derive_seeds`) fanned out via ``jobs`` worker processes;
    win counts sum across chunks, and any ``jobs`` value produces the
    same totals.  ``checkpoint`` journals completed chunks for resume.
    """
    chunks = _chunk_sizes(blocks, trials)
    trial_seeds = derive_seeds(seed, len(chunks))
    outcomes = run_trials(
        _fig3a_trial,
        list(zip(trial_seeds, chunks)),
        jobs=jobs,
        checkpoint=sweep_checkpoint(checkpoint, "fig3a", seed),
    )
    blocks_won = {name: 0 for name in PAPER_HASHPOWER_SHARES}
    for won in outcomes:
        for name, count in won.items():
            blocks_won[name] += count
    return Fig3aResult(
        block_reward_ether=block_reward_ether,
        blocks_total=blocks,
        blocks_won=blocks_won,
        shares=dict(PAPER_HASHPOWER_SHARES),
    )


@dataclass
class Fig3bResult:
    """Block-time distribution over a measured run."""

    intervals: Tuple[float, ...]
    paper_mean: float = PAPER_MEAN_BLOCK_TIME

    @property
    def mean(self) -> float:
        return statistics.fmean(self.intervals)

    def histogram(self, bucket: float = 5.0, buckets: int = 12) -> List[Tuple[str, int]]:
        """Bucketed counts for a text histogram."""
        counts = [0] * buckets
        for interval in self.intervals:
            index = min(int(interval // bucket), buckets - 1)
            counts[index] += 1
        labels = [
            f"[{i * bucket:.0f},{(i + 1) * bucket:.0f})" for i in range(buckets - 1)
        ] + [f">={(buckets - 1) * bucket:.0f}"]
        return list(zip(labels, counts))

    def to_table(self) -> ResultTable:
        stats = summarize(self.intervals)
        table = ResultTable(
            title=f"Fig. 3(b) — block time over {len(self.intervals)} blocks",
            columns=["Metric", "Paper", "Measured (s)"],
        )
        table.add_row("mean block time", self.paper_mean, round(stats["mean"], 3))
        table.add_row("median", "-", round(stats["median"], 3))
        table.add_row("stdev", "-", round(stats["stdev"], 3))
        table.add_row("max", "-", round(stats["max"], 3))
        for label, count in self.histogram():
            table.add_row(f"  histogram {label}s", "-", count)
        return table


def _fig3b_trial(args: Tuple[int, int]) -> List[float]:
    """One interval-sampling trial: ``count`` seed-pure block times."""
    trial_seed, count = args
    model = MiningModel.from_shares(
        PAPER_HASHPOWER_SHARES, rng=random.Random(trial_seed)
    )
    return list(model.sample_intervals(count))


def run_fig3b(
    blocks: int = 2000,
    seed: int = 1,
    trials: int = 8,
    jobs: Optional[int] = None,
    checkpoint: Optional[Union[str, SweepCheckpoint]] = None,
) -> Fig3bResult:
    """Sample 2000 block intervals at the paper's difficulty.

    Sampling is chunked into ``trials`` seed-pure workers and fanned out
    via ``jobs`` processes; intervals concatenate in chunk order, so any
    ``jobs`` value yields the identical distribution.
    """
    chunks = _chunk_sizes(blocks, trials)
    trial_seeds = derive_seeds(seed, len(chunks))
    outcomes = run_trials(
        _fig3b_trial,
        list(zip(trial_seeds, chunks)),
        jobs=jobs,
        checkpoint=sweep_checkpoint(checkpoint, "fig3b", seed),
    )
    return Fig3bResult(
        intervals=tuple(interval for chunk in outcomes for interval in chunk)
    )


def main() -> None:
    """CLI entry point."""
    run_fig3a().to_table().print()
    run_fig3b().to_table().print()


if __name__ == "__main__":
    main()
