"""Fork rate vs propagation delay — why 6 confirmations is enough.

The paper adopts Bitcoin's 6-block confirmation (§V-C) without
analysis.  This experiment supplies it: running real replicated mining
(:class:`~repro.core.distributed.DistributedChain`) at increasing
propagation-delay/block-time ratios and measuring the natural orphan
rate — the fraction of mined blocks that end up off the final canonical
chain.  At the paper's operating point (LAN delays ≪ 15.35 s blocks)
forks are rare and shallow, so 6 confirmations is conservative; the
sweep shows how the margin erodes as the network slows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.chain.pow import PAPER_HASHPOWER_SHARES
from repro.core.distributed import DistributedChain
from repro.experiments.harness import ResultTable
from repro.network.latency import ConstantLatency

__all__ = ["ForkRateResult", "run_fork_rate"]


@dataclass
class ForkRateResult:
    """Orphan rates per delay/block-time ratio."""

    #: ratio -> (blocks mined, canonical height, orphan rate)
    points: Dict[float, Tuple[int, int, float]]
    block_time: float

    def orphan_rate(self, ratio: float) -> float:
        return self.points[ratio][2]

    def to_table(self) -> ResultTable:
        table = ResultTable(
            title="Fork rate vs propagation delay (replicated mining)",
            columns=[
                "delay / block-time",
                "blocks mined",
                "canonical height",
                "orphan rate",
            ],
        )
        for ratio in sorted(self.points):
            mined, height, rate = self.points[ratio]
            table.add_row(ratio, mined, height, f"{rate:.1%}")
        table.add_note(
            "paper operating point: LAN delays << 15.35s blocks -> forks are"
            " rare, so 6-block confirmation is conservative"
        )
        return table


def run_fork_rate(
    ratios: Tuple[float, ...] = (0.005, 0.05, 0.2, 0.5),
    blocks: int = 300,
    block_time: float = 15.35,
    seed: int = 10,
) -> ForkRateResult:
    """Measure orphan rates over a delay sweep."""
    points: Dict[float, Tuple[int, int, float]] = {}
    for index, ratio in enumerate(ratios):
        net = DistributedChain(
            PAPER_HASHPOWER_SHARES,
            mean_block_time=block_time,
            latency=ConstantLatency(ratio * block_time),
            seed=seed + index,
        )
        net.run_blocks(blocks)
        net.settle()
        # Break any end-of-run total-difficulty tie.
        extra = 0
        while not net.converged() and extra < 20:
            net.run_blocks(1)
            net.settle()
            extra += 1
        height = max(replica.chain.height for replica in net.replicas.values())
        mined = blocks + extra
        orphan_rate = 1.0 - height / mined
        points[ratio] = (mined, height, orphan_rate)
    return ForkRateResult(points=points, block_time=block_time)


def main() -> None:
    """CLI entry point."""
    run_fork_rate().to_table().print()


if __name__ == "__main__":
    main()
