"""Fork rate vs propagation delay — why 6 confirmations is enough.

The paper adopts Bitcoin's 6-block confirmation (§V-C) without
analysis.  This experiment supplies it: running real replicated mining
(:class:`~repro.core.distributed.DistributedChain`) at increasing
propagation-delay/block-time ratios and measuring the natural orphan
rate — the fraction of mined blocks that end up off the final canonical
chain.  At the paper's operating point (LAN delays ≪ 15.35 s blocks)
forks are rare and shallow, so 6 confirmations is conservative; the
sweep shows how the margin erodes as the network slows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.chain.pow import PAPER_HASHPOWER_SHARES
from repro.core.distributed import DistributedChain
from repro.experiments.harness import ResultTable
from repro.experiments.runner import (
    SweepCheckpoint,
    derive_seeds,
    run_trials,
    sweep_checkpoint,
)
from repro.network.latency import ConstantLatency

__all__ = ["ForkRateResult", "run_fork_rate"]


@dataclass
class ForkRateResult:
    """Orphan rates per delay/block-time ratio."""

    #: ratio -> (blocks mined, canonical height, orphan rate)
    points: Dict[float, Tuple[int, int, float]]
    block_time: float

    def orphan_rate(self, ratio: float) -> float:
        return self.points[ratio][2]

    def to_table(self) -> ResultTable:
        table = ResultTable(
            title="Fork rate vs propagation delay (replicated mining)",
            columns=[
                "delay / block-time",
                "blocks mined",
                "canonical height",
                "orphan rate",
            ],
        )
        for ratio in sorted(self.points):
            mined, height, rate = self.points[ratio]
            table.add_row(ratio, mined, height, f"{rate:.1%}")
        table.add_note(
            "paper operating point: LAN delays << 15.35s blocks -> forks are"
            " rare, so 6-block confirmation is conservative"
        )
        return table


def _fork_rate_trial(args: Tuple[int, float, int, float]) -> List[float]:
    """One delay ratio: run replicated mining, count orphaned blocks.

    Orphan accounting uses the network's authoritative mined-block
    counter against the height of the canonical chain (the agreed head
    after convergence, else the heaviest replica by total difficulty —
    not the tallest, which can sit on a losing fork).  Height counts
    non-genesis blocks (genesis is height 0), so ``mined - height`` is
    exactly the mined blocks that fell off the canonical chain; the
    rate is clamped to [0, 1].
    """
    trial_seed, ratio, blocks, block_time = args
    net = DistributedChain(
        PAPER_HASHPOWER_SHARES,
        mean_block_time=block_time,
        latency=ConstantLatency(ratio * block_time),
        seed=trial_seed,
    )
    net.run_blocks(blocks)
    net.settle()
    # Break any end-of-run total-difficulty tie.
    extra = 0
    while not net.converged() and extra < 20:
        net.run_blocks(1)
        net.settle()
        extra += 1
    mined = net.blocks_mined
    canonical = max(
        (replica.chain for replica in net.replicas.values()),
        key=lambda chain: chain.total_difficulty(),
    )
    height = canonical.height
    orphaned = max(0, mined - height)
    orphan_rate = min(1.0, orphaned / mined) if mined else 0.0
    return [mined, height, orphan_rate]


def run_fork_rate(
    ratios: Tuple[float, ...] = (0.005, 0.05, 0.2, 0.5),
    blocks: int = 300,
    block_time: float = 15.35,
    seed: int = 10,
    jobs: Optional[int] = None,
    checkpoint: Optional[Union[str, SweepCheckpoint]] = None,
) -> ForkRateResult:
    """Measure orphan rates over a delay sweep.

    Each ratio is an independent seed-pure trial (:func:`derive_seeds`)
    fanned out via ``jobs`` worker processes; any ``jobs`` value
    produces identical points, and ``checkpoint`` journals completed
    ratios for resume.
    """
    trial_seeds = derive_seeds(seed, len(ratios))
    outcomes = run_trials(
        _fork_rate_trial,
        [
            (trial_seed, ratio, blocks, block_time)
            for trial_seed, ratio in zip(trial_seeds, ratios)
        ],
        jobs=jobs,
        checkpoint=sweep_checkpoint(checkpoint, "forks", seed),
    )
    points: Dict[float, Tuple[int, int, float]] = {
        ratio: (int(mined), int(height), float(rate))
        for ratio, (mined, height, rate) in zip(ratios, outcomes)
    }
    return ForkRateResult(points=points, block_time=block_time)


def main() -> None:
    """CLI entry point."""
    run_fork_rate().to_table().print()


if __name__ == "__main__":
    main()
