"""DC_T vs fleet size and composition — the §VI-B capability analysis.

Not a numbered paper figure, but the paper's central theoretical claim:
"an increased m will introduce a larger DC_T approaching to 1" (Eq. 11)
— i.e. more detectors means more complete detection, which is what the
incentives exist to recruit.  Two experiments:

* **size curve** — DC_T (closed form via exact race ρ's, cross-checked
  by Monte-Carlo scans) as the fleet grows 1→8 detectors;
* **composition** — per-category coverage of single-mode fleets vs a
  mixed static/dynamic/fuzzing fleet of the same size (§VIII's point
  that different detection *kinds* complement each other).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.analysis.capability import race_rhos, total_detection_capability
from repro.detection.detector import DetectionCapability
from repro.detection.modes import (
    DetectionMode,
    ModalDetector,
    build_mixed_fleet,
    fleet_coverage,
)
from repro.detection.vulnerability import CATEGORIES
from repro.experiments.harness import ResultTable
from repro.experiments.runner import (
    SweepCheckpoint,
    derive_seeds,
    run_trials,
    sweep_checkpoint,
)

__all__ = ["CapabilityCurveResult", "CompositionResult", "run_capability_curve", "run_fleet_composition"]


@dataclass
class CapabilityCurveResult:
    """DC_T per fleet size, theory and simulation."""

    #: m -> (closed-form DC_T, Monte-Carlo DC_T)
    points: Dict[int, Tuple[float, float]]

    def to_table(self) -> ResultTable:
        table = ResultTable(
            title="Eq. 11 — total detection capability DC_T vs fleet size m",
            columns=["m (detectors)", "DC_T (theory)", "DC_T (simulated)"],
        )
        for m in sorted(self.points):
            theory, simulated = self.points[m]
            table.add_row(m, round(theory, 4), round(simulated, 4))
        table.add_note("paper §VI-B: DC_T increases with m, approaching 1")
        table.add_note("theory: Σ DC_i·ρ_i with exact race ρ's; simulated: Monte-Carlo scans")
        return table


def _capability_point_trial(args: Tuple[int, int, float, int]) -> List[float]:
    """One fleet size: closed-form DC_T plus a seed-pure Monte-Carlo check."""
    trial_seed, m, per_thread_hit, scans = args
    rng = random.Random(trial_seed)
    fleet = [
        DetectionCapability(threads=t, per_thread_hit=per_thread_hit)
        for t in range(1, m + 1)
    ]
    rhos = race_rhos(fleet)
    theory = total_detection_capability(
        [c.detection_probability for c in fleet], rhos
    )
    # Monte-Carlo: fraction of flaws found by at least one detector.
    found = 0
    for _ in range(scans):
        if any(
            rng.random() < capability.detection_probability
            for capability in fleet
        ):
            found += 1
    return [theory, found / scans]


def run_capability_curve(
    max_detectors: int = 8,
    per_thread_hit: float = 0.45,
    scans: int = 2000,
    seed: int = 0,
    jobs: Optional[int] = None,
    checkpoint: Optional[Union[str, SweepCheckpoint]] = None,
) -> CapabilityCurveResult:
    """DC_T for fleets of 1..max detectors (threads 1..m).

    Each fleet size is an independent seed-pure trial
    (:func:`derive_seeds`) fanned out via ``jobs`` worker processes;
    ``checkpoint`` journals completed sizes for resume, and any ``jobs``
    value produces identical points.
    """
    sizes = list(range(1, max_detectors + 1))
    trial_seeds = derive_seeds(seed, len(sizes))
    outcomes = run_trials(
        _capability_point_trial,
        [
            (trial_seed, m, per_thread_hit, scans)
            for trial_seed, m in zip(trial_seeds, sizes)
        ],
        jobs=jobs,
        checkpoint=sweep_checkpoint(checkpoint, "capability_curve", seed),
    )
    points: Dict[int, Tuple[float, float]] = {
        m: (float(theory), float(simulated))
        for m, (theory, simulated) in zip(sizes, outcomes)
    }
    return CapabilityCurveResult(points=points)


@dataclass
class CompositionResult:
    """Coverage per fleet composition."""

    #: composition label -> mean coverage over all categories
    mean_coverage: Dict[str, float]
    #: composition label -> per-category coverage
    per_category: Dict[str, Dict[str, float]]

    def to_table(self) -> ResultTable:
        table = ResultTable(
            title="§VIII — fleet composition: single-mode vs mixed coverage",
            columns=["Category"] + list(self.mean_coverage),
        )
        for category in sorted(next(iter(self.per_category.values()))):
            table.add_row(
                category,
                *[
                    round(self.per_category[label][category], 3)
                    for label in self.mean_coverage
                ],
            )
        table.add_row(
            "MEAN", *[round(value, 3) for value in self.mean_coverage.values()]
        )
        table.add_note(
            "a mixed fleet covers every category; single-mode fleets have"
            " systematic blind spots"
        )
        return table


def run_fleet_composition(
    fleet_size: int = 9,
    threads: int = 4,
    per_thread_hit: float = 0.6,
    seed: int = 1,
) -> CompositionResult:
    """Coverage of all-static / all-dynamic / all-fuzzing / mixed fleets."""
    rng = random.Random(seed)
    compositions: Dict[str, List[ModalDetector]] = {}
    for mode in DetectionMode:
        compositions[f"all-{mode.value}"] = [
            ModalDetector(
                f"{mode.value}-{i}",
                DetectionCapability(threads=threads, per_thread_hit=per_thread_hit),
                mode,
                rng=random.Random(rng.randrange(2**31)),
            )
            for i in range(fleet_size)
        ]
    compositions["mixed"] = build_mixed_fleet(
        per_mode=fleet_size // 3, threads=threads,
        per_thread_hit=per_thread_hit, seed=seed,
    )

    per_category: Dict[str, Dict[str, float]] = {}
    mean_coverage: Dict[str, float] = {}
    for label, fleet in compositions.items():
        coverage = fleet_coverage(fleet, CATEGORIES)
        per_category[label] = coverage
        mean_coverage[label] = sum(coverage.values()) / len(coverage)
    return CompositionResult(mean_coverage=mean_coverage, per_category=per_category)


def main() -> None:
    """CLI entry point."""
    run_capability_curve().to_table().print()
    run_fleet_composition().to_table().print()


if __name__ == "__main__":
    main()
