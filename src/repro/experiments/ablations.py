"""Ablations: what breaks when each SmartCrowd mechanism is removed.

The paper argues for three mechanisms (§V); each ablation disables one
and measures the failure it was preventing:

* **Two-phase submission** (§V-B) — without the R† commitment, a thief
  who sees a published R* can copy it, outbid the victim's transaction
  fee, and steal the bounty.  Measured on the real mempool/chain
  machinery as a fee-priority race.
* **Insurance escrow** (§V-D) — without escrowed deposits, payout
  depends on the provider's goodwill; the detector's expected revenue
  collapses with the fraction of dishonest providers.
* **Report submission fee** (Eq. 10) — the fee is the only thing
  bounding how many junk reports an attacker can force providers to
  AutoVerif; verification load diverges as the fee approaches zero.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.chain.block import ChainRecord, RecordKind
from repro.chain.mempool import Mempool
from repro.contracts.gas import DEFAULT_GAS_SCHEDULE
from repro.crypto.hashing import hash_fields
from repro.experiments.harness import ResultTable
from repro.experiments.runner import (
    SweepCheckpoint,
    derive_seeds,
    run_trials,
    sweep_checkpoint,
)

__all__ = [
    "TwoPhaseAblation",
    "EscrowAblation",
    "FeeAblation",
    "ablate_two_phase",
    "ablate_escrow",
    "ablate_report_fee",
]


@dataclass
class TwoPhaseAblation:
    """Plagiarism win rates with and without the R† commitment."""

    trials: int
    thief_wins_with_two_phase: int
    thief_wins_without_two_phase: int

    @property
    def rate_with(self) -> float:
        return self.thief_wins_with_two_phase / self.trials

    @property
    def rate_without(self) -> float:
        return self.thief_wins_without_two_phase / self.trials

    def to_table(self) -> ResultTable:
        table = ResultTable(
            title="Ablation — two-phase report submission (anti-plagiarism)",
            columns=["Scheme", "Thief bounty-steal rate"],
        )
        table.add_row("two-phase R†/R* (SmartCrowd)", f"{self.rate_with:.1%}")
        table.add_row("single-phase (ablated)", f"{self.rate_without:.1%}")
        table.add_note(
            "without the hash commitment, a fee-outbidding thief steals the"
            " bounty whenever its copy is ordered first"
        )
        return table


def _two_phase_trial(args: Tuple[int, int, int, float]) -> Tuple[int, int]:
    """One plagiarism race; returns (thief wins with R†, wins without).

    Module-level and seeded per trial so the sweep can fan out across
    processes with results bit-identical to the serial loop.
    """
    trial_seed, trial, victim_fee_wei, thief_fee_multiplier = args
    rng = random.Random(trial_seed)
    victim_record = ChainRecord(
        kind=RecordKind.DETAILED_REPORT,
        record_id=hash_fields("victim", trial),
        payload=b"victim-report",
        fee=victim_fee_wei,
    )
    thief_record = ChainRecord(
        kind=RecordKind.DETAILED_REPORT,
        record_id=hash_fields("thief", trial),
        payload=b"copied-report",
        fee=int(victim_fee_wei * thief_fee_multiplier),
    )

    # With two-phase: commitment order decides; the victim's R† is
    # confirmed before the thief ever sees the findings.
    victim_commit_time = rng.uniform(0.0, 100.0)
    thief_commit_time = victim_commit_time + rng.uniform(90.0, 200.0)
    win_with = 1 if thief_commit_time < victim_commit_time else 0  # pragma: no branch

    # Without two-phase: fee-priority mempool ordering decides.
    pool = Mempool()
    # The victim's R* arrives first, the copy lands before the next
    # block is assembled.
    pool.add(victim_record)
    pool.add(thief_record)
    ordered = pool.select()
    win_without = 1 if ordered[0].payload == b"copied-report" else 0
    return win_with, win_without


def ablate_two_phase(
    trials: int = 200,
    victim_fee_wei: int = DEFAULT_GAS_SCHEDULE.fee_wei("submit_detailed_report"),
    thief_fee_multiplier: float = 4.0,
    seed: int = 0,
    jobs: Optional[int] = None,
    checkpoint: Optional[Union[str, SweepCheckpoint]] = None,
) -> TwoPhaseAblation:
    """Race a plagiarist against a victim on the real mempool.

    *With* two-phase: the bounty goes to the owner of the earliest
    confirmed commitment.  The thief only learns the findings when the
    victim publishes R* — after the victim's R† is already on chain —
    so its own commitment is strictly later: it can never win.

    *Without* two-phase: both detailed reports sit in the same mempool
    and the bounty goes to whichever is ordered first.  The thief
    outbids the victim's fee, and fee-priority selection puts the copy
    first whenever both fit in the next block.

    Each trial runs under its own seed derived from ``seed``, so
    ``jobs`` parallelism cannot change the outcome.
    """
    trial_seeds = derive_seeds(seed, trials)
    outcomes = run_trials(
        _two_phase_trial,
        [
            (trial_seed, trial, victim_fee_wei, thief_fee_multiplier)
            for trial, trial_seed in enumerate(trial_seeds)
        ],
        jobs=jobs,
        chunksize=16,
        checkpoint=sweep_checkpoint(checkpoint, "two_phase", seed),
    )
    return TwoPhaseAblation(
        trials=trials,
        thief_wins_with_two_phase=sum(with_ for with_, _ in outcomes),
        thief_wins_without_two_phase=sum(without for _, without in outcomes),
    )


@dataclass
class EscrowAblation:
    """Expected detector revenue with and without escrowed insurance."""

    dishonest_fractions: Tuple[float, ...]
    #: fraction -> (payout rate with escrow, without escrow)
    payout_rates: Dict[float, Tuple[float, float]]

    def to_table(self) -> ResultTable:
        table = ResultTable(
            title="Ablation — insurance escrow (anti-repudiation)",
            columns=[
                "Dishonest providers",
                "Payout rate (escrow)",
                "Payout rate (goodwill)",
            ],
        )
        for fraction in self.dishonest_fractions:
            with_escrow, without = self.payout_rates[fraction]
            table.add_row(f"{fraction:.0%}", f"{with_escrow:.1%}", f"{without:.1%}")
        table.add_note(
            "escrow makes payout independent of provider honesty; goodwill"
            " payment collapses linearly with the dishonest fraction"
        )
        return table


def ablate_escrow(
    dishonest_fractions: Tuple[float, ...] = (0.0, 0.2, 0.5, 0.8),
    awards_per_point: int = 500,
    seed: int = 1,
) -> EscrowAblation:
    """Monte-Carlo payout success under both payment schemes.

    With escrow the deposit is already contract-held, so every verified
    award pays.  Without it, a dishonest provider simply ignores the
    invoice (§IV-B "repudiating incentives and punishments").
    """
    rng = random.Random(seed)
    rates: Dict[float, Tuple[float, float]] = {}
    for fraction in dishonest_fractions:
        paid_without = 0
        for _ in range(awards_per_point):
            provider_is_dishonest = rng.random() < fraction
            if not provider_is_dishonest:
                paid_without += 1
        rates[fraction] = (1.0, paid_without / awards_per_point)
    return EscrowAblation(
        dishonest_fractions=dishonest_fractions, payout_rates=rates
    )


@dataclass
class FeeAblation:
    """Spam exposure as the report fee is swept toward zero."""

    #: (fee in ether, junk reports a 10-ETH attacker budget buys)
    points: List[Tuple[float, float]]

    def to_table(self) -> ResultTable:
        table = ResultTable(
            title="Ablation — report submission fee (anti-spam, Eq. 10)",
            columns=["Fee per report (ETH)", "Junk reports per 10 ETH budget"],
        )
        for fee, junk in self.points:
            table.add_row(fee, f"{junk:,.0f}" if junk != float("inf") else "unbounded")
        table.add_note(
            "every junk report forces an AutoVerif run on all providers;"
            " the fee is what keeps that work bounded"
        )
        return table


def ablate_report_fee(
    budget_ether: float = 10.0,
    fees_ether: Tuple[float, ...] = (0.011, 0.005, 0.001, 0.0001, 0.0),
) -> FeeAblation:
    """How many junk submissions a fixed attack budget buys per fee level."""
    points: List[Tuple[float, float]] = []
    for fee in fees_ether:
        junk = budget_ether / fee if fee > 0 else float("inf")
        points.append((fee, junk))
    return FeeAblation(points=points)


def main() -> None:
    """CLI entry point."""
    ablate_two_phase().to_table().print()
    ablate_escrow().to_table().print()
    ablate_report_fee().to_table().print()


if __name__ == "__main__":
    main()
