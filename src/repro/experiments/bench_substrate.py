"""Substrate microbenchmark suite — the repo's perf trajectory, recorded.

``scripts/run_bench.sh`` (or ``python -m repro.experiments.bench_substrate``)
times the hot paths every experiment leans on — header hashing, PoW
nonce search, Merkle construction, a gossip round, and one mini
end-to-end mining experiment — and writes ``BENCH_substrate.json`` so
future PRs measure against a recorded baseline instead of folklore.

Three comparisons are structural, not just timings:

* **nonce search** — the midstate miner (:func:`repro.chain.pow.mine_block`)
  against a pinned copy of the pre-midstate naive loop (re-encode all
  seven header fields per nonce); the suite asserts both accept the
  same nonce and reports the speedup.
* **economics batch** — the vectorized Eq. 7/10 settlement
  (:func:`repro.economics.batch.detector_settlement`) against the
  scalar per-detector loop; the suite asserts the wei amounts are
  bit-identical and reports the speedup.
* **parallel runner** — :func:`repro.experiments.fig5.run_fig5b` serial
  vs ``jobs>1``; the suite asserts the balances are bit-identical and
  reports the wall-clock ratio.  Parallel probes also record
  ``speedup_gated`` — whether the host has more than one core, i.e.
  whether the wall-clock ratio is meaningful to gate on.

Timings take the best of ``repeats`` runs (min is the standard noise
filter for microbenchmarks); workloads are seeded and deterministic.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import random
import shutil
import sys
import tempfile
import time
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.chain.block import Block, BlockHeader, ChainRecord, GENESIS_PARENT, RecordKind
from repro.chain.chain import Blockchain
from repro.chain.consensus import MiningSimulation, make_genesis
from repro.chain.ledger import LedgerStateMachine, apply_block
from repro.chain.merkle import MerkleTree
from repro.chain.pow import PAPER_HASHPOWER_SHARES, difficulty_to_target, mine_block
from repro.chain.transactions import make_transaction
from repro.core.incentives import (
    IncentiveParameters,
    detector_cost,
    detector_incentive,
)
from repro.crypto.hashing import field_frame, fields_midstate, hash_fields
from repro.crypto.keys import KeyPair
from repro.core.distributed import DistributedChain
from repro.economics.batch import detector_settlement, wei_list
from repro.experiments.harness import ResultTable
from repro.experiments.fig5 import run_fig5b
from repro.experiments.fleet_scale import _fleet_trial
from repro.experiments.forks import run_fork_rate
from repro.faults.invariants import confirmed_chain_bytes
from repro.network.config import NetworkConfig
from repro.shard import FleetSpec, ShardedSimulator
from repro.core.reports import DetailedReport
from repro.core.sra import SRA, SignedSRA
from repro.crypto.ecdsa import Signature
from repro.crypto.keys import Address
from repro.detection.descriptions import VulnerabilityDescription
from repro.detection.vulnerability import Severity
from repro.network.gossip import GossipNetwork, build_topology
from repro.network.messages import Message, MessageKind
from repro.network.node import Node
from repro.network.simulator import Simulator
from repro.query import QueryRequest, QueryService
from repro.query.indices import ChainIndex
from repro.query.persistence import load_index, save_index
from repro.store import ChainStore

__all__ = [
    "run_suite",
    "main",
    "naive_mine_block",
    "pretelemetry_mine_block",
    "full_scan_transaction_count",
]

#: Ceiling on the disabled-telemetry nonce-search slowdown vs the
#: pinned pre-telemetry loop (the "near-zero disabled path" contract).
TELEMETRY_OVERHEAD_CEILING = 1.05

_MINER = KeyPair.from_seed(b"bench-substrate").address


def naive_mine_block(
    block: Block, max_attempts: int = 1_000_000, start_nonce: int = 0
) -> Optional[Block]:
    """The pre-midstate reference miner, pinned for speedup comparisons.

    Byte-for-byte the algorithm `mine_block` used before the midstate
    rewrite: allocate a header per nonce and re-hash all seven fields
    through :meth:`BlockHeader.header_hash`.
    """
    header = block.header
    target = difficulty_to_target(header.difficulty)
    for nonce in range(start_nonce, start_nonce + max_attempts):
        candidate = header.with_nonce(nonce)
        if int.from_bytes(candidate.header_hash(), "big") < target:
            return Block(header=candidate, records=block.records)
    return None


def pretelemetry_mine_block(
    block: Block, max_attempts: int = 1_000_000, start_nonce: int = 0
) -> Optional[Block]:
    """The midstate miner as it stood before telemetry, pinned.

    Byte-for-byte the hot loop of ``mine_block`` without the telemetry
    parameter or the post-loop accounting; the reference the ≤5%
    disabled-path overhead gate measures against.
    """
    header = block.header
    target = difficulty_to_target(header.difficulty)
    midstate = fields_midstate(
        header.prev_block_id,
        header.merkle_root,
        repr(float(header.timestamp)),
    )
    suffix = (
        field_frame(header.height)
        + field_frame(header.difficulty)
        + field_frame(header.miner.value)
    )
    for nonce in range(start_nonce, start_nonce + max_attempts):
        hasher = midstate.copy()
        hasher.update(field_frame(nonce))
        hasher.update(suffix)
        digest = hasher.digest()
        if int.from_bytes(digest, "big") < target:
            winner = header.with_nonce(nonce)
            object.__setattr__(winner, "_hash", digest)
            return Block(header=winner, records=block.records)
    return None


def _best_of(repeats: int, fn: Callable[[], Any]) -> float:
    """Minimum wall-clock seconds of ``repeats`` runs of ``fn``."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _bench_block(difficulty: int = 1 << 255) -> Block:
    """An unmined single-record block at (by default) unwinnable difficulty."""
    records = (
        ChainRecord(
            kind=RecordKind.TRANSACTION,
            record_id=hash_fields("bench-substrate-record"),
            payload=b"x" * 64,
        ),
    )
    return Block.assemble(GENESIS_PARENT, 1, records, 1.0, difficulty, _MINER)


def _fresh_headers(count: int) -> List[BlockHeader]:
    """Distinct headers with cold identity caches."""
    return [
        BlockHeader(
            prev_block_id=GENESIS_PARENT,
            merkle_root=hash_fields("root", i),
            timestamp=float(i),
            nonce=i,
            height=1,
            difficulty=100,
            miner=_MINER,
        )
        for i in range(count)
    ]


def _gossip_round(node_count: int) -> int:
    """One flood over a complete overlay; returns messages sent."""
    simulator = Simulator()
    topology = build_topology([f"n{i}" for i in range(node_count)])
    network = GossipNetwork(simulator, topology, rng=random.Random(7))
    network.attach_all(Node(f"n{i}") for i in range(node_count))
    message = Message.wrap(MessageKind.CONTROL, b"bench", origin="n0")
    network.broadcast("n0", message)
    simulator.advance()
    return network.messages_sent


def _ledger_workload(blocks: int):
    """A chain of transaction-bearing blocks plus a valid candidate.

    Returns (chain, machine, candidate) where ``candidate`` extends the
    head — the workload :meth:`LedgerStateMachine.validate_block` sees
    when miners screen incoming records.
    """
    alice = KeyPair.from_seed(b"bench-ledger-alice")
    bob = KeyPair.from_seed(b"bench-ledger-bob")
    difficulty = 100
    chain = Blockchain(make_genesis(difficulty=difficulty))
    machine = LedgerStateMachine(
        genesis_allocations={alice.address: 10**24}
    )
    nonce = 0
    for height in range(1, blocks + 1):
        records = []
        for _ in range(3):
            tx = make_transaction(alice, bob.address, 10**15, nonce)
            records.append(
                ChainRecord(
                    kind=RecordKind.TRANSACTION,
                    record_id=tx.tx_id(),
                    payload=tx.to_payload(),
                    fee=tx.fee_wei,
                    sender=tx.sender,
                )
            )
            nonce += 1
        block = Block.assemble(
            chain.head.block_id, height, tuple(records),
            chain.head.header.timestamp + 10.0, difficulty, _MINER,
        )
        chain.add_block(block)
    tx = make_transaction(alice, bob.address, 10**15, nonce)
    candidate = Block.assemble(
        chain.head.block_id, chain.height + 1,
        (
            ChainRecord(
                kind=RecordKind.TRANSACTION,
                record_id=tx.tx_id(),
                payload=tx.to_payload(),
                fee=tx.fee_wei,
                sender=tx.sender,
            ),
        ),
        chain.head.header.timestamp + 10.0, difficulty, _MINER,
    )
    return chain, machine, candidate


def full_scan_transaction_count(chain: Blockchain, address: Address) -> int:
    """The historical ``Eth.get_transaction_count`` loop, pinned.

    Byte-for-byte the O(chain) scan the sender index replaced; the
    query-serving probe asserts index parity against it before timing,
    and the query tests keep it as their oracle.
    """
    count = 0
    for block in chain.iter_canonical():
        for record in block.records:
            if record.sender == address:
                count += 1
    return count


#: Signatures are never verified when chain payloads are re-parsed, so
#: the synthetic consumer-load chain carries a constant dummy instead
#: of paying pure-Python ECDSA per record.
_QUERY_DUMMY_SIG = Signature(1, 1)
_QUERY_SYSTEMS = ("camera", "doorlock", "thermostat", "router")
_QUERY_PROVIDERS = ("vendor-a", "vendor-b", "vendor-c")
_QUERY_DETECTORS = tuple(f"det-{i}" for i in range(8))
_QUERY_SEVERITIES = (Severity.HIGH, Severity.MEDIUM, Severity.LOW)


def _query_chain(blocks: int, records_per_block: int):
    """A mixed-record chain shaped like real consumer-facing history.

    Returns (chain, senders, record_ids): transactions, SRAs, and
    detailed reports interleaved, every record carrying a sender so the
    nonce index has real work to do.
    """
    rng = random.Random(51)
    senders = [Address(bytes([index + 1]) * 20) for index in range(8)]
    chain = Blockchain(make_genesis(difficulty=100))
    sra_ids: List[bytes] = []
    record_ids: List[bytes] = []
    tag = 0
    for height in range(1, blocks + 1):
        records = []
        for _ in range(records_per_block):
            tag += 1
            roll = rng.random()
            if roll < 0.2:
                provider = rng.choice(_QUERY_PROVIDERS)
                system = rng.choice(_QUERY_SYSTEMS)
                body = SRA(
                    provider_id=provider,
                    system_name=system,
                    system_version=f"v{tag}",
                    artifact_hash=hash_fields("bench-query-artifact", tag),
                    download_link=f"https://{provider}.example/{system}",
                    insurance_wei=10**18,
                    bounty_wei=10**17,
                )
                signed = SignedSRA(
                    body=body, claimed_id=body.sra_id(), signature=_QUERY_DUMMY_SIG
                )
                sra_ids.append(signed.sra_id)
                record = ChainRecord(
                    kind=RecordKind.SRA,
                    record_id=signed.sra_id,
                    payload=signed.to_payload(),
                    sender=rng.choice(senders),
                )
            elif roll < 0.5 and sra_ids:
                detector = rng.choice(_QUERY_DETECTORS)
                wallet = rng.choice(senders)
                # Reports routinely describe several flaws; 1-3
                # descriptions keeps the decode work representative.
                descriptions = tuple(
                    VulnerabilityDescription(
                        canonical=f"vuln-{tag}-{n}",
                        severity=rng.choice(_QUERY_SEVERITIES),
                        category="overflow",
                        wording=f"finding {tag} ({n})",
                    )
                    for n in range(rng.randint(1, 3))
                )
                sra_id = rng.choice(sra_ids)
                report_id = DetailedReport.compute_id(
                    sra_id, detector, wallet, descriptions
                )
                report = DetailedReport(
                    sra_id=sra_id,
                    detector_id=detector,
                    wallet=wallet,
                    descriptions=descriptions,
                    report_id=report_id,
                    signature=_QUERY_DUMMY_SIG,
                )
                record = ChainRecord(
                    kind=RecordKind.DETAILED_REPORT,
                    record_id=report.report_id,
                    payload=report.to_payload(),
                    sender=wallet,
                )
            else:
                record = ChainRecord(
                    kind=RecordKind.TRANSACTION,
                    record_id=hash_fields("bench-query-tx", tag),
                    payload=b"t" * 48,
                    sender=rng.choice(senders),
                )
            records.append(record)
        record_ids.extend(r.record_id for r in records)
        chain.add_block(
            Block.assemble(
                chain.head.block_id, height, tuple(records),
                chain.head.header.timestamp + 10.0, 100, _MINER,
            )
        )
    return chain, senders, record_ids


def _query_workload(
    rng: random.Random,
    count: int,
    senders: List[Address],
    record_ids: List[bytes],
    head_height: int,
) -> List[QueryRequest]:
    """``count`` mixed consumer requests, seeded and deterministic."""
    requests: List[QueryRequest] = []
    for _ in range(count):
        roll = rng.random()
        if roll < 0.30:
            requests.append(
                QueryRequest.get_transaction_count(rng.choice(senders))
            )
        elif roll < 0.55:
            requests.append(
                QueryRequest.get_block(rng.randrange(head_height + 1))
            )
        elif roll < 0.70:
            requests.append(
                QueryRequest.get_transaction(rng.choice(record_ids))
            )
        elif roll < 0.80:
            requests.append(QueryRequest.get_balance(rng.choice(senders)))
        elif roll < 0.90:
            requests.append(
                QueryRequest.get_reports(system=rng.choice(_QUERY_SYSTEMS))
            )
        else:
            requests.append(
                QueryRequest.get_reports(
                    severity=rng.choice(_QUERY_SEVERITIES).value,
                    detector=rng.choice(_QUERY_DETECTORS),
                )
            )
    return requests


def _mini_experiment(blocks: int) -> MiningSimulation:
    """A small end-to-end mining run over the paper's hashpower split."""
    addresses = {
        name: KeyPair.from_seed(name.encode()).address
        for name in PAPER_HASHPOWER_SHARES
    }
    simulation = MiningSimulation.from_shares(
        PAPER_HASHPOWER_SHARES, addresses, rng=random.Random(11)
    )
    simulation.run_blocks(blocks)
    return simulation


def run_suite(
    quick: bool = False,
    repeats: int = 3,
    jobs: Optional[int] = None,
    parallel_probe: bool = True,
) -> Dict[str, Any]:
    """Run every microbenchmark; returns the JSON-ready result dict.

    ``quick`` shrinks workloads (CI smoke); ``jobs`` sets the worker
    count for the parallel-runner probe (default: 2, or serial-only
    when ``parallel_probe`` is False).
    """
    scale = 0.2 if quick else 1.0
    results: Dict[str, Any] = {}

    # -- header hashing ---------------------------------------------------
    cold_count = max(50, int(2000 * scale))
    headers = _fresh_headers(cold_count)

    def _hash_cold() -> None:
        for header in _fresh_headers(cold_count):
            header.header_hash()

    cold = _best_of(repeats, _hash_cold)
    results["header_hash_cold"] = {
        "iterations": cold_count,
        "seconds": cold,
        "per_op_us": cold / cold_count * 1e6,
    }

    cached_iterations = max(1000, int(200_000 * scale))
    warm_header = headers[0]
    warm_header.header_hash()

    def _hash_cached() -> None:
        header_hash = warm_header.header_hash
        for _ in range(cached_iterations):
            header_hash()

    cached = _best_of(repeats, _hash_cached)
    results["header_hash_cached"] = {
        "iterations": cached_iterations,
        "seconds": cached,
        "per_op_us": cached / cached_iterations * 1e6,
        "speedup_vs_cold": (cold / cold_count) / max(cached / cached_iterations, 1e-12),
    }

    # -- nonce search: naive loop vs midstate miner -----------------------
    attempts = max(500, int(20_000 * scale))
    unwinnable = _bench_block()
    naive_seconds = _best_of(
        repeats, lambda: naive_mine_block(unwinnable, max_attempts=attempts)
    )
    midstate_seconds = _best_of(
        repeats, lambda: mine_block(unwinnable, max_attempts=attempts)
    )
    easy = _bench_block(difficulty=64)
    naive_found = naive_mine_block(easy, max_attempts=100_000)
    midstate_found = mine_block(easy, max_attempts=100_000)
    assert naive_found is not None and midstate_found is not None
    if naive_found.header.nonce != midstate_found.header.nonce:
        raise AssertionError(
            "midstate miner disagrees with the naive loop: "
            f"{midstate_found.header.nonce} != {naive_found.header.nonce}"
        )
    results["nonce_search"] = {
        "attempts": attempts,
        "naive_seconds": naive_seconds,
        "midstate_seconds": midstate_seconds,
        "naive_hashes_per_sec": attempts / naive_seconds,
        "midstate_hashes_per_sec": attempts / midstate_seconds,
        "speedup": naive_seconds / midstate_seconds,
        "same_nonce_as_naive": True,
    }

    # -- telemetry overhead on the mining hot loop ------------------------
    # Interleaved pairs so CPU frequency drift hits both sides equally;
    # the ratio of minima needs more repeats than plain timings do to
    # converge under a noisy host, so this probe sets its own floor.
    overhead_repeats = max(repeats, 12)
    # Short runs put the ratio at the mercy of scheduler jitter, so the
    # probe keeps full-size searches even under ``quick``.
    overhead_attempts = max(attempts, 20_000)
    pinned_seconds = disabled_seconds = float("inf")
    for index in range(overhead_repeats):
        # Alternate which side runs first so a one-sided contention
        # burst cannot systematically tax the same loop every pair.
        sides = (
            (pretelemetry_mine_block, mine_block)
            if index % 2 == 0
            else (mine_block, pretelemetry_mine_block)
        )
        timings = {}
        for side in sides:
            started = time.perf_counter()
            side(unwinnable, max_attempts=overhead_attempts)
            timings[side] = time.perf_counter() - started
        pinned_seconds = min(pinned_seconds, timings[pretelemetry_mine_block])
        disabled_seconds = min(disabled_seconds, timings[mine_block])
        # The gate exists to catch a sustained slowdown, which would
        # keep every pair above the ceiling — once a clean pair meets
        # it, stop burning time.  Never before a floor of pairs, so a
        # single fluke-fast disabled run can't pass the probe alone.
        if (
            index >= 5
            and disabled_seconds / pinned_seconds <= TELEMETRY_OVERHEAD_CEILING
        ):
            break
    results["telemetry_overhead"] = {
        "attempts": overhead_attempts,
        "repeats": index + 1,
        "pinned_seconds": pinned_seconds,
        "disabled_seconds": disabled_seconds,
        "disabled_ratio": disabled_seconds / pinned_seconds,
        "ceiling": TELEMETRY_OVERHEAD_CEILING,
    }

    # -- economics: batch Eq. 7/10 settlement vs the scalar loop ----------
    # The vectorized engine must be bit-identical to the scalar closed
    # forms, so the comparison is structural: parity is asserted on the
    # exact wei amounts (outside the timed region), then both engines
    # are timed settling the same detector population.
    population = max(2_000, int(20_000 * scale))
    econ_params = IncentiveParameters()
    econ_rng = random.Random(17)
    econ_counts = [float(econ_rng.randint(0, 50)) for _ in range(population)]
    econ_rhos = [econ_rng.random() for _ in range(population)]
    counts_array = np.asarray(econ_counts, dtype=np.float64)
    rhos_array = np.asarray(econ_rhos, dtype=np.float64)

    def _econ_scalar() -> None:
        for n, rho in zip(econ_counts, econ_rhos):
            detector_incentive(econ_params, n, rho)
            detector_cost(econ_params, n, rho)

    def _econ_batch() -> None:
        detector_settlement(econ_params, counts_array, rhos_array)

    scalar_wei = (
        [detector_incentive(econ_params, n, r) for n, r in zip(econ_counts, econ_rhos)],
        [detector_cost(econ_params, n, r) for n, r in zip(econ_counts, econ_rhos)],
    )
    batch_incentives, batch_costs = detector_settlement(
        econ_params, counts_array, rhos_array
    )
    if (wei_list(batch_incentives), wei_list(batch_costs)) != scalar_wei:
        raise AssertionError(
            "batch economics settlement diverged from the scalar loop"
        )
    econ_scalar_seconds = _best_of(repeats, _econ_scalar)
    econ_batch_seconds = _best_of(repeats, _econ_batch)
    results["economics_batch"] = {
        "population": population,
        "scalar_seconds": econ_scalar_seconds,
        "batch_seconds": econ_batch_seconds,
        "scalar_settlements_per_sec": population / econ_scalar_seconds,
        "batch_settlements_per_sec": population / econ_batch_seconds,
        "speedup": econ_scalar_seconds / econ_batch_seconds,
        "identical_to_scalar": True,
    }

    # -- ledger head-state cache vs full replay ---------------------------
    ledger_blocks = 20 if quick else 60
    chain, machine, candidate = _ledger_workload(ledger_blocks)
    validations = 10 if quick else 30

    def _validate_cached() -> None:
        for _ in range(validations):
            if machine.validate_block(chain, candidate) is not None:
                raise AssertionError("bench candidate must validate")

    def _validate_replay() -> None:
        for _ in range(validations):
            state, nonces = machine.replay(chain)
            apply_block(state, nonces, candidate, machine.block_reward_wei)

    machine.invalidate()
    replay_seconds = _best_of(repeats, _validate_replay)
    machine.invalidate()
    cached_seconds = _best_of(repeats, _validate_cached)
    results["ledger_validate"] = {
        "chain_blocks": ledger_blocks,
        "validations": validations,
        "replay_seconds": replay_seconds,
        "cached_seconds": cached_seconds,
        "speedup": replay_seconds / cached_seconds,
    }

    # -- merkle build ------------------------------------------------------
    leaf_count = 256
    payloads = [hash_fields("bench-leaf", i) for i in range(leaf_count)]
    merkle_builds = max(5, int(50 * scale))

    def _merkle() -> None:
        for _ in range(merkle_builds):
            MerkleTree(payloads)

    merkle_seconds = _best_of(repeats, _merkle)
    results["merkle_build_256"] = {
        "iterations": merkle_builds,
        "seconds": merkle_seconds,
        "per_build_ms": merkle_seconds / merkle_builds * 1e3,
    }

    # -- gossip round ------------------------------------------------------
    node_count = 8 if quick else 16
    gossip_seconds = _best_of(repeats, lambda: _gossip_round(node_count))
    results["gossip_round"] = {
        "nodes": node_count,
        "seconds": gossip_seconds,
        "messages_sent": _gossip_round(node_count),
    }

    # -- mini end-to-end experiment ---------------------------------------
    blocks = 100 if quick else 500
    e2e_seconds = _best_of(repeats, lambda: _mini_experiment(blocks))
    results["mini_experiment"] = {
        "blocks": blocks,
        "seconds": e2e_seconds,
        "blocks_per_sec": blocks / e2e_seconds,
    }

    # -- durable store: append throughput + cold-reopen replay -------------
    # The persistence probe: log a linear chain frame by frame, then a
    # cold process (fresh ChainStore) verifies every checksum, rebuilds
    # the chain, and recovers the ledger from the newest snapshot.
    store_blocks = 150 if quick else 600
    store_chain = Blockchain(make_genesis(difficulty=100))
    for height in range(1, store_blocks + 1):
        record = ChainRecord(
            kind=RecordKind.INITIAL_REPORT,
            record_id=hash_fields("bench-store-record", height),
            payload=b"r" * 120,
        )
        store_chain.add_block(
            Block.assemble(
                store_chain.head.block_id, height, (record,),
                store_chain.head.header.timestamp + 10.0, 100, _MINER,
            )
        )
    store_root = tempfile.mkdtemp(prefix="repro-bench-store-")
    try:
        store_path = os.path.join(store_root, "replica")
        store = ChainStore(store_path, snapshot_interval=64)
        append_started = time.perf_counter()
        for block in store_chain.iter_canonical():
            store.append(block)
        append_seconds = time.perf_counter() - append_started
        store.maybe_snapshot(store_chain, force=True)
        store.close()
        reopen_started = time.perf_counter()
        reopened = ChainStore(store_path, snapshot_interval=64)
        loaded = reopened.load_chain()
        replay = reopened.replay_ledger()
        reopen_seconds = time.perf_counter() - reopen_started
        if loaded is None or loaded.head.block_id != store_chain.head.block_id:
            raise AssertionError("cold reopen did not rebuild the benched chain")
        reopened.close()
        results["store_replay"] = {
            "blocks": store_blocks,
            "append_seconds": append_seconds,
            "append_blocks_per_sec": store_blocks / append_seconds,
            "reopen_seconds": reopen_seconds,
            "replay_blocks_per_sec": (store_blocks + 1) / reopen_seconds,
            "snapshot_hit": replay.snapshot_hit,
            "frames_replayed": replay.frames_replayed,
        }
    finally:
        shutil.rmtree(store_root, ignore_errors=True)

    # -- parallel experiment runner ---------------------------------------
    if parallel_probe:
        trials = 8 if quick else 24
        workers = jobs if jobs and jobs > 1 else 2
        serial_started = time.perf_counter()
        serial = run_fig5b(trials=trials, jobs=None)
        serial_seconds = time.perf_counter() - serial_started
        parallel_started = time.perf_counter()
        parallel = run_fig5b(trials=trials, jobs=workers)
        parallel_seconds = time.perf_counter() - parallel_started
        identical = serial.balances == parallel.balances and serial.vpb == parallel.vpb
        if not identical:
            raise AssertionError("parallel fig5b diverged from the serial run")
        # A single-core host serializes the worker pool, so the
        # wall-clock ratio only gates a regression when cores > 1;
        # bit-identity is asserted unconditionally either way.
        speedup_gated = (os.cpu_count() or 1) > 1
        results["parallel_fig5b"] = {
            "trials": trials,
            "jobs": workers,
            "serial_seconds": serial_seconds,
            "parallel_seconds": parallel_seconds,
            "speedup": serial_seconds / parallel_seconds,
            "speedup_gated": speedup_gated,
            "identical_to_serial": True,
        }

        # -- runner scaling on a pinned heavyweight sweep -----------------
        # fig5b trials are milliseconds each, so its probe mostly times
        # pool spawn overhead; the fork-rate sweep runs whole replicated
        # mining networks per trial — the regime --jobs exists for.
        fork_blocks = 60 if quick else 150
        scaling_started = time.perf_counter()
        serial_forks = run_fork_rate(blocks=fork_blocks, jobs=None)
        scaling_serial_seconds = time.perf_counter() - scaling_started
        scaling_started = time.perf_counter()
        parallel_forks = run_fork_rate(blocks=fork_blocks, jobs=workers)
        scaling_parallel_seconds = time.perf_counter() - scaling_started
        if serial_forks.points != parallel_forks.points:
            raise AssertionError(
                "parallel fork-rate sweep diverged from the serial run"
            )
        results["runner_scaling"] = {
            "sweep": "fork_rate",
            "blocks": fork_blocks,
            "trials": len(serial_forks.points),
            "jobs": workers,
            "serial_seconds": scaling_serial_seconds,
            "parallel_seconds": scaling_parallel_seconds,
            "speedup": scaling_serial_seconds / scaling_parallel_seconds,
            "speedup_gated": speedup_gated,
            "identical_to_serial": True,
        }

    # -- fleet-scale gossip: inv-pull vs complete-mesh flooding -----------
    # The issue's headline number: at 1000 nodes, inventory announce +
    # pull must move the fleet to the same converged state with >= 5x
    # fewer messages than full flooding.  ``quick`` shrinks the fleet;
    # the ratio holds (and grows) with size.
    fleet_nodes = 200 if quick else 1000
    fleet_blocks = 2
    inv_started = time.perf_counter()
    inv_point = _fleet_trial((93, fleet_nodes, "inv", fleet_blocks, 1))
    inv_seconds = time.perf_counter() - inv_started
    flood_started = time.perf_counter()
    flood_point = _fleet_trial((93, fleet_nodes, "flood", fleet_blocks, 1))
    flood_seconds = time.perf_counter() - flood_started
    for label, point in (("inv", inv_point), ("flood", flood_point)):
        if not (point["full_converged"] and point["light_converged"]):
            raise AssertionError(f"{label}-mode fleet failed to converge")
    results["fleet_scale"] = {
        "nodes": fleet_nodes,
        "full_nodes": inv_point["full_nodes"],
        "light_nodes": inv_point["light_nodes"],
        "blocks": fleet_blocks,
        "inv_messages_sent": inv_point["messages_sent"],
        "flood_messages_sent": flood_point["messages_sent"],
        "inv_bytes_sent": inv_point["bytes_sent"],
        "flood_bytes_sent": flood_point["bytes_sent"],
        "inv_events_processed": inv_point["events_processed"],
        "flood_events_processed": flood_point["events_processed"],
        "inv_seconds": inv_seconds,
        "flood_seconds": flood_seconds,
        "messages_ratio": flood_point["messages_sent"] / inv_point["messages_sent"],
        "converged": True,
    }

    # -- query serving: indexed reads vs full-chain scans -----------------
    # Consumer-load read path: a QueryService over a mixed SRA/report/tx
    # chain answers >= 10^5 batched queries.  Parity against the pinned
    # full-scan oracle is asserted BEFORE any timing, so the recorded
    # speedup is guaranteed bit-identical.
    query_blocks = 120 if quick else 400
    query_count = 20_000 if quick else 120_000
    query_chain, query_senders, query_record_ids = _query_chain(query_blocks, 4)
    from repro.contracts.vm import ContractRuntime

    query_runtime = ContractRuntime()
    for index, sender in enumerate(query_senders):
        query_runtime.state.mint(sender, (index + 1) * 10**18)
    query_service = QueryService(chain=query_chain, runtime=query_runtime)
    query_rng = random.Random(307)
    # Parity sweep: every sender count, sampled blocks, every report filter.
    for sender in query_senders:
        if query_service.index.sender_count(sender) != full_scan_transaction_count(
            query_chain, sender
        ):
            raise AssertionError("sender index diverged from the full scan")
    for height in (0, 1, query_blocks // 2, query_blocks):
        indexed = query_service.index.block_at_height(height)
        scanned = next(
            b for b in query_chain.iter_canonical() if b.height == height
        )
        if indexed.block_id != scanned.block_id:
            raise AssertionError("height index diverged from the canonical walk")
    for system in _QUERY_SYSTEMS:
        indexed_reports = {
            (e.height, e.index_in_block) for e in query_service.index.reports(system=system)
        }
        boundary = query_chain.head.height - query_chain.confirmation_depth
        scanned_reports = set()
        sra_systems = {}
        for block in query_chain.iter_canonical():
            if block.height > boundary:
                break
            for record in block.records:
                if record.kind is RecordKind.SRA:
                    signed = SignedSRA.from_payload(record.payload)
                    sra_systems[signed.sra_id] = signed.body.system_name
        for block in query_chain.iter_canonical():
            if block.height > boundary:
                break
            for position, record in enumerate(block.records):
                if record.kind is not RecordKind.DETAILED_REPORT:
                    continue
                report = DetailedReport.from_payload(record.payload)
                if sra_systems.get(report.sra_id) == system:
                    scanned_reports.add((block.height, position))
        if indexed_reports != scanned_reports:
            raise AssertionError("report index diverged from the full scan")

    workload = _query_workload(
        query_rng, query_count, query_senders, query_record_ids, query_blocks
    )
    latencies = np.empty(query_count, dtype=np.float64)
    query_started = time.perf_counter()
    serve = query_service.serve
    clock = time.perf_counter
    for position, request in enumerate(workload):
        tick = clock()
        response = serve(request)
        latencies[position] = clock() - tick
        if not response.ok:
            raise AssertionError(f"query failed mid-workload: {response.error}")
    query_seconds = time.perf_counter() - query_started

    # Head-to-head on the one query both paths implement identically:
    # sender transaction counts, indexed vs the pinned O(chain) scan.
    count_probe = [query_rng.choice(query_senders) for _ in range(400)]

    def _counts_scan():
        return [
            full_scan_transaction_count(query_chain, sender)
            for sender in count_probe
        ]

    def _counts_index():
        sender_count = query_service.index.sender_count
        return [sender_count(sender) for sender in count_probe]

    if _counts_scan() != _counts_index():
        raise AssertionError("indexed counts diverged from the full scan")
    scan_seconds = _best_of(repeats, _counts_scan)
    index_seconds = _best_of(repeats, _counts_index)
    results["query_serving"] = {
        "blocks": query_blocks,
        "records": query_blocks * 4,
        "queries": query_count,
        "seconds": query_seconds,
        "queries_per_sec": query_count / query_seconds,
        "p50_us": float(np.percentile(latencies, 50) * 1e6),
        "p99_us": float(np.percentile(latencies, 99) * 1e6),
        "count_probe_lookups": len(count_probe),
        "scan_seconds": scan_seconds,
        "index_seconds": index_seconds,
        "speedup": scan_seconds / index_seconds,
        "index_rebuilds": query_service.index.rebuilds,
        "snapshot_hits": query_service.snapshots.hits,
        "identical_to_scan": True,
    }

    # -- query index warm start: persisted delta replay vs cold rebuild ---
    # Persist the serving index at the current tip, grow the chain by a
    # small delta, then time a warm start (load + delta replay) against
    # a from-genesis rebuild.  Parity is asserted before any timing.
    # The delta scales with the chain like every other quick-mode
    # workload, keeping the replayed fraction representative (2% of
    # the chain in both modes).
    delta_blocks = 2 if quick else 8
    warm_dir = tempfile.mkdtemp(prefix="bench-query-index-")
    try:
        save_index(query_service.index, warm_dir)
        delta_tag = 10**9  # distinct namespace from _query_chain's counter
        for offset in range(delta_blocks):
            records = tuple(
                ChainRecord(
                    kind=RecordKind.TRANSACTION,
                    record_id=hash_fields(
                        "bench-query-delta", delta_tag + offset * 4 + i
                    ),
                    payload=b"d" * 48,
                    sender=query_senders[(offset + i) % len(query_senders)],
                )
                for i in range(4)
            )
            query_chain.add_block(
                Block.assemble(
                    query_chain.head.block_id,
                    query_chain.head.height + 1,
                    records,
                    query_chain.head.header.timestamp + 10.0,
                    100,
                    _MINER,
                )
            )
        warm = load_index(query_chain, warm_dir)
        cold = ChainIndex(query_chain)
        if warm is None or warm.blocks_indexed != delta_blocks:
            raise AssertionError("warm start did not replay exactly the delta")
        if warm.dump_state() != cold.dump_state():
            raise AssertionError("warm-started index diverged from the cold rebuild")
        # Millisecond-scale builds under a large live heap: collector
        # pauses would dominate, so time them GC-off (as timeit does)
        # and with a higher repeat floor — the builds are so short that
        # extra repeats are free, and best-of-N converges on the true
        # cost instead of whatever the scheduler did that instant.
        build_repeats = max(repeats, 7)
        gc.collect()
        gc.disable()
        try:
            warm_seconds = _best_of(
                build_repeats, lambda: load_index(query_chain, warm_dir)
            )
            cold_seconds = _best_of(
                build_repeats, lambda: ChainIndex(query_chain)
            )
        finally:
            gc.enable()
    finally:
        shutil.rmtree(warm_dir, ignore_errors=True)
    results["query_serving"].update(
        {
            "warm_start_delta_blocks": delta_blocks,
            "warm_start_seconds": warm_seconds,
            "cold_rebuild_seconds": cold_seconds,
            "warm_start_speedup": cold_seconds / warm_seconds,
            "warm_start_identical_to_cold": True,
        }
    )

    # -- sharded fleet engine: parity gates, then the 10k/100k lane -------
    # The parity contract is gated on EVERY host, the 1-core bench
    # container included: a one-shard fleet must be bit-identical to the
    # single-process DistributedChain, and (bench lane) a
    # worker-process run bit-identical to the serial jobs=1 oracle.
    # Only after the gates pass is anything timed; wall-clock speedup
    # follows the parallel probes' convention — recorded always, gated
    # only when cpu_count > 1.  Runs last: the big fleets churn enough
    # heap to skew the millisecond-scale probes (warm-start index load)
    # if run before them.
    shard_spec = FleetSpec(
        full_nodes=10,
        light_nodes=190,
        network=NetworkConfig.large_fleet(),
        shards=2,
    )
    shard_blocks = 2

    def _shard_state(engine: ShardedSimulator):
        return (engine.heads(), engine.light_heads(), engine.chain_bytes())

    shard_serial_started = time.perf_counter()
    with ShardedSimulator(shard_spec, seed=93, jobs=1) as shard_oracle:
        shard_oracle.run_blocks(shard_blocks)
        shard_oracle.finalize()
        shard_oracle_state = _shard_state(shard_oracle)
    shard_serial_seconds = time.perf_counter() - shard_serial_started
    with ShardedSimulator(shard_spec.unsharded(), seed=93, jobs=1) as one_shard:
        one_shard.run_blocks(shard_blocks)
        one_shard.finalize()
        anchor_state = _shard_state(one_shard)
    single = DistributedChain(spec=shard_spec.unsharded(), seed=93)
    single.run_blocks(shard_blocks)
    single.finalize()
    single_state = (
        single.heads(),
        {name: light.tip_id() for name, light in single.light_replicas.items()},
        {
            name: confirmed_chain_bytes(replica.chain)
            for name, replica in single.replicas.items()
        },
    )
    if anchor_state != single_state:
        raise AssertionError(
            "one-shard fleet diverged from the single-process DistributedChain"
        )
    results["fleet_shard"] = {
        "parity_nodes": shard_spec.nodes,
        "parity_shards": shard_spec.shards,
        "parity_blocks": shard_blocks,
        "serial_seconds": shard_serial_seconds,
        "identical_to_single_process": True,
    }
    if parallel_probe:
        shard_workers = jobs if jobs and jobs > 1 else 2
        shard_parallel_started = time.perf_counter()
        with ShardedSimulator(
            shard_spec, seed=93, jobs=shard_workers
        ) as shard_fanned:
            shard_fanned.run_blocks(shard_blocks)
            shard_fanned.finalize()
            shard_fanned_state = _shard_state(shard_fanned)
        shard_parallel_seconds = time.perf_counter() - shard_parallel_started
        if shard_fanned_state != shard_oracle_state:
            raise AssertionError(
                "sharded fleet diverged between jobs=1 and worker processes"
            )
        results["fleet_shard"].update(
            {
                "jobs": shard_workers,
                "parallel_seconds": shard_parallel_seconds,
                "speedup": shard_serial_seconds / shard_parallel_seconds,
                "speedup_gated": (os.cpu_count() or 1) > 1,
                "identical_to_serial": True,
            }
        )
    shard_points = ((1_000, 2),) if quick else ((10_000, 4), (100_000, 8))
    shard_rows: Dict[str, Dict[str, float]] = {}
    for shard_nodes, shard_count in shard_points:
        point_started = time.perf_counter()
        point = _fleet_trial((93, shard_nodes, "shard", fleet_blocks, shard_count))
        point_seconds = time.perf_counter() - point_started
        if not (point["full_converged"] and point["light_converged"]):
            raise AssertionError(
                f"{shard_nodes}-node sharded fleet failed to converge"
            )
        shard_rows[str(shard_nodes)] = {
            "shards": shard_count,
            "full_nodes": point["full_nodes"],
            "light_nodes": point["light_nodes"],
            "blocks_mined": point["blocks_mined"],
            "messages_sent": point["messages_sent"],
            "bytes_sent": point["bytes_sent"],
            "events_processed": point["events_processed"],
            "seconds": point_seconds,
        }
    results["fleet_shard"]["points"] = shard_rows

    return {
        "suite": "substrate",
        "quick": quick,
        "repeats": repeats,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "benchmarks": results,
    }


def to_table(payload: Dict[str, Any]) -> ResultTable:
    """Render a suite result as a printable table."""
    table = ResultTable(
        title="Substrate microbenchmarks (best of %d)" % payload["repeats"],
        columns=["Benchmark", "Workload", "Seconds", "Headline"],
    )
    rows = payload["benchmarks"]
    if "header_hash_cold" in rows:
        entry = rows["header_hash_cold"]
        table.add_row(
            "header hash (cold)",
            f"{entry['iterations']} headers",
            entry["seconds"],
            f"{entry['per_op_us']:.2f} us/hash",
        )
    if "header_hash_cached" in rows:
        entry = rows["header_hash_cached"]
        table.add_row(
            "header hash (cached)",
            f"{entry['iterations']} reads",
            entry["seconds"],
            f"{entry['speedup_vs_cold']:.0f}x vs cold",
        )
    if "nonce_search" in rows:
        entry = rows["nonce_search"]
        table.add_row(
            "nonce search (midstate)",
            f"{entry['attempts']} attempts",
            entry["midstate_seconds"],
            f"{entry['speedup']:.2f}x vs naive loop",
        )
    if "telemetry_overhead" in rows:
        entry = rows["telemetry_overhead"]
        table.add_row(
            "telemetry off (mining)",
            f"{entry['attempts']} attempts",
            entry["disabled_seconds"],
            f"{entry['disabled_ratio']:.3f}x vs pinned "
            f"(ceiling {entry['ceiling']:.2f}x)",
        )
    if "economics_batch" in rows:
        entry = rows["economics_batch"]
        table.add_row(
            "economics batch (Eq. 7/10)",
            f"{entry['population']} detectors",
            entry["batch_seconds"],
            f"{entry['speedup']:.1f}x vs scalar loop (bit-identical)",
        )
    if "ledger_validate" in rows:
        entry = rows["ledger_validate"]
        table.add_row(
            "ledger validate (cached)",
            f"{entry['validations']}x on {entry['chain_blocks']} blocks",
            entry["cached_seconds"],
            f"{entry['speedup']:.1f}x vs full replay",
        )
    if "merkle_build_256" in rows:
        entry = rows["merkle_build_256"]
        table.add_row(
            "merkle build",
            f"{entry['iterations']}x256 leaves",
            entry["seconds"],
            f"{entry['per_build_ms']:.2f} ms/build",
        )
    if "gossip_round" in rows:
        entry = rows["gossip_round"]
        table.add_row(
            "gossip round",
            f"{entry['nodes']} nodes",
            entry["seconds"],
            f"{entry['messages_sent']} msgs",
        )
    if "fleet_scale" in rows:
        entry = rows["fleet_scale"]
        table.add_row(
            "fleet gossip (inv-pull)",
            f"{entry['nodes']} nodes x {entry['blocks']} blocks",
            entry["inv_seconds"],
            f"{entry['messages_ratio']:.1f}x fewer msgs than flooding",
        )
    if "fleet_shard" in rows:
        entry = rows["fleet_shard"]
        parity = (
            f"{entry['parity_nodes']} nodes / {entry['parity_shards']} shards"
        )
        if "speedup" in entry:
            detail = (
                f"parity held; {entry['speedup']:.2f}x at jobs={entry['jobs']}"
                + ("" if entry["speedup_gated"] else " (ungated: 1 core)")
            )
        else:
            detail = "parity held vs single-process"
        table.add_row("sharded fleet (2-shard)", parity, entry["serial_seconds"], detail)
        for nodes, point in sorted(
            entry.get("points", {}).items(), key=lambda kv: int(kv[0])
        ):
            table.add_row(
                f"sharded fleet ({point['shards']} shards)",
                f"{nodes} nodes ({point['full_nodes']}+{point['light_nodes']})",
                point["seconds"],
                f"{int(point['messages_sent'])} msgs, converged",
            )
    if "store_replay" in rows:
        entry = rows["store_replay"]
        table.add_row(
            "store cold-reopen replay",
            f"{entry['blocks']} blocks",
            entry["reopen_seconds"],
            f"{entry['replay_blocks_per_sec']:.0f} blocks/s "
            f"(append {entry['append_blocks_per_sec']:.0f}/s)",
        )
    if "mini_experiment" in rows:
        entry = rows["mini_experiment"]
        table.add_row(
            "mini experiment",
            f"{entry['blocks']} blocks",
            entry["seconds"],
            f"{entry['blocks_per_sec']:.0f} blocks/s",
        )
    if "parallel_fig5b" in rows:
        entry = rows["parallel_fig5b"]
        table.add_row(
            "parallel fig5b",
            f"{entry['trials']} trials, jobs={entry['jobs']}",
            entry["parallel_seconds"],
            f"{entry['speedup']:.2f}x vs serial (bit-identical)",
        )
    if "query_serving" in rows:
        entry = rows["query_serving"]
        table.add_row(
            "query serving (indexed)",
            f"{entry['queries']} queries on {entry['blocks']} blocks",
            entry["seconds"],
            f"{entry['queries_per_sec']:.0f} q/s, p99 {entry['p99_us']:.0f} us, "
            f"{entry['speedup']:.1f}x vs full scan",
        )
        if "warm_start_speedup" in entry:
            table.add_row(
                "query index warm start",
                f"{entry['warm_start_delta_blocks']}-block delta on "
                f"{entry['blocks']} blocks",
                entry["warm_start_seconds"],
                f"{entry['warm_start_speedup']:.1f}x vs cold rebuild "
                "(bit-identical)",
            )
    if "runner_scaling" in rows:
        entry = rows["runner_scaling"]
        table.add_row(
            "runner scaling (fork rate)",
            f"{entry['trials']} ratios x {entry['blocks']} blocks, "
            f"jobs={entry['jobs']}",
            entry["parallel_seconds"],
            f"{entry['speedup']:.2f}x vs serial (bit-identical)",
        )
    table.add_note("regenerate with scripts/run_bench.sh; see docs/PERFORMANCE.md")
    return table


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: run the suite and write the JSON baseline."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.bench_substrate",
        description="time the substrate hot paths and record BENCH_substrate.json",
    )
    parser.add_argument(
        "--output", default="BENCH_substrate.json", help="where to write the JSON"
    )
    parser.add_argument(
        "--quick", action="store_true", help="small workloads (CI smoke)"
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="runs per benchmark; best is kept"
    )
    parser.add_argument(
        "--jobs", type=int, default=None, help="workers for the parallel probe"
    )
    parser.add_argument(
        "--no-parallel", action="store_true", help="skip the parallel-runner probe"
    )
    args = parser.parse_args(argv)
    payload = run_suite(
        quick=args.quick,
        repeats=args.repeats,
        jobs=args.jobs,
        parallel_probe=not args.no_parallel,
    )
    to_table(payload).print()
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")
    speedup = payload["benchmarks"]["nonce_search"]["speedup"]
    if speedup < 3.0:
        print(f"WARNING: nonce-search speedup {speedup:.2f}x below the 3x floor")
        return 1
    econ_speedup = payload["benchmarks"]["economics_batch"]["speedup"]
    if econ_speedup < 5.0:
        print(
            f"WARNING: batch economics settlement only {econ_speedup:.2f}x "
            "the scalar loop, below the 5x floor"
        )
        return 1
    fleet_ratio = payload["benchmarks"]["fleet_scale"]["messages_ratio"]
    if fleet_ratio < 5.0:
        print(
            f"WARNING: inv-pull saves only {fleet_ratio:.2f}x messages "
            "vs flooding, below the 5x floor"
        )
        return 1
    query_speedup = payload["benchmarks"]["query_serving"]["speedup"]
    if query_speedup < 5.0:
        print(
            f"WARNING: indexed query serving only {query_speedup:.2f}x "
            "the full-chain scan, below the 5x floor"
        )
        return 1
    warm_speedup = payload["benchmarks"]["query_serving"]["warm_start_speedup"]
    if warm_speedup < 5.0:
        print(
            f"WARNING: index warm start only {warm_speedup:.2f}x "
            "the cold from-genesis rebuild, below the 5x floor"
        )
        return 1
    ratio = payload["benchmarks"]["telemetry_overhead"]["disabled_ratio"]
    if ratio > TELEMETRY_OVERHEAD_CEILING:
        print(
            f"WARNING: disabled-telemetry mining overhead {ratio:.3f}x "
            f"above the {TELEMETRY_OVERHEAD_CEILING:.2f}x ceiling"
        )
        return 1
    # Parallel probes: bit-parity was asserted inside the suite on every
    # host; the wall-clock ratio is only a meaningful floor when this
    # host can actually run workers concurrently.  A 1-core container
    # records speedup_gated=false rather than silently passing a
    # number nobody should gate on.
    for probe in ("parallel_fig5b", "runner_scaling", "fleet_shard"):
        entry = payload["benchmarks"].get(probe, {})
        if not entry.get("speedup_gated"):
            continue
        if entry["speedup"] < 1.0:
            print(
                f"WARNING: {probe} parallel run is slower than serial "
                f"({entry['speedup']:.2f}x) despite {os.cpu_count()} cores"
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
