"""Detection-to-payout latency — how "automated" the incentives feel.

The paper claims detectors "automatically gain incentives once catching
any vulnerability" (§IV-B); operationally the payout waits for two
confirmations: R† must be buried under 6 blocks before R* is published,
and R* under 6 more before the contract pays.  At a 15.35 s block time
the floor is ≈ 2·6·15.35 ≈ 184 s.  This experiment measures the realized
distribution — announcement→payment and R†-confirmation→payment — from
real platform runs, the latency companion to the Fig. 6 economics.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.contracts.vm import ContractRuntime
from repro.detection.iot_system import build_system
from repro.experiments.harness import ResultTable, summarize
from repro.experiments.runner import (
    SweepCheckpoint,
    derive_seeds,
    run_trials,
    sweep_checkpoint,
)
from repro.workloads.scenarios import paper_setup

__all__ = ["LatencyResult", "run_payout_latency"]


@dataclass
class LatencyResult:
    """Per-bounty latency from release announcement to payment."""

    #: seconds from the release announcement to each bounty payment
    announce_to_pay: List[float]
    #: seconds from the R† on-chain confirmation to the payment
    confirm_to_pay: List[float]
    confirmation_depth: int
    mean_block_time: float

    @property
    def theoretical_floor(self) -> float:
        """2 confirmation waits at the configured depth and block time."""
        return 2 * self.confirmation_depth * self.mean_block_time

    def to_table(self) -> ResultTable:
        table = ResultTable(
            title="Detection-to-payout latency (full platform, seconds)",
            columns=["Metric", "announce→pay", "R†-confirm→pay"],
        )
        announce_stats = summarize(self.announce_to_pay)
        confirm_stats = summarize(self.confirm_to_pay)
        for key in ("mean", "median", "min", "max"):
            table.add_row(key, round(announce_stats[key], 1), round(confirm_stats[key], 1))
        table.add_row("samples", len(self.announce_to_pay), len(self.confirm_to_pay))
        table.add_note(
            f"floor = 2 confirmations x {self.confirmation_depth} blocks x "
            f"{self.mean_block_time}s = {self.theoretical_floor:.0f}s"
        )
        return table


def _latency_release_trial(args: Tuple[int, int, int]) -> Dict[str, List[float]]:
    """One vulnerable release on a fresh seed-pure platform.

    Announces at t=0, so award block times *are* the announce→pay
    latencies; returns JSON-native latency lists for checkpointing.
    """
    trial_seed, index, flaws_per_release = args
    setup = paper_setup(seed=trial_seed)
    platform = setup.build_platform()
    window = setup.config.detection_window
    system = build_system(
        f"latency-sys-{index}",
        vulnerability_count=flaws_per_release,
        rng=random.Random(trial_seed),
    )
    platform.announce_release(provider_name="provider-1", system=system, at_time=0.0)
    platform.advance_until(window + 600.0)
    platform.finish_pending()

    announce_to_pay: List[float] = []
    confirm_to_pay: List[float] = []
    runtime: ContractRuntime = platform.runtime
    for case in platform.releases.values():
        contract = runtime.get_contract(case.contract_address)
        for award in contract.awards():
            announce_to_pay.append(award.block_time)
    # Pipeline tail: for every bounty, time from the detector's R†
    # confirmation event to the payment event on the same contract.
    for event in runtime.events_named("BountyPaid"):
        paid_at = event.block_time
        commit = next(
            (
                candidate
                for candidate in runtime.events_named("InitialReportConfirmed")
                if candidate.contract == event.contract
                and candidate.payload["detector"] == event.payload["detector"]
            ),
            None,
        )
        if commit is not None:
            confirm_to_pay.append(paid_at - commit.block_time)
    return {"announce_to_pay": announce_to_pay, "confirm_to_pay": confirm_to_pay}


def run_payout_latency(
    releases: int = 10,
    flaws_per_release: int = 3,
    seed: int = 8,
    jobs: Optional[int] = None,
    checkpoint: Optional[Union[str, SweepCheckpoint]] = None,
) -> LatencyResult:
    """Measure payout latency over a campaign of vulnerable releases.

    Each release runs on its own seed-pure platform
    (:func:`derive_seeds`) and the latency samples concatenate in
    release order, so fanning out over ``jobs`` processes is
    bit-identical to the serial loop; ``checkpoint`` journals finished
    releases for resume.
    """
    trial_seeds = derive_seeds(seed, releases)
    outcomes = run_trials(
        _latency_release_trial,
        [
            (trial_seed, index, flaws_per_release)
            for index, trial_seed in enumerate(trial_seeds)
        ],
        jobs=jobs,
        checkpoint=sweep_checkpoint(checkpoint, "latency", seed),
    )
    announce_to_pay: List[float] = []
    confirm_to_pay: List[float] = []
    for outcome in outcomes:
        announce_to_pay.extend(float(value) for value in outcome["announce_to_pay"])
        confirm_to_pay.extend(float(value) for value in outcome["confirm_to_pay"])
    config = paper_setup(seed=seed).config
    return LatencyResult(
        announce_to_pay=announce_to_pay,
        confirm_to_pay=confirm_to_pay,
        confirmation_depth=config.confirmation_depth,
        mean_block_time=config.mean_block_time,
    )


def main() -> None:
    """CLI entry point."""
    run_payout_latency().to_table().print()


if __name__ == "__main__":
    main()
