"""Table I — third-party detection results are partially overlapping.

Scans the two calibrated apps with the six modelled services and
reports per-severity counts next to the paper's, plus the pairwise
Jaccard overlap that quantifies the caption's "partially overlapped".
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.detection.services import (
    PAPER_SERVICE_PROFILES,
    ScanResult,
    build_table1_apps,
    overlap_matrix,
)
from repro.detection.vulnerability import Severity
from repro.experiments.harness import ResultTable

__all__ = ["Table1Result", "run_table1", "PAPER_TABLE1"]

#: The counts the paper reports: service -> app -> (high, medium, low).
PAPER_TABLE1: Dict[str, Dict[str, Tuple[int, int, int]]] = {
    "VirusTotal": {"samsung-connect": (0, 0, 0), "samsung-smart-home": (0, 0, 0)},
    "Quixxi": {"samsung-connect": (4, 6, 3), "samsung-smart-home": (3, 8, 4)},
    "Andrototal": {"samsung-connect": (0, 0, 0), "samsung-smart-home": (0, 0, 0)},
    "jaq.alibaba": {"samsung-connect": (1, 14, 32), "samsung-smart-home": (21, 46, 55)},
    "Ostorlab": {"samsung-connect": (0, 2, 0), "samsung-smart-home": (0, 2, 2)},
    "htbridge": {"samsung-connect": (1, 6, 5), "samsung-smart-home": (1, 4, 6)},
}


@dataclass
class Table1Result:
    """Measured counts and overlap statistics."""

    counts: Dict[str, Dict[str, Tuple[int, int, int]]]
    overlaps: Dict[str, Dict[Tuple[str, str], float]]

    def max_overlap(self) -> float:
        """Largest pairwise Jaccard across both apps."""
        values = [
            value for per_app in self.overlaps.values() for value in per_app.values()
        ]
        return max(values) if values else 0.0

    def to_table(self) -> ResultTable:
        """Paper-vs-measured table."""
        table = ResultTable(
            title="Table I — per-service vulnerability counts (paper / measured)",
            columns=[
                "Service",
                "Connect H",
                "Connect M",
                "Connect L",
                "SmartHome H",
                "SmartHome M",
                "SmartHome L",
            ],
        )
        for service, paper_apps in PAPER_TABLE1.items():
            measured_apps = self.counts[service]
            cells = []
            for app in ("samsung-connect", "samsung-smart-home"):
                for index in range(3):
                    cells.append(
                        f"{paper_apps[app][index]} / {measured_apps[app][index]}"
                    )
            table.add_row(service, *cells)
        table.add_note(
            "overlap is partial: max pairwise Jaccard "
            f"{self.max_overlap():.2f} (1.0 would mean identical findings)"
        )
        return table


def run_table1(seed: int = 7) -> Table1Result:
    """Scan both apps with every service profile."""
    rng = random.Random(seed)
    connect, smart_home = build_table1_apps(seed=seed)
    counts: Dict[str, Dict[str, Tuple[int, int, int]]] = {}
    overlaps: Dict[str, Dict[Tuple[str, str], float]] = {}
    for app in (connect, smart_home):
        results: List[ScanResult] = []
        for profile in PAPER_SERVICE_PROFILES.values():
            result = profile.scan(app, rng)
            results.append(result)
            by_severity = result.counts()
            counts.setdefault(profile.name, {})[app.name] = (
                by_severity[Severity.HIGH],
                by_severity[Severity.MEDIUM],
                by_severity[Severity.LOW],
            )
        overlaps[app.name] = overlap_matrix(results)
    return Table1Result(counts=counts, overlaps=overlaps)


def main() -> None:
    """CLI entry point."""
    run_table1().to_table().print()


if __name__ == "__main__":
    main()
