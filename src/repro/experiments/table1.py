"""Table I — third-party detection results are partially overlapping.

Scans the two calibrated apps with the six modelled services and
reports per-severity counts next to the paper's, plus the pairwise
Jaccard overlap that quantifies the caption's "partially overlapped".
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.detection.services import (
    PAPER_SERVICE_PROFILES,
    build_table1_apps,
)
from repro.economics.batch import jaccard_counts
from repro.detection.vulnerability import Severity
from repro.experiments.harness import ResultTable
from repro.experiments.runner import (
    SweepCheckpoint,
    derive_seeds,
    run_trials,
    sweep_checkpoint,
)

__all__ = ["Table1Result", "run_table1", "PAPER_TABLE1"]

#: The counts the paper reports: service -> app -> (high, medium, low).
PAPER_TABLE1: Dict[str, Dict[str, Tuple[int, int, int]]] = {
    "VirusTotal": {"samsung-connect": (0, 0, 0), "samsung-smart-home": (0, 0, 0)},
    "Quixxi": {"samsung-connect": (4, 6, 3), "samsung-smart-home": (3, 8, 4)},
    "Andrototal": {"samsung-connect": (0, 0, 0), "samsung-smart-home": (0, 0, 0)},
    "jaq.alibaba": {"samsung-connect": (1, 14, 32), "samsung-smart-home": (21, 46, 55)},
    "Ostorlab": {"samsung-connect": (0, 2, 0), "samsung-smart-home": (0, 2, 2)},
    "htbridge": {"samsung-connect": (1, 6, 5), "samsung-smart-home": (1, 4, 6)},
}


@dataclass
class Table1Result:
    """Measured counts and overlap statistics."""

    counts: Dict[str, Dict[str, Tuple[int, int, int]]]
    overlaps: Dict[str, Dict[Tuple[str, str], float]]

    def max_overlap(self) -> float:
        """Largest pairwise Jaccard across both apps."""
        values = [
            value for per_app in self.overlaps.values() for value in per_app.values()
        ]
        return max(values) if values else 0.0

    def to_table(self) -> ResultTable:
        """Paper-vs-measured table."""
        table = ResultTable(
            title="Table I — per-service vulnerability counts (paper / measured)",
            columns=[
                "Service",
                "Connect H",
                "Connect M",
                "Connect L",
                "SmartHome H",
                "SmartHome M",
                "SmartHome L",
            ],
        )
        for service, paper_apps in PAPER_TABLE1.items():
            measured_apps = self.counts[service]
            cells = []
            for app in ("samsung-connect", "samsung-smart-home"):
                for index in range(3):
                    cells.append(
                        f"{paper_apps[app][index]} / {measured_apps[app][index]}"
                    )
            table.add_row(service, *cells)
        table.add_note(
            "overlap is partial: max pairwise Jaccard "
            f"{self.max_overlap():.2f} (1.0 would mean identical findings)"
        )
        return table


def _table1_scan_trial(args: Tuple[int, int, int, str]) -> Dict[str, object]:
    """One (app, service) scan with its own derived rng.

    Returns JSON-native severity counts plus the found-vulnerability
    keys so the parent can reassemble Table I cells and the pairwise
    Jaccard overlaps in any fan-out order.
    """
    trial_seed, app_seed, app_index, service_name = args
    apps = build_table1_apps(seed=app_seed)
    app = apps[app_index]
    result = PAPER_SERVICE_PROFILES[service_name].scan(app, random.Random(trial_seed))
    by_severity = result.counts()
    return {
        "service": service_name,
        "app": app.name,
        "counts": [
            by_severity[Severity.HIGH],
            by_severity[Severity.MEDIUM],
            by_severity[Severity.LOW],
        ],
        "keys": sorted(result.keys()),
    }


def run_table1(
    seed: int = 7,
    jobs: Optional[int] = None,
    checkpoint: Optional[Union[str, SweepCheckpoint]] = None,
) -> Table1Result:
    """Scan both apps with every service profile.

    Each (app, service) scan is an independent seed-pure trial
    (:func:`derive_seeds`) fanned out via ``jobs``; counts and the
    pairwise Jaccard overlaps are assembled in scan order, so any
    ``jobs`` value produces identical results.
    """
    services = list(PAPER_SERVICE_PROFILES)
    items = [
        (app_index, service_name)
        for app_index in (0, 1)
        for service_name in services
    ]
    trial_seeds = derive_seeds(seed, len(items))
    outcomes = run_trials(
        _table1_scan_trial,
        [
            (trial_seed, seed, app_index, service_name)
            for trial_seed, (app_index, service_name) in zip(trial_seeds, items)
        ],
        jobs=jobs,
        checkpoint=sweep_checkpoint(checkpoint, "table1", seed),
    )

    counts: Dict[str, Dict[str, Tuple[int, int, int]]] = {}
    overlaps: Dict[str, Dict[Tuple[str, str], float]] = {}
    per_app: Dict[str, List[Dict[str, object]]] = {}
    for outcome in outcomes:
        high, medium, low = outcome["counts"]
        counts.setdefault(outcome["service"], {})[outcome["app"]] = (
            int(high), int(medium), int(low)
        )
        per_app.setdefault(outcome["app"], []).append(outcome)
    # Pairwise Jaccard per app, matching repro.detection.services.overlap_matrix
    # (pairs where both services found nothing are skipped).  The
    # intersection counts come from one vectorized membership-matrix
    # product (repro.economics.batch.jaccard_counts); the final ratios
    # divide the same exact integer counts the set arithmetic produced.
    for app_name, scans in per_app.items():
        matrix: Dict[Tuple[str, str], float] = {}
        intersections, sizes = jaccard_counts([scan["keys"] for scan in scans])
        for i, first in enumerate(scans):
            for j in range(i + 1, len(scans)):
                intersection = int(intersections[i, j])
                union = int(sizes[i]) + int(sizes[j]) - intersection
                if not union:
                    continue
                matrix[(first["service"], scans[j]["service"])] = intersection / union
        overlaps[app_name] = matrix
    return Table1Result(counts=counts, overlaps=overlaps)


def main() -> None:
    """CLI entry point."""
    run_table1().to_table().print()


if __name__ == "__main__":
    main()
