"""Fig. 6 — balance of SmartCrowd detectors.

Fig. 6(a): incentives allocated to the 8 detectors (1-8 threads) for
releases by the 14.90%-HP provider at VP = VPB, VPB±0.01.  The paper
observes (i) incentives ≈ proportional to capability — the 8-thread
detector earns ≈7.8× the 1-thread one — and (ii) every +0.01 of VP adds
3–23.5 ether depending on capability.

Fig. 6(b): the cost of reporting — ≈0.011 ether of gas per detection
report — negligible next to the incentives.

Measurement strategy: detector payouts only occur for *vulnerable*
releases, and at VP ≈ 0.038 naive Bernoulli sampling needs thousands of
releases to converge.  We instead run the full platform on a batch of
vulnerable releases (real scans, real two-phase races, real mining and
contract payouts), measure each detector's mean payout per vulnerable
release, and scale by the expected number of vulnerable releases
VP·releases — an exact conditioning argument (E[payout] =
VP·E[payout | vulnerable]), the same expectation the paper's 100
measurements estimate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

from repro.analysis.vpb import vpb_closed_form
from repro.core.incentives import IncentiveParameters
from repro.detection.iot_system import build_system
from repro.economics.batch import incentive_grid_ether
from repro.experiments.harness import ResultTable
from repro.experiments.runner import (
    SweepCheckpoint,
    derive_seeds,
    run_trials,
    sweep_checkpoint,
)
from repro.units import from_wei
from repro.workloads.scenarios import paper_setup, provider_zeta

__all__ = ["Fig6Result", "run_fig6"]


@dataclass
class Fig6Result:
    """Per-detector incentives (by VP) and per-report costs."""

    #: vp -> detector_id -> expected incentives over a release window (ether)
    incentives: Dict[float, Dict[str, float]]
    #: detector_id -> mean payout per vulnerable release (ether)
    payout_per_vulnerable_release: Dict[str, float]
    #: detector_id -> mean gas cost per submitted report (ether)
    cost_per_report: Dict[str, float]
    vpb: float
    samples: int
    releases_per_window: int

    def thread_of(self, detector_id: str) -> int:
        """Thread count encoded in an id like ``"detector-4"``.

        Raises a descriptive :class:`ValueError` for ids that do not end
        in ``-<number>`` rather than leaking a bare parse error.
        """
        _, sep, suffix = detector_id.rpartition("-")
        if not sep or not suffix.isdigit():
            raise ValueError(
                f"detector id {detector_id!r} does not encode a thread"
                " count; expected an id ending in '-<threads>', e.g."
                " 'detector-4'"
            )
        return int(suffix)

    def capability_ratio(self) -> float:
        """8-thread vs 1-thread mean payout (paper: ≈7.8×)."""
        missing = [
            endpoint
            for endpoint in ("detector-1", "detector-8")
            if endpoint not in self.payout_per_vulnerable_release
        ]
        if missing:
            raise KeyError(
                "capability_ratio needs the 1- and 8-thread endpoint"
                f" detectors; missing {missing} from measured detectors"
                f" {sorted(self.payout_per_vulnerable_release)}"
            )
        low = self.payout_per_vulnerable_release["detector-1"]
        high = self.payout_per_vulnerable_release["detector-8"]
        return high / low if low > 0 else float("inf")

    def delta_per_hundredth(self, detector_id: str) -> float:
        """Extra ether earned when VP rises by 0.01 (paper: 3–23.5)."""
        return (
            0.01 * self.releases_per_window
            * self.payout_per_vulnerable_release[detector_id]
        )

    def to_table(self) -> ResultTable:
        vps = sorted(self.incentives)
        table = ResultTable(
            title=(
                "Fig. 6 — detector incentives (ETH over "
                f"{self.releases_per_window} release windows) and report costs"
            ),
            columns=["Detector", "Threads"]
            + [self._vp_label(vp) for vp in vps]
            + ["+ETH per +0.01 VP", "Cost/report (ETH)"],
        )
        detectors = sorted(self.cost_per_report, key=self.thread_of)
        for detector_id in detectors:
            table.add_row(
                detector_id,
                self.thread_of(detector_id),
                *[round(self.incentives[vp][detector_id], 2) for vp in vps],
                round(self.delta_per_hundredth(detector_id), 2),
                round(self.cost_per_report[detector_id], 4),
            )
        table.add_note(
            f"8-thread/1-thread incentive ratio: {self.capability_ratio():.2f}"
            " (paper ≈ 7.8)"
        )
        table.add_note("paper: +0.01 VP adds 3-23.5 ETH; cost/report ≈ 0.011 ETH")
        table.add_note(f"payout means estimated from {self.samples} vulnerable releases")
        return table

    def _vp_label(self, vp: float) -> str:
        if abs(vp - self.vpb) < 1e-6:
            return f"VP={vp:.3f} (VPB)"
        sign = "+" if vp > self.vpb else "-"
        return f"VPB{sign}0.01"


def _fig6_release_trial(args: Tuple[int, int, str, int]) -> Dict[str, Dict[str, int]]:
    """One vulnerable release on a fresh seed-pure platform.

    Returns per-detector wei/report tallies as JSON-native ints so the
    trial can be journaled to a sweep checkpoint and summed in any
    order-preserving fan-out.
    """
    trial_seed, index, provider, mean_vulnerabilities = args
    setup = paper_setup(seed=trial_seed)
    platform = setup.build_platform()
    window = setup.config.detection_window
    system = build_system(
        f"fig6-sys-{index}",
        vulnerability_count=mean_vulnerabilities,
        rng=random.Random(trial_seed),
    )
    platform.announce_release(provider, system, at_time=0.0)
    platform.advance_until(window + 300.0)
    platform.finish_pending()
    incentives_wei: Dict[str, int] = {}
    fees_wei: Dict[str, int] = {}
    reports: Dict[str, int] = {}
    for detector_id, stats in platform.detector_stats.items():
        incentives_wei[detector_id] = int(stats.incentives_wei)
        fees_wei[detector_id] = int(stats.fees_paid_wei)
        reports[detector_id] = int(stats.initial_reports_submitted)
    return {"incentives_wei": incentives_wei, "fees_wei": fees_wei, "reports": reports}


def run_fig6(
    provider: str = "provider-3",
    samples: int = 30,
    releases_per_window: int = 11,
    mean_vulnerabilities: int = 4,
    seed: int = 6,
    jobs: Optional[int] = None,
    checkpoint: Optional[Union[str, SweepCheckpoint]] = None,
) -> Fig6Result:
    """Full-platform measurement of detector incentives and costs.

    ``releases_per_window`` defaults to 11 ten-minute release windows so
    the per-window incentive deltas land in the paper's 3-23.5 ether
    band (ΔVP·I·releases·ξ_i with I = 1000).

    Each of the ``samples`` vulnerable releases runs on its own
    seed-pure platform (:func:`derive_seeds`), so the sweep fans out
    over ``jobs`` processes, journals per-release tallies to
    ``checkpoint``, and sums them in release order — identical for any
    ``jobs`` value.
    """
    params = IncentiveParameters()
    vpb = round(
        vpb_closed_form(
            params,
            zeta_i=provider_zeta(provider),
            insurance_ether=1000.0,
            window=600.0,
            omega_per_block=2.0,
        ),
        3,
    )
    vps = (round(vpb - 0.01, 6), vpb, round(vpb + 0.01, 6))

    trial_seeds = derive_seeds(seed, samples)
    outcomes = run_trials(
        _fig6_release_trial,
        [
            (trial_seed, index, provider, mean_vulnerabilities)
            for index, trial_seed in enumerate(trial_seeds)
        ],
        jobs=jobs,
        checkpoint=sweep_checkpoint(checkpoint, "fig6", seed),
    )

    incentives_wei: Dict[str, int] = {}
    fees_wei: Dict[str, int] = {}
    report_counts: Dict[str, int] = {}
    for outcome in outcomes:
        for detector_id, amount in outcome["incentives_wei"].items():
            incentives_wei[detector_id] = incentives_wei.get(detector_id, 0) + amount
        for detector_id, amount in outcome["fees_wei"].items():
            fees_wei[detector_id] = fees_wei.get(detector_id, 0) + amount
        for detector_id, count in outcome["reports"].items():
            report_counts[detector_id] = report_counts.get(detector_id, 0) + count

    payout_per_release: Dict[str, float] = {}
    cost_per_report: Dict[str, float] = {}
    for detector_id, total_wei in incentives_wei.items():
        payout_per_release[detector_id] = from_wei(total_wei) / samples
        reports = report_counts.get(detector_id, 0)
        cost_per_report[detector_id] = (
            from_wei(fees_wei.get(detector_id, 0)) / reports if reports else 0.0
        )

    # The VP × detector incentive grid vectorizes over the detector
    # axis; values equal the scalar vp·releases·payout products bit for
    # bit (repro.economics.batch preserves the operation order).
    incentives = incentive_grid_ether(vps, releases_per_window, payout_per_release)
    return Fig6Result(
        incentives=incentives,
        payout_per_vulnerable_release=payout_per_release,
        cost_per_report=cost_per_report,
        vpb=vpb,
        samples=samples,
        releases_per_window=releases_per_window,
    )


def main() -> None:
    """CLI entry point."""
    run_fig6().to_table().print()


if __name__ == "__main__":
    main()
