"""Chaos gauntlet sweep — the fault-tolerance claim, measured (§V-C).

Runs the full chaos gauntlet (crash/restart schedules, burst loss,
duplication, delay spikes, one timed partition) over several seeds and
tabulates what the recovery machinery did: blocks mined under chaos,
chain resyncs, records resubmitted after reorgs, detector retries, and
— the point of it all — whether every invariant held and every
published report landed on the canonical chain exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.experiments.harness import ResultTable
from repro.experiments.runner import run_trials
from repro.faults.gauntlet import GauntletConfig, GauntletResult, run_gauntlet
from repro.telemetry import Telemetry

__all__ = ["ChaosGauntletResult", "run_chaos_gauntlet"]


@dataclass
class ChaosGauntletResult:
    """Per-seed gauntlet outcomes."""

    runs: List[GauntletResult]

    @property
    def all_ok(self) -> bool:
        """True when every seed passed every invariant."""
        return all(run.ok for run in self.runs)

    def to_table(self) -> ResultTable:
        table = ResultTable(
            title="Chaos gauntlet: crash/restart + partition + lossy links",
            columns=[
                "seed",
                "blocks",
                "faults",
                "resyncs",
                "resubmitted",
                "retries",
                "reports on-chain once",
                "invariants",
            ],
        )
        for run in self.runs:
            retries = int(run.network.get("initial_retries", 0)) + int(
                run.network.get("detailed_retries", 0)
            )
            table.add_row(
                run.seed,
                run.blocks_mined,
                run.faults_applied,
                run.network.get("resyncs_performed", 0),
                run.network.get("records_resubmitted", 0),
                retries,
                f"{run.confirmed_reports}"
                + ("" if not (run.missing_reports or run.duplicate_reports)
                   else f" ({len(run.missing_reports)} missing,"
                        f" {len(run.duplicate_reports)} dup)"),
                "all hold" if run.ok else "VIOLATED",
            )
        table.add_note(
            "0.2 crash prob/epoch, 10% loss (90% burst), duplication,"
            " delay spikes, one timed partition; invariants checked after heal"
        )
        return table


def _gauntlet_trial(args: Tuple[int, float, float]) -> GauntletResult:
    """One seeded gauntlet run (module-level so it can cross processes)."""
    seed, chaos_duration, settle_time = args
    return run_gauntlet(
        GauntletConfig(
            seed=seed,
            chaos_duration=chaos_duration,
            settle_time=settle_time,
        )
    )


def run_chaos_gauntlet(
    seeds: Tuple[int, ...] = (0, 1, 2),
    chaos_duration: float = 1800.0,
    settle_time: float = 900.0,
    jobs: Optional[int] = None,
    telemetry: Optional[Telemetry] = None,
) -> ChaosGauntletResult:
    """The ≥3-seed acceptance sweep at the paper-scale configuration.

    Each seed is an independent deterministic run, so ``jobs`` fans the
    sweep out one-gauntlet-per-process; results are merged in seed
    order and are identical to the serial sweep.

    An enabled ``telemetry`` accumulates in this process, so the
    instrumented sweep runs serially (``jobs`` is ignored); each run's
    trajectory is identical either way.
    """
    if telemetry is not None and telemetry.enabled:
        runs = [
            run_gauntlet(
                GauntletConfig(
                    seed=seed,
                    chaos_duration=chaos_duration,
                    settle_time=settle_time,
                ),
                telemetry=telemetry,
            )
            for seed in seeds
        ]
        return ChaosGauntletResult(runs=runs)
    runs = run_trials(
        _gauntlet_trial,
        [(seed, chaos_duration, settle_time) for seed in seeds],
        jobs=jobs,
    )
    return ChaosGauntletResult(runs=runs)


def main() -> None:
    """CLI entry point."""
    run_chaos_gauntlet().to_table().print()


if __name__ == "__main__":
    main()
