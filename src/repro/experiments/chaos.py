"""Chaos gauntlet sweep — the fault-tolerance claim, measured (§V-C).

Runs the full chaos gauntlet (crash/restart schedules, burst loss,
duplication, delay spikes, one timed partition) over several seeds and
tabulates what the recovery machinery did: blocks mined under chaos,
chain resyncs, records resubmitted after reorgs, detector retries, and
— the point of it all — whether every invariant held and every
published report landed on the canonical chain exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.experiments.harness import ResultTable
from repro.experiments.runner import run_trials
from repro.faults.gauntlet import GauntletConfig, GauntletResult, run_gauntlet
from repro.telemetry import Telemetry

__all__ = ["ChaosGauntletResult", "run_chaos_gauntlet"]


@dataclass
class ChaosGauntletResult:
    """Per-seed gauntlet outcomes."""

    runs: List[GauntletResult]

    @property
    def all_ok(self) -> bool:
        """True when every seed passed every invariant."""
        return all(run.ok for run in self.runs)

    def to_table(self) -> ResultTable:
        table = ResultTable(
            title="Chaos gauntlet: crash/restart + partition + lossy links",
            columns=[
                "seed",
                "blocks",
                "faults",
                "resyncs",
                "resubmitted",
                "retries",
                "reports on-chain once",
                "invariants",
            ],
        )
        for run in self.runs:
            retries = int(run.network.get("initial_retries", 0)) + int(
                run.network.get("detailed_retries", 0)
            )
            table.add_row(
                run.seed,
                run.blocks_mined,
                run.faults_applied,
                run.network.get("resyncs_performed", 0),
                run.network.get("records_resubmitted", 0),
                retries,
                f"{run.confirmed_reports}"
                + ("" if not (run.missing_reports or run.duplicate_reports)
                   else f" ({len(run.missing_reports)} missing,"
                        f" {len(run.duplicate_reports)} dup)"),
                "all hold" if run.ok else "VIOLATED",
            )
        table.add_note(
            "0.2 crash prob/epoch, 10% loss (90% burst), duplication,"
            " delay spikes, one timed partition; invariants checked after heal"
        )
        return table


def _gauntlet_trial(args: Tuple[int, float, float, bool]):
    """One seeded gauntlet run (module-level so it can cross processes).

    With ``instrumented`` set, the trial records into its own local
    :class:`~repro.telemetry.Telemetry` and returns ``(result,
    snapshot_payload)`` so the parent can merge the worker's metrics
    and trace back into the run report.
    """
    seed, chaos_duration, settle_time, instrumented = args
    config = GauntletConfig(
        seed=seed,
        chaos_duration=chaos_duration,
        settle_time=settle_time,
    )
    if not instrumented:
        return run_gauntlet(config)
    telemetry = Telemetry()
    result = run_gauntlet(config, telemetry=telemetry)
    return result, telemetry.snapshot_payload()


def run_chaos_gauntlet(
    seeds: Tuple[int, ...] = (0, 1, 2),
    chaos_duration: float = 1800.0,
    settle_time: float = 900.0,
    jobs: Optional[int] = None,
    telemetry: Optional[Telemetry] = None,
) -> ChaosGauntletResult:
    """The ≥3-seed acceptance sweep at the paper-scale configuration.

    Each seed is an independent deterministic run, so ``jobs`` fans the
    sweep out one-gauntlet-per-process; results are merged in seed
    order and are identical to the serial sweep.

    An enabled ``telemetry`` composes with ``jobs``: each trial records
    into a worker-local telemetry whose snapshot is merged back in seed
    order, so the combined metrics and trace are identical to a serial
    instrumented sweep.
    """
    instrumented = telemetry is not None and telemetry.enabled
    outcomes = run_trials(
        _gauntlet_trial,
        [(seed, chaos_duration, settle_time, instrumented) for seed in seeds],
        jobs=jobs,
    )
    if not instrumented:
        return ChaosGauntletResult(runs=outcomes)
    runs = []
    for result, payload in outcomes:
        telemetry.merge_payload(payload)
        runs.append(result)
    return ChaosGauntletResult(runs=runs)


def main() -> None:
    """CLI entry point."""
    run_chaos_gauntlet().to_table().print()


if __name__ == "__main__":
    main()
