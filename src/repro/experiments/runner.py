"""Parallel experiment runner: deterministic trial fan-out over processes.

Experiment sweeps (Fig. 5(b) mining trials, the two-phase ablation
race, the chaos gauntlet seeds) are embarrassingly parallel: each trial
is a pure function of its own seed.  :func:`run_trials` maps a worker
over the trial inputs with a :class:`~concurrent.futures.ProcessPoolExecutor`
and merges results **in input order**, so the parallel output is
bit-identical to the serial loop — parallelism changes wall-clock time,
never results.

Determinism contract:

* the worker must be a module-level (picklable) function that depends
  only on its input — each trial carries its own derived seed
  (:func:`derive_seeds`) instead of sharing a mutable RNG;
* results are collected with ``Executor.map``, which preserves input
  order regardless of completion order.

``jobs=None`` (or ``1``) runs the plain serial loop in-process, which
is also the fallback when worker processes cannot be spawned.
"""

from __future__ import annotations

import os
import random
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, List, Optional, TypeVar

__all__ = ["default_jobs", "derive_seeds", "run_trials"]

T = TypeVar("T")
R = TypeVar("R")


def default_jobs() -> int:
    """A sensible worker count for ``--jobs 0``: one per CPU core."""
    return max(1, os.cpu_count() or 1)


def derive_seeds(master_seed: int, count: int) -> List[int]:
    """Derive ``count`` independent per-trial seeds from one master seed.

    Uses the same draw (``Random(master).randrange(2**31)`` per trial)
    the serial experiments already used, so seeding a sweep with the
    same master seed yields the same trial seeds whether the trials run
    serially or fanned out.
    """
    rng = random.Random(master_seed)
    return [rng.randrange(2**31) for _ in range(count)]


def run_trials(
    worker: Callable[[T], R],
    inputs: Iterable[T],
    jobs: Optional[int] = None,
    chunksize: int = 1,
) -> List[R]:
    """Run ``worker`` over ``inputs``, optionally across processes.

    Returns results in input order.  ``jobs=None`` or ``jobs<=1`` runs
    serially in-process; ``jobs=0`` means one worker per core.  A
    worker exception propagates either way, exactly as the serial loop
    would raise it.
    """
    items = list(inputs)
    if jobs == 0:
        jobs = default_jobs()
    if jobs is None or jobs <= 1 or len(items) <= 1:
        return [worker(item) for item in items]
    try:
        with ProcessPoolExecutor(max_workers=min(jobs, len(items))) as pool:
            return list(pool.map(worker, items, chunksize=max(1, chunksize)))
    except (OSError, BrokenProcessPool):
        # No subprocesses available (restricted sandbox) — same results,
        # just serial.
        return [worker(item) for item in items]
