"""Parallel experiment runner: deterministic trial fan-out over processes.

Experiment sweeps (mining trials, fork-rate ratio points, per-release
platform runs, the chaos gauntlet seeds) are embarrassingly parallel:
each trial is a pure function of its own input.  :func:`run_trials`
maps a worker over the trial inputs with a
:class:`~concurrent.futures.ProcessPoolExecutor` and merges results
**in input order**, so the parallel output is bit-identical to the
serial loop — parallelism changes wall-clock time, never results.

Determinism contract:

* the worker must be a module-level (picklable) function that depends
  only on its input — each trial carries its own derived seed
  (:func:`derive_seeds`) instead of sharing a mutable RNG;
* results are collected with ``Executor.map``, which preserves input
  order regardless of completion order.

``jobs=None`` (or ``1``) runs the plain serial loop in-process.  When
worker *processes* cannot be spawned at all (restricted sandbox), the
runner falls back to the serial loop; an exception raised *by a
worker* is never confused with that case — it propagates with its
original type, exactly as the serial loop would raise it.

Checkpoint/resume
-----------------

Long sweeps can journal completed trials to a JSONL file via
:class:`SweepCheckpoint`: one line per trial, keyed by
``(experiment, master_seed, trial_index, input_digest)``.  A re-run
with the same checkpoint skips every journaled trial whose key still
matches and recomputes only the rest, so an interrupted multi-minute
sweep resumes from where it died.  Journaled results round-trip
through JSON, so checkpointable workers must return JSON-native
values (numbers, strings, lists, string-keyed dicts) — every worker
in :mod:`repro.experiments` does.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    TypeVar,
    Union,
)

__all__ = [
    "SweepCheckpoint",
    "default_jobs",
    "derive_seeds",
    "input_digest",
    "run_trials",
    "sweep_checkpoint",
]

T = TypeVar("T")
R = TypeVar("R")


def default_jobs() -> int:
    """A sensible worker count for ``--jobs 0``: one per CPU core."""
    return max(1, os.cpu_count() or 1)


def derive_seeds(master_seed: int, count: int) -> List[int]:
    """Derive ``count`` independent per-trial seeds from one master seed.

    Uses the same draw (``Random(master).randrange(2**31)`` per trial)
    the serial experiments already used, so seeding a sweep with the
    same master seed yields the same trial seeds whether the trials run
    serially or fanned out.
    """
    rng = random.Random(master_seed)
    return [rng.randrange(2**31) for _ in range(count)]


def input_digest(item: Any) -> str:
    """A stable short digest of one trial input.

    Trial inputs are tuples of primitives (seeds, sizes, names), so a
    canonical-JSON serialization keyed by value is stable across runs
    and processes.  Non-JSON leaves fall back to ``repr``.
    """
    canonical = json.dumps(item, sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


class SweepCheckpoint:
    """A JSONL journal of completed trial results for one sweep.

    Each line is ``{"experiment", "master_seed", "trial_index",
    "input_digest", "result"}``.  :meth:`load` returns the journaled
    results for *this* sweep (same experiment tag and master seed);
    entries whose input digest no longer matches the sweep's inputs are
    ignored, so editing a sweep's parameters invalidates stale results
    instead of resuming them.  Several sweeps may share one file — the
    experiment tag keeps their lines apart.
    """

    def __init__(self, path: str, experiment: str, master_seed: int) -> None:
        self.path = path
        self.experiment = experiment
        self.master_seed = master_seed

    def load(self) -> Dict[Tuple[int, str], Any]:
        """Journaled ``(trial_index, input_digest) -> result`` entries."""
        completed: Dict[Tuple[int, str], Any] = {}
        if not os.path.exists(self.path):
            return completed
        with open(self.path, "r", encoding="utf-8") as handle:
            for raw in handle:
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    row = json.loads(raw)
                except json.JSONDecodeError:
                    continue  # a line truncated by the interruption itself
                if (
                    row.get("experiment") != self.experiment
                    or row.get("master_seed") != self.master_seed
                ):
                    continue
                key = (row.get("trial_index"), row.get("input_digest"))
                completed[key] = row.get("result")
        return completed

    def record(self, trial_index: int, digest: str, result: Any) -> Any:
        """Append one completed trial; returns the JSON-normalized result.

        The caller keeps the *normalized* value so a resumed sweep (which
        reads results back out of the journal) is bit-identical to an
        uninterrupted one.
        """
        normalized = json.loads(json.dumps(result))
        row = {
            "experiment": self.experiment,
            "master_seed": self.master_seed,
            "trial_index": trial_index,
            "input_digest": digest,
            "result": normalized,
        }
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(row, sort_keys=True) + "\n")
        return normalized


def sweep_checkpoint(
    path: Optional[Union[str, "SweepCheckpoint"]],
    experiment: str,
    master_seed: int,
) -> Optional[SweepCheckpoint]:
    """Build a :class:`SweepCheckpoint` from an experiment's kwarg.

    Experiments accept ``checkpoint`` as a plain path (the common CLI
    case) or an already-built :class:`SweepCheckpoint`; ``None`` means
    no journaling.
    """
    if path is None:
        return None
    if isinstance(path, SweepCheckpoint):
        return path
    return SweepCheckpoint(path, experiment=experiment, master_seed=master_seed)


def _iter_trials(
    worker: Callable[[T], R],
    items: List[T],
    jobs: Optional[int],
    chunksize: int,
) -> Iterator[R]:
    """Yield ``worker(item)`` results in input order, fanning out if asked.

    The serial fallback is reserved for *pool* failures — the executor
    cannot be constructed or its worker processes cannot be spawned
    (restricted sandbox), or the pool itself dies mid-sweep.  An
    exception raised by the worker function propagates with its
    original type: it surfaces while iterating ``Executor.map`` results
    below, never from pool construction, so it is not caught here.
    """
    if jobs is None or jobs <= 1 or len(items) <= 1:
        for item in items:
            yield worker(item)
        return
    try:
        pool = ProcessPoolExecutor(max_workers=min(jobs, len(items)))
    except OSError:
        # The executor itself could not be built — same results, just
        # serial.
        for item in items:
            yield worker(item)
        return
    try:
        # ``Executor.map`` submits every task eagerly, so an OSError
        # here is a spawn failure — a worker's own OSError would only
        # surface when the result iterator is consumed.
        iterator = pool.map(worker, items, chunksize=max(1, chunksize))
    except (OSError, BrokenProcessPool):
        # No subprocesses available (restricted sandbox) — same
        # results, just serial.
        pool.shutdown(wait=False)
        for item in items:
            yield worker(item)
        return
    with pool:
        yielded = 0
        results = iter(iterator)
        while True:
            try:
                result = next(results)
            except StopIteration:
                return
            except BrokenProcessPool:
                # The pool's processes died under us (OOM kill, sandbox
                # reaping) — distinct from a worker exception, which
                # arrives with its original type and propagates.  Finish
                # the not-yet-delivered trials serially; trials already
                # yielded are never re-run.
                for item in items[yielded:]:
                    yield worker(item)
                return
            yield result
            yielded += 1


def run_trials(
    worker: Callable[[T], R],
    inputs: Iterable[T],
    jobs: Optional[int] = None,
    chunksize: int = 1,
    checkpoint: Optional[SweepCheckpoint] = None,
) -> List[R]:
    """Run ``worker`` over ``inputs``, optionally across processes.

    Returns results in input order.  ``jobs=None`` or ``jobs<=1`` runs
    serially in-process; ``jobs=0`` means one worker per core.  A
    worker exception propagates either way, exactly as the serial loop
    would raise it; only a failure to *spawn* worker processes falls
    back to the serial loop.

    ``checkpoint`` journals each completed trial to a JSONL file and
    skips trials already journaled under the same key — see
    :class:`SweepCheckpoint`.  Checkpointed results are JSON-normalized
    (lists for tuples), so workers used with checkpoints must return
    JSON-native values.
    """
    items = list(inputs)
    if jobs == 0:
        jobs = default_jobs()
    if checkpoint is None:
        return list(_iter_trials(worker, items, jobs, chunksize))

    digests = [input_digest(item) for item in items]
    completed = checkpoint.load()
    results: List[Any] = [None] * len(items)
    pending: List[int] = []
    for index, digest in enumerate(digests):
        if (index, digest) in completed:
            results[index] = completed[(index, digest)]
        else:
            pending.append(index)
    if pending:
        fresh = _iter_trials(
            worker, [items[index] for index in pending], jobs, chunksize
        )
        # Journal in delivery order: if the sweep dies here, everything
        # already yielded has been recorded and the re-run resumes.
        for index, result in zip(pending, fresh):
            results[index] = checkpoint.record(index, digests[index], result)
    return results
