"""Run every experiment: ``python -m repro.experiments [--jobs N]``.

Regenerates all paper tables/figures plus the reproduction's own
analyses (ablations, capability curves), printing each in order.
``--jobs`` fans the trial-sweep experiments (Fig. 5(b), the two-phase
ablation, the chaos gauntlet) out over worker processes; results are
bit-identical to the serial run — only wall-clock time changes.

``--telemetry PATH`` arms a :class:`~repro.telemetry.Telemetry` for the
telemetry-aware experiments and exports the combined metrics + trace
to ``PATH`` as JSONL; ``--report PATH`` summarizes a previously
exported JSONL file and exits without running anything.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional

from repro.telemetry import Telemetry, summarize_run

from repro.experiments import (
    run_costs,
    run_fig3a,
    run_fig3b,
    run_fig4a,
    run_fig4b,
    run_fig5a,
    run_fig5b,
    run_fig6,
    run_table1,
)
from repro.experiments.ablations import (
    ablate_escrow,
    ablate_report_fee,
    ablate_two_phase,
)
from repro.experiments.capability_curve import (
    run_capability_curve,
    run_fleet_composition,
)
from repro.experiments.chaos import run_chaos_gauntlet
from repro.experiments.forks import run_fork_rate
from repro.experiments.latency import run_payout_latency

#: (label, runner, accepts a ``jobs`` keyword).  Runners whose sweeps
#: are embarrassingly parallel take ``jobs`` and fan out via
#: :mod:`repro.experiments.runner`.
RUNNERS = [
    ("Table I", run_table1, False),
    ("Fig. 3(a)", run_fig3a, False),
    ("Fig. 3(b)", run_fig3b, False),
    ("Fig. 4(a)", run_fig4a, False),
    ("Fig. 4(b)", run_fig4b, False),
    ("Fig. 5(a)", run_fig5a, False),
    ("Fig. 5(b)", run_fig5b, True),
    ("Fig. 6", run_fig6, False),
    ("§VII costs", run_costs, False),
    ("Ablation: two-phase", ablate_two_phase, True),
    ("Ablation: escrow", ablate_escrow, False),
    ("Ablation: report fee", ablate_report_fee, False),
    ("Eq. 11 capability curve", run_capability_curve, False),
    ("§VIII fleet composition", run_fleet_composition, False),
    ("Payout latency", run_payout_latency, False),
    ("Fork rate", run_fork_rate, False),
    ("Chaos gauntlet", run_chaos_gauntlet, True),
]

#: Runners that accept a ``telemetry`` keyword (instrumented end to
#: end); the rest run uninstrumented even under ``--telemetry``.
TELEMETRY_AWARE = {"Fig. 5(b)", "Chaos gauntlet"}


def build_parser() -> argparse.ArgumentParser:
    """The experiment-suite CLI."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="regenerate every paper table/figure and reproduction analysis",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="fan trial sweeps out over N worker processes "
        "(0 = one per core; default: serial; results are identical either way)",
    )
    parser.add_argument(
        "--telemetry",
        metavar="PATH",
        default=None,
        help="record metrics + trace events for the telemetry-aware "
        "experiments and export them to PATH as JSONL",
    )
    parser.add_argument(
        "--report",
        metavar="PATH",
        default=None,
        help="summarize a previously exported telemetry JSONL file and exit",
    )
    return parser


def main(argv: Optional[list] = None) -> int:
    """Run all experiments; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.report is not None:
        print(summarize_run(args.report))
        return 0
    telemetry = Telemetry() if args.telemetry is not None else None
    started = time.time()
    for label, runner, parallel in RUNNERS:
        print(f"--- {label} " + "-" * max(0, 60 - len(label)))
        kwargs = {}
        if parallel:
            kwargs["jobs"] = args.jobs
        if telemetry is not None and label in TELEMETRY_AWARE:
            kwargs["telemetry"] = telemetry
        result = runner(**kwargs)
        result.to_table().print()
    if telemetry is not None:
        lines = telemetry.export_jsonl(args.telemetry)
        print(f"telemetry: {lines} JSONL lines -> {args.telemetry}")
    print(f"all experiments completed in {time.time() - started:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
