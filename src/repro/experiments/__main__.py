"""Run every experiment: ``python -m repro.experiments``.

Regenerates all paper tables/figures plus the reproduction's own
analyses (ablations, capability curves), printing each in order.
"""

from __future__ import annotations

import sys
import time

from repro.experiments import (
    run_costs,
    run_fig3a,
    run_fig3b,
    run_fig4a,
    run_fig4b,
    run_fig5a,
    run_fig5b,
    run_fig6,
    run_table1,
)
from repro.experiments.ablations import (
    ablate_escrow,
    ablate_report_fee,
    ablate_two_phase,
)
from repro.experiments.capability_curve import (
    run_capability_curve,
    run_fleet_composition,
)
from repro.experiments.chaos import run_chaos_gauntlet
from repro.experiments.forks import run_fork_rate
from repro.experiments.latency import run_payout_latency

RUNNERS = [
    ("Table I", run_table1),
    ("Fig. 3(a)", run_fig3a),
    ("Fig. 3(b)", run_fig3b),
    ("Fig. 4(a)", run_fig4a),
    ("Fig. 4(b)", run_fig4b),
    ("Fig. 5(a)", run_fig5a),
    ("Fig. 5(b)", run_fig5b),
    ("Fig. 6", run_fig6),
    ("§VII costs", run_costs),
    ("Ablation: two-phase", ablate_two_phase),
    ("Ablation: escrow", ablate_escrow),
    ("Ablation: report fee", ablate_report_fee),
    ("Eq. 11 capability curve", run_capability_curve),
    ("§VIII fleet composition", run_fleet_composition),
    ("Payout latency", run_payout_latency),
    ("Fork rate", run_fork_rate),
    ("Chaos gauntlet", run_chaos_gauntlet),
]


def main() -> int:
    """Run all experiments; returns a process exit code."""
    started = time.time()
    for label, runner in RUNNERS:
        print(f"--- {label} " + "-" * max(0, 60 - len(label)))
        result = runner()
        result.to_table().print()
    print(f"all experiments completed in {time.time() - started:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
