"""Run every experiment: ``python -m repro.experiments [--jobs N]``.

Regenerates all paper tables/figures plus the reproduction's own
analyses (ablations, capability curves), printing each in order.
``--jobs`` fans the trial-sweep experiments (Fig. 5(b), the two-phase
ablation, the chaos gauntlet) out over worker processes; results are
bit-identical to the serial run — only wall-clock time changes.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional

from repro.experiments import (
    run_costs,
    run_fig3a,
    run_fig3b,
    run_fig4a,
    run_fig4b,
    run_fig5a,
    run_fig5b,
    run_fig6,
    run_table1,
)
from repro.experiments.ablations import (
    ablate_escrow,
    ablate_report_fee,
    ablate_two_phase,
)
from repro.experiments.capability_curve import (
    run_capability_curve,
    run_fleet_composition,
)
from repro.experiments.chaos import run_chaos_gauntlet
from repro.experiments.forks import run_fork_rate
from repro.experiments.latency import run_payout_latency

#: (label, runner, accepts a ``jobs`` keyword).  Runners whose sweeps
#: are embarrassingly parallel take ``jobs`` and fan out via
#: :mod:`repro.experiments.runner`.
RUNNERS = [
    ("Table I", run_table1, False),
    ("Fig. 3(a)", run_fig3a, False),
    ("Fig. 3(b)", run_fig3b, False),
    ("Fig. 4(a)", run_fig4a, False),
    ("Fig. 4(b)", run_fig4b, False),
    ("Fig. 5(a)", run_fig5a, False),
    ("Fig. 5(b)", run_fig5b, True),
    ("Fig. 6", run_fig6, False),
    ("§VII costs", run_costs, False),
    ("Ablation: two-phase", ablate_two_phase, True),
    ("Ablation: escrow", ablate_escrow, False),
    ("Ablation: report fee", ablate_report_fee, False),
    ("Eq. 11 capability curve", run_capability_curve, False),
    ("§VIII fleet composition", run_fleet_composition, False),
    ("Payout latency", run_payout_latency, False),
    ("Fork rate", run_fork_rate, False),
    ("Chaos gauntlet", run_chaos_gauntlet, True),
]


def build_parser() -> argparse.ArgumentParser:
    """The experiment-suite CLI."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="regenerate every paper table/figure and reproduction analysis",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="fan trial sweeps out over N worker processes "
        "(0 = one per core; default: serial; results are identical either way)",
    )
    return parser


def main(argv: Optional[list] = None) -> int:
    """Run all experiments; returns a process exit code."""
    args = build_parser().parse_args(argv)
    started = time.time()
    for label, runner, parallel in RUNNERS:
        print(f"--- {label} " + "-" * max(0, 60 - len(label)))
        result = runner(jobs=args.jobs) if parallel else runner()
        result.to_table().print()
    print(f"all experiments completed in {time.time() - started:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
