"""Run every experiment: ``python -m repro.experiments [--jobs N]``.

Regenerates all paper tables/figures plus the reproduction's own
analyses (ablations, capability curves), printing each in order.
``--jobs`` fans every trial-shaped experiment out over worker
processes via :mod:`repro.experiments.runner`; results are
bit-identical to the serial run — only wall-clock time changes.

``--checkpoint PATH`` journals every completed trial to a JSONL file
keyed by ``(experiment, master_seed, trial_index, input_digest)``;
rerunning with ``--checkpoint PATH --resume`` skips trials already in
the journal, so an interrupted suite picks up where it stopped and
finishes with results identical to an uninterrupted run.  Without
``--resume`` the journal is truncated first (a fresh sweep).

``--telemetry PATH`` arms a :class:`~repro.telemetry.Telemetry` for the
telemetry-aware experiments and exports the combined metrics + trace
to ``PATH`` as JSONL; ``--report PATH`` summarizes a previously
exported JSONL file and exits without running anything.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional

from repro.telemetry import Telemetry, summarize_run

from repro.experiments import (
    run_costs,
    run_fig3a,
    run_fig3b,
    run_fig4a,
    run_fig4b,
    run_fig5a,
    run_fig5b,
    run_fig6,
    run_table1,
)
from repro.experiments.ablations import (
    ablate_escrow,
    ablate_report_fee,
    ablate_two_phase,
)
from repro.experiments.capability_curve import (
    run_capability_curve,
    run_fleet_composition,
)
from repro.experiments.chaos import run_chaos_gauntlet
from repro.experiments.fleet_scale import run_fleet_scale
from repro.experiments.forks import run_fork_rate
from repro.experiments.latency import run_payout_latency

def _run_fleet_scale_suite(jobs=None, checkpoint=None, telemetry=None):
    """Fleet sweep at suite-friendly sizes (the bench lane runs 1000)."""
    return run_fleet_scale(
        node_counts=(50, 200),
        blocks=6,
        jobs=jobs,
        checkpoint=checkpoint,
        telemetry=telemetry,
    )


#: (label, runner, supported keywords).  Every trial-shaped experiment
#: goes through :func:`repro.experiments.runner.run_trials`, so it takes
#: ``jobs`` (uniform fan-out) and ``checkpoint`` (sweep journaling);
#: the closed-form analyses take neither.
RUNNERS = [
    ("Table I", run_table1, {"jobs", "checkpoint"}),
    ("Fig. 3(a)", run_fig3a, {"jobs", "checkpoint"}),
    ("Fig. 3(b)", run_fig3b, {"jobs", "checkpoint"}),
    ("Fig. 4(a)", run_fig4a, {"jobs", "checkpoint"}),
    ("Fig. 4(b)", run_fig4b, {"jobs", "checkpoint"}),
    ("Fig. 5(a)", run_fig5a, set()),
    ("Fig. 5(b)", run_fig5b, {"jobs", "checkpoint", "telemetry"}),
    ("Fig. 6", run_fig6, {"jobs", "checkpoint"}),
    ("§VII costs", run_costs, {"jobs", "checkpoint"}),
    ("Ablation: two-phase", ablate_two_phase, {"jobs", "checkpoint"}),
    ("Ablation: escrow", ablate_escrow, set()),
    ("Ablation: report fee", ablate_report_fee, set()),
    ("Eq. 11 capability curve", run_capability_curve, {"jobs", "checkpoint"}),
    ("§VIII fleet composition", run_fleet_composition, set()),
    ("Payout latency", run_payout_latency, {"jobs", "checkpoint"}),
    ("Fork rate", run_fork_rate, {"jobs", "checkpoint"}),
    # Modest sizes for the full-suite run; the bench lane covers 1000.
    ("Fleet scale-out", _run_fleet_scale_suite, {"jobs", "checkpoint", "telemetry"}),
    ("Chaos gauntlet", run_chaos_gauntlet, {"jobs", "telemetry"}),
]


def build_parser() -> argparse.ArgumentParser:
    """The experiment-suite CLI."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="regenerate every paper table/figure and reproduction analysis",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="fan trial sweeps out over N worker processes "
        "(0 = one per core; default: serial; results are identical either way)",
    )
    parser.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help="journal completed trials to PATH (JSONL); combine with "
        "--resume to skip trials already journaled there",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="keep the existing --checkpoint journal and skip completed "
        "trials (default: truncate it and start fresh)",
    )
    parser.add_argument(
        "--telemetry",
        metavar="PATH",
        default=None,
        help="record metrics + trace events for the telemetry-aware "
        "experiments and export them to PATH as JSONL",
    )
    parser.add_argument(
        "--report",
        metavar="PATH",
        default=None,
        help="summarize a previously exported telemetry JSONL file and exit",
    )
    return parser


def main(argv: Optional[list] = None) -> int:
    """Run all experiments; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.report is not None:
        print(summarize_run(args.report))
        return 0
    if args.resume and args.checkpoint is None:
        print("--resume requires --checkpoint PATH", file=sys.stderr)
        return 2
    if args.checkpoint is not None and not args.resume:
        # A fresh sweep: drop any stale journal so old trials can't be
        # replayed into a run they no longer belong to.
        open(args.checkpoint, "w").close()
    telemetry = Telemetry() if args.telemetry is not None else None
    started = time.time()
    for label, runner, supported in RUNNERS:
        print(f"--- {label} " + "-" * max(0, 60 - len(label)))
        kwargs = {}
        if "jobs" in supported:
            kwargs["jobs"] = args.jobs
        if "checkpoint" in supported and args.checkpoint is not None:
            kwargs["checkpoint"] = args.checkpoint
        if telemetry is not None and "telemetry" in supported:
            kwargs["telemetry"] = telemetry
        result = runner(**kwargs)
        result.to_table().print()
    if telemetry is not None:
        lines = telemetry.export_jsonl(args.telemetry)
        print(f"telemetry: {lines} JSONL lines -> {args.telemetry}")
    print(f"all experiments completed in {time.time() - started:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
