"""§VII cost measurements: SRA deployment and report submission gas.

The paper measures ≈0.095 ether of gas per SRA contract deployment and
≈0.011 ether per detection report (Fig. 6(b)).  This experiment runs
real deployments and submissions through the contract runtime and
reads the costs off the receipts and fee transfers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.contracts.gas import PAPER_REPORT_COST_WEI, PAPER_SRA_COST_WEI
from repro.detection.corpus import ReleaseCorpus, ReleaseCorpusConfig
from repro.experiments.harness import Comparison, ResultTable
from repro.units import from_wei
from repro.workloads.scenarios import paper_setup

__all__ = ["CostResult", "run_costs"]


@dataclass
class CostResult:
    """Measured gas costs against the paper's numbers."""

    sra_cost_ether: float
    report_cost_ether: float

    def comparisons(self) -> Dict[str, Comparison]:
        return {
            "sra": Comparison(
                metric="SRA deployment gas",
                paper=from_wei(PAPER_SRA_COST_WEI),
                measured=self.sra_cost_ether,
                unit="ETH",
            ),
            "report": Comparison(
                metric="per-report gas",
                paper=from_wei(PAPER_REPORT_COST_WEI),
                measured=self.report_cost_ether,
                unit="ETH",
            ),
        }

    def to_table(self) -> ResultTable:
        table = ResultTable(
            title="§VII costs — gas per operation",
            columns=["Operation", "Paper (ETH)", "Measured (ETH)"],
        )
        for comparison in self.comparisons().values():
            table.add_row(comparison.metric, comparison.paper, round(comparison.measured, 4))
        return table


def run_costs(releases: int = 3, seed: int = 9) -> CostResult:
    """Deploy real SRAs with vulnerable releases, read costs off receipts."""
    setup = paper_setup(seed=seed)
    platform = setup.build_platform()
    corpus = ReleaseCorpus(
        ReleaseCorpusConfig(
            vulnerability_proportion=1.0,
            mean_vulnerabilities=3.0,
            release_period=setup.config.detection_window,
        ),
        seed=seed,
    )
    provider = "provider-1"
    start_balance = platform.provider_balance(provider)
    window = setup.config.detection_window
    for index in range(releases):
        platform.announce_release(provider, corpus.next_release(), at_time=index * window)
    platform.run_until(releases * window + 300.0)
    platform.finish_pending()

    # SRA cost: the deployment-gas share of the provider's punishment tally.
    insurance = from_wei(setup.config.params.insurance_wei)
    vulnerable = sum(
        1 for case in platform.releases.values() if case.refunded_wei == 0 and case.closed
    )
    total_punishment = from_wei(platform.punishments_wei[provider])
    sra_cost = (total_punishment - vulnerable * insurance) / releases

    # Report cost: total fees paid by detectors / reports submitted.
    total_fees = sum(
        from_wei(stats.fees_paid_wei) for stats in platform.detector_stats.values()
    )
    total_reports = sum(
        stats.initial_reports_submitted for stats in platform.detector_stats.values()
    )
    report_cost = total_fees / total_reports if total_reports else 0.0
    return CostResult(sra_cost_ether=sra_cost, report_cost_ether=report_cost)


def main() -> None:
    """CLI entry point."""
    run_costs().to_table().print()


if __name__ == "__main__":
    main()
