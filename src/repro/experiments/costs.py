"""§VII cost measurements: SRA deployment and report submission gas.

The paper measures ≈0.095 ether of gas per SRA contract deployment and
≈0.011 ether per detection report (Fig. 6(b)).  This experiment runs
real deployments and submissions through the contract runtime and
reads the costs off the receipts and fee transfers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

from repro.contracts.gas import PAPER_REPORT_COST_WEI, PAPER_SRA_COST_WEI
from repro.detection.corpus import ReleaseCorpus, ReleaseCorpusConfig
from repro.experiments.harness import Comparison, ResultTable
from repro.experiments.runner import (
    SweepCheckpoint,
    derive_seeds,
    run_trials,
    sweep_checkpoint,
)
from repro.units import from_wei
from repro.workloads.scenarios import paper_setup

__all__ = ["CostResult", "run_costs"]


@dataclass
class CostResult:
    """Measured gas costs against the paper's numbers."""

    sra_cost_ether: float
    report_cost_ether: float

    def comparisons(self) -> Dict[str, Comparison]:
        return {
            "sra": Comparison(
                metric="SRA deployment gas",
                paper=from_wei(PAPER_SRA_COST_WEI),
                measured=self.sra_cost_ether,
                unit="ETH",
            ),
            "report": Comparison(
                metric="per-report gas",
                paper=from_wei(PAPER_REPORT_COST_WEI),
                measured=self.report_cost_ether,
                unit="ETH",
            ),
        }

    def to_table(self) -> ResultTable:
        table = ResultTable(
            title="§VII costs — gas per operation",
            columns=["Operation", "Paper (ETH)", "Measured (ETH)"],
        )
        for comparison in self.comparisons().values():
            table.add_row(comparison.metric, comparison.paper, round(comparison.measured, 4))
        return table


def _costs_release_trial(args: Tuple[int, int]) -> Dict[str, int]:
    """One vulnerable release on a fresh seed-pure platform.

    Returns JSON-native wei/report tallies that sum across releases.
    """
    trial_seed, index = args
    setup = paper_setup(seed=trial_seed)
    platform = setup.build_platform()
    corpus = ReleaseCorpus(
        ReleaseCorpusConfig(
            vulnerability_proportion=1.0,
            mean_vulnerabilities=3.0,
            release_period=setup.config.detection_window,
        ),
        seed=trial_seed,
    )
    provider = "provider-1"
    window = setup.config.detection_window
    platform.announce_release(provider, corpus.next_release(), at_time=0.0)
    platform.advance_until(window + 300.0)
    platform.finish_pending()
    vulnerable = sum(
        1 for case in platform.releases.values() if case.refunded_wei == 0 and case.closed
    )
    return {
        "punishment_wei": int(platform.punishments_wei[provider]),
        "vulnerable": int(vulnerable),
        "fees_wei": int(
            sum(stats.fees_paid_wei for stats in platform.detector_stats.values())
        ),
        "reports": int(
            sum(
                stats.initial_reports_submitted
                for stats in platform.detector_stats.values()
            )
        ),
    }


def run_costs(
    releases: int = 3,
    seed: int = 9,
    jobs: Optional[int] = None,
    checkpoint: Optional[Union[str, SweepCheckpoint]] = None,
) -> CostResult:
    """Deploy real SRAs with vulnerable releases, read costs off receipts.

    Each release deploys on its own seed-pure platform
    (:func:`derive_seeds`); wei tallies sum in release order, so any
    ``jobs`` fan-out matches the serial loop and ``checkpoint`` journals
    finished releases for resume.
    """
    trial_seeds = derive_seeds(seed, releases)
    outcomes = run_trials(
        _costs_release_trial,
        [(trial_seed, index) for index, trial_seed in enumerate(trial_seeds)],
        jobs=jobs,
        checkpoint=sweep_checkpoint(checkpoint, "costs", seed),
    )
    punishment_wei = sum(outcome["punishment_wei"] for outcome in outcomes)
    vulnerable = sum(outcome["vulnerable"] for outcome in outcomes)
    fees_wei = sum(outcome["fees_wei"] for outcome in outcomes)
    reports = sum(outcome["reports"] for outcome in outcomes)

    # SRA cost: the deployment-gas share of the provider's punishment tally.
    insurance = from_wei(paper_setup(seed=seed).config.params.insurance_wei)
    total_punishment = from_wei(punishment_wei)
    sra_cost = (total_punishment - vulnerable * insurance) / releases

    # Report cost: total fees paid by detectors / reports submitted.
    report_cost = from_wei(fees_wei) / reports if reports else 0.0
    return CostResult(sra_cost_ether=sra_cost, report_cost_ether=report_cost)


def main() -> None:
    """CLI entry point."""
    run_costs().to_table().print()


if __name__ == "__main__":
    main()
