"""Shared experiment harness: result tables and comparison rows.

Every experiment runner returns structured results *and* can render a
paper-style table via :class:`ResultTable`, with the paper's reported
value alongside the measured one so EXPERIMENTS.md rows are generated,
not transcribed.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["ResultTable", "Comparison", "summarize"]


@dataclass
class ResultTable:
    """A printable experiment table."""

    title: str
    columns: Sequence[str]
    rows: List[Sequence[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        """Append a row (must match the column count)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values, table has {len(self.columns)} columns"
            )
        self.rows.append(values)

    def add_note(self, note: str) -> None:
        """Attach a footnote."""
        self.notes.append(note)

    def render(self) -> str:
        """Format as an aligned text table."""

        def _fmt(value: Any) -> str:
            if isinstance(value, float):
                return f"{value:.4g}"
            return str(value)

        header = [str(column) for column in self.columns]
        body = [[_fmt(value) for value in row] for row in self.rows]
        widths = [
            max(len(header[i]), *(len(row[i]) for row in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [self.title, "=" * len(self.title)]
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"* {note}")
        return "\n".join(lines)

    def print(self) -> None:
        """Print the rendered table."""
        print(self.render())
        print()


@dataclass(frozen=True)
class Comparison:
    """One paper-vs-measured data point."""

    metric: str
    paper: Optional[float]
    measured: float
    unit: str = ""

    @property
    def ratio(self) -> Optional[float]:
        """measured / paper (None when the paper value is unknown/zero)."""
        if self.paper in (None, 0):
            return None
        return self.measured / self.paper


def summarize(samples: Sequence[float]) -> Dict[str, float]:
    """Mean/median/stdev/min/max of a sample set."""
    data = list(samples)
    return {
        "mean": statistics.fmean(data),
        "median": statistics.median(data),
        "stdev": statistics.stdev(data) if len(data) > 1 else 0.0,
        "min": min(data),
        "max": max(data),
    }
