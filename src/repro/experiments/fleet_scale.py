"""Large-fleet gossip scale-out: inv-pull relay vs full flooding.

The paper's prototype runs five providers on a LAN, where flooding the
full payload to every peer is free.  SmartCrowd's pitch, though, is a
*crowd* — "the more participants, the merrier" — so this experiment
measures what the overlay costs as the fleet grows to 1000 nodes:

* ``inv`` mode (:meth:`~repro.network.config.NetworkConfig.large_fleet`)
  — ring+random-chord topology, bounded relay fan-out, Bitcoin-shaped
  inventory announce + pull, and header-only participation for the
  light majority of the fleet (§V-B's lightweight detectors);
* ``flood`` mode — the paper's complete-mesh full-payload flooding,
  run over the same fleet composition as the baseline.

Each (mode, node count) point is one seed-pure trial through
:func:`~repro.experiments.runner.run_trials`, so the sweep fans out
over worker processes with bit-identical results and journals to a
checkpoint.  Trials record messages sent, bytes on the wire, simulator
events, frame mix, and the convergence invariants (all full nodes on
one heaviest head; all light clients on the matching header chain);
wall-clock is measured *around* the sweep, never inside a trial, so
results stay identical across ``--jobs``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

from repro.chain.serialization import import_chain
from repro.core.distributed import DistributedChain
from repro.experiments.harness import ResultTable
from repro.experiments.runner import (
    SweepCheckpoint,
    derive_seeds,
    run_trials,
    sweep_checkpoint,
)
from repro.network.config import NetworkConfig
from repro.shard import FleetSpec, ShardedSimulator
from repro.telemetry import Telemetry

__all__ = ["FleetScaleResult", "fleet_split", "run_fleet_scale"]

#: Node counts from the issue's scale-out target: the paper's LAN
#: order of magnitude, a mid-size deployment, and the 1000-node fleet.
DEFAULT_NODE_COUNTS = (50, 200, 1000)

#: The sharded lane's (node count, shard count) points: past ~1000
#: nodes one event loop is the bottleneck, so the 10k/100k points run
#: through :class:`~repro.shard.engine.ShardedSimulator` instead.
#: Empty by default — the bench lane opts in (they dominate wall-clock).
DEFAULT_SHARD_POINTS: Tuple[Tuple[int, int], ...] = ()


def fleet_split(node_count: int) -> Tuple[int, int]:
    """(full, light) node split for a fleet of ``node_count``.

    Small fleets (the paper's regime) are all full nodes; large fleets
    keep a small full-node backbone (2%, floor 10) and let the rest
    participate header-only, per §V-B.
    """
    if node_count <= 25:
        return node_count, 0
    full = max(10, node_count // 50)
    return full, node_count - full


def _fleet_trial(args: Tuple[int, int, str, int, int]) -> Dict[str, float]:
    """One (mode, node count) point: mine, converge, read the meters."""
    trial_seed, node_count, mode, blocks, shards = args
    full_count, light_count = fleet_split(node_count)
    if mode == "flood":
        config = NetworkConfig()  # complete mesh, full-payload flooding
    elif mode in ("inv", "shard"):
        config = NetworkConfig.large_fleet()
    else:
        raise ValueError(f"unknown fleet mode {mode!r}")
    spec = FleetSpec(
        full_nodes=full_count,
        light_nodes=light_count,
        network=config,
        shards=shards if mode == "shard" else 1,
    )
    if mode == "shard":
        # ``jobs=1`` inside the trial: run_trials already fans trials
        # out over processes, and the serial executor is the parity
        # oracle — identical bits at any outer ``jobs``.
        net = ShardedSimulator(spec, seed=trial_seed, jobs=1)
    else:
        net = DistributedChain(spec=spec, seed=trial_seed)
    net.run_blocks(blocks)
    net.finalize()
    # A fork race on the last block can leave two equal-difficulty
    # heads that no amount of resyncing reconciles; mine tie-break
    # rounds until one branch is strictly heaviest (same approach as
    # the fork-rate experiment).
    extra = 0
    while not (net.converged() and net.light_converged()) and extra < 20:
        net.run_blocks(1)
        net.finalize()
        extra += 1
    if mode == "shard":
        summary = net.summary()
        canonical_height = import_chain(net.export_canonical()).height
    else:
        summary = net.network.summary()
        canonical_height = max(
            (replica.chain for replica in net.replicas.values()),
            key=lambda chain: chain.total_difficulty(),
        ).height
    return {
        "nodes": node_count,
        "full_nodes": full_count,
        "light_nodes": light_count,
        "shards": spec.shards,
        "blocks_mined": net.blocks_mined,
        "canonical_height": canonical_height,
        "messages_sent": summary["messages_sent"],
        "bytes_sent": summary["bytes_sent"],
        "events_processed": summary["events_processed"],
        "inv_frames": summary["inv_frames"],
        "getdata_frames": summary["getdata_frames"],
        "payload_frames": summary["payload_frames"],
        "full_converged": bool(net.converged()),
        "light_converged": bool(net.light_converged()),
    }


@dataclass
class FleetScaleResult:
    """Transport cost per (mode, node count) fleet point."""

    #: (mode, node count) -> trial measurement dict.
    points: Dict[Tuple[str, int], Dict[str, float]]
    blocks: int
    #: Wall-clock for the whole sweep, measured around the trial
    #: fan-out (never inside a trial, so ``--jobs`` cannot leak into
    #: the deterministic points above).
    elapsed_seconds: float = field(default=0.0, compare=False)

    def point(self, mode: str, node_count: int) -> Dict[str, float]:
        """One fleet point's measurements."""
        return self.points[(mode, node_count)]

    def flood_to_inv_message_ratio(self, node_count: int) -> float:
        """How many times more messages flooding costs at this size."""
        flood = self.points[("flood", node_count)]["messages_sent"]
        inv = self.points[("inv", node_count)]["messages_sent"]
        return flood / inv if inv else float("inf")

    def all_converged(self) -> bool:
        """Every point reached full + light agreement."""
        return all(
            point["full_converged"] and point["light_converged"]
            for point in self.points.values()
        )

    def to_table(self) -> ResultTable:
        table = ResultTable(
            title="Fleet scale-out: inv-pull relay vs full flooding",
            columns=[
                "mode",
                "nodes (full+light)",
                "messages sent",
                "bytes on wire",
                "sim events",
                "converged",
            ],
        )
        for (mode, node_count), point in sorted(
            self.points.items(), key=lambda entry: (entry[0][1], entry[0][0])
        ):
            table.add_row(
                mode,
                f"{node_count} ({int(point['full_nodes'])}+{int(point['light_nodes'])})",
                int(point["messages_sent"]),
                int(point["bytes_sent"]),
                int(point["events_processed"]),
                "yes" if point["full_converged"] and point["light_converged"] else "NO",
            )
        sizes = sorted(
            {count for mode, count in self.points if ("flood", count) in self.points}
        )
        for count in sizes:
            if ("inv", count) in self.points:
                table.add_note(
                    f"{count} nodes: flooding sends "
                    f"{self.flood_to_inv_message_ratio(count):.1f}x the messages"
                    " of inv-pull at equal convergence"
                )
        table.add_note(
            f"{self.blocks} blocks mined per point;"
            f" sweep wall-clock {self.elapsed_seconds:.1f}s"
        )
        return table


def run_fleet_scale(
    node_counts: Tuple[int, ...] = DEFAULT_NODE_COUNTS,
    blocks: int = 8,
    flood_baseline: bool = True,
    seed: int = 40,
    jobs: Optional[int] = None,
    checkpoint: Optional[Union[str, SweepCheckpoint]] = None,
    telemetry: Optional[Telemetry] = None,
    shard_points: Tuple[Tuple[int, int], ...] = DEFAULT_SHARD_POINTS,
) -> FleetScaleResult:
    """Sweep fleet sizes under inv-pull (and optionally flood) gossip.

    Each point is an independent seed-pure trial, so any ``jobs`` value
    produces identical points and ``checkpoint`` journals completed
    points for resume.  ``flood_baseline=False`` skips the quadratic
    complete-mesh baseline (it dominates the sweep's wall-clock at 1000
    nodes).  ``shard_points`` adds (node count, shard count) trials
    through the sharded engine — the 10k/100k lane one event loop
    cannot hold; their table rows are labelled ``shard<K>``.  An armed
    ``telemetry`` gets one gauge per point.
    """
    inputs = []
    for node_count in node_counts:
        inputs.append((node_count, "inv", 1))
        if flood_baseline:
            inputs.append((node_count, "flood", 1))
    for node_count, shards in shard_points:
        inputs.append((node_count, "shard", shards))
    trial_seeds = derive_seeds(seed, len(inputs))
    started = time.perf_counter()
    outcomes = run_trials(
        _fleet_trial,
        [
            (trial_seed, node_count, mode, blocks, shards)
            for trial_seed, (node_count, mode, shards) in zip(trial_seeds, inputs)
        ],
        jobs=jobs,
        checkpoint=sweep_checkpoint(checkpoint, "fleet_scale", seed),
    )
    elapsed = time.perf_counter() - started
    points = {
        (mode if shards == 1 else f"shard{shards}", node_count): outcome
        for (node_count, mode, shards), outcome in zip(inputs, outcomes)
    }
    if telemetry is not None and telemetry.enabled:
        for (mode, node_count), point in sorted(points.items()):
            labels = {"mode": mode, "nodes": str(node_count)}
            telemetry.gauge("fleet.messages_sent", **labels).set(
                point["messages_sent"]
            )
            telemetry.gauge("fleet.bytes_sent", **labels).set(point["bytes_sent"])
            telemetry.gauge("fleet.events_processed", **labels).set(
                point["events_processed"]
            )
        telemetry.gauge("fleet.sweep_wall_clock_seconds").set(elapsed)
    return FleetScaleResult(points=points, blocks=blocks, elapsed_seconds=elapsed)


def main() -> None:
    """CLI entry point (modest sizes; the bench lane runs 1000 nodes)."""
    run_fleet_scale(node_counts=(50, 200), blocks=6).to_table().print()


if __name__ == "__main__":
    main()
