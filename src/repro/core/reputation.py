"""Provider reputation derived from on-chain accountability data.

§I: "Such built-in accountability not only deters untrustworthy IoT
providers ... but also ensuring well-behaved IoT providers can receive
proper rewards."  The chain already records everything needed to score
a provider — how often its releases turned out vulnerable, how many
flaws were confirmed, how much insurance it has historically staked —
so reputation is *derived*, never self-reported.

Scoring: a Beta-smoothed clean-release rate (so one clean release isn't
a perfect score) multiplied by a stake weight (providers that
consistently escrow large insurances put more money where their
releases are).  Scores are in [0, 1]; consumers rank providers or set
a floor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.chain.block import RecordKind
from repro.chain.chain import Blockchain
from repro.core.consumer import ConsumerClient
from repro.core.sra import SignedSRA
from repro.units import from_wei

__all__ = ["ProviderReputation", "ReputationEngine"]

#: Beta prior pseudo-counts: start every provider at 2/(2+1) ≈ 0.67.
PRIOR_CLEAN = 2.0
PRIOR_VULNERABLE = 1.0

#: Insurance (ether) at which the stake weight saturates.
STAKE_SATURATION_ETHER = 1000.0


@dataclass(frozen=True)
class ProviderReputation:
    """One provider's derived standing."""

    provider_id: str
    releases: int
    vulnerable_releases: int
    total_confirmed_vulnerabilities: int
    mean_insurance_ether: float
    score: float

    @property
    def clean_releases(self) -> int:
        return self.releases - self.vulnerable_releases


class ReputationEngine:
    """Computes provider reputations from public chain state."""

    def __init__(self, chain: Blockchain) -> None:
        self.chain = chain
        self._consumer = ConsumerClient(chain)

    def _insurances_by_provider(self) -> Dict[str, List[int]]:
        staked: Dict[str, List[int]] = {}
        for record in self.chain.confirmed_records(RecordKind.SRA):
            sra = SignedSRA.from_payload(record.payload)
            staked.setdefault(sra.body.provider_id, []).append(
                sra.body.insurance_wei
            )
        return staked

    def score_provider(self, provider_id: str) -> ProviderReputation:
        """Derive one provider's reputation from the chain."""
        track = self._consumer.provider_track_record(provider_id)
        insurances = self._insurances_by_provider().get(provider_id, [])
        mean_insurance = (
            from_wei(sum(insurances)) / len(insurances) if insurances else 0.0
        )
        clean = track.releases - track.vulnerable_releases
        clean_rate = (clean + PRIOR_CLEAN) / (
            track.releases + PRIOR_CLEAN + PRIOR_VULNERABLE
        )
        stake_weight = 1.0 - math.exp(-mean_insurance / STAKE_SATURATION_ETHER)
        # A provider with no history has prior clean-rate but no stake
        # evidence; blend so stake only ever helps.
        score = clean_rate * (0.5 + 0.5 * stake_weight)
        return ProviderReputation(
            provider_id=provider_id,
            releases=track.releases,
            vulnerable_releases=track.vulnerable_releases,
            total_confirmed_vulnerabilities=track.total_confirmed_vulnerabilities,
            mean_insurance_ether=mean_insurance,
            score=score,
        )

    def ranking(self) -> List[ProviderReputation]:
        """All providers with confirmed SRAs, best first."""
        providers = sorted(self._insurances_by_provider())
        reputations = [self.score_provider(provider) for provider in providers]
        reputations.sort(key=lambda reputation: reputation.score, reverse=True)
        return reputations

    def meets_floor(self, provider_id: str, floor: float = 0.5) -> bool:
        """A consumer's trust gate: deploy only from providers above
        the reputation floor."""
        return self.score_provider(provider_id).score >= floor
