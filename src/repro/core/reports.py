"""Two-phase detection reports — Eq. 3, 4, 5.

Phase I (initial report, declares the discovery without revealing it):

    R† = {ID†, Δ, D_i, H_{R*}, W_D, D_Sign†}                 (Eq. 3)
    ID† = H(Δ || D_i || H_{R*} || W_D)
    D_Sign† = Sign_{sk_{D_i}}(ID†)                            (Eq. 4)

Phase II (detailed report, published only after R† is confirmed):

    R* = {ID*, Δ, D_i, W_D, Des, D_Sign*}                     (Eq. 5)
    ID* = H(Δ || D_i || W_D || Des)

The anti-plagiarism property: ``H_{R*}`` in R† is the hash of the
yet-unpublished R*, so a thief who copies a published R* produces a
commitment that was already registered — by its victim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.codec import pack, unpack
from repro.crypto.ecdsa import Signature
from repro.crypto.hashing import hash_fields
from repro.crypto.keys import Address, KeyPair
from repro.detection.descriptions import VulnerabilityDescription

__all__ = [
    "DetailedReport",
    "InitialReport",
    "build_report_pair",
    "detailed_report_hash",
]


@dataclass(frozen=True)
class DetailedReport:
    """R* — the full findings (Eq. 5)."""

    sra_id: bytes  # Δ (by id)
    detector_id: str  # D_i
    wallet: Address  # W_D
    descriptions: Tuple[VulnerabilityDescription, ...]  # Des
    report_id: bytes  # ID*
    signature: Signature  # D_Sign*

    @staticmethod
    def compute_id(
        sra_id: bytes,
        detector_id: str,
        wallet: Address,
        descriptions: Tuple[VulnerabilityDescription, ...],
    ) -> bytes:
        """ID* = H(Δ || D_i || W_D || Des)."""
        return hash_fields(
            sra_id,
            detector_id,
            wallet.value,
            *[description.to_wire() for description in descriptions],
        )

    def body_hash(self) -> bytes:
        """H(R*) — the value committed in the initial report."""
        return detailed_report_hash(self)

    def vulnerability_keys(self) -> Tuple[str, ...]:
        """Canonical keys of the claimed flaws."""
        return tuple(description.canonical for description in self.descriptions)

    def to_payload(self) -> bytes:
        """Serialize for inclusion as a chain record."""
        des_blob = "\x1e".join(d.to_wire() for d in self.descriptions)
        return pack(
            [
                self.sra_id,
                self.detector_id.encode(),
                self.wallet.value,
                des_blob.encode(),
                self.report_id,
                self.signature.to_bytes(),
            ]
        )

    @classmethod
    def from_payload(cls, payload: bytes) -> "DetailedReport":
        """Parse the chain-record form."""
        sra_id, detector, wallet, des_blob, report_id, signature = unpack(payload, 6)
        descriptions = tuple(
            VulnerabilityDescription.from_wire(part)
            for part in des_blob.decode().split("\x1e")
            if part
        )
        return cls(
            sra_id=sra_id,
            detector_id=detector.decode(),
            wallet=Address(wallet),
            descriptions=descriptions,
            report_id=report_id,
            signature=Signature.from_bytes(signature),
        )


def detailed_report_hash(report: DetailedReport) -> bytes:
    """H(R*): hash of the canonical R* content (excluding the signature).

    Computed over the identifying body so the commitment is stable
    regardless of signature encoding.
    """
    des_blob = "\x1e".join(d.to_wire() for d in report.descriptions)
    return hash_fields(
        b"detailed-report",
        report.sra_id,
        report.detector_id,
        report.wallet.value,
        des_blob,
    )


@dataclass(frozen=True)
class InitialReport:
    """R† — the hash commitment announcing a discovery (Eq. 3)."""

    sra_id: bytes  # Δ (by id)
    detector_id: str  # D_i
    detailed_hash: bytes  # H_{R*}
    wallet: Address  # W_D
    report_id: bytes  # ID†
    signature: Signature  # D_Sign†

    @staticmethod
    def compute_id(
        sra_id: bytes, detector_id: str, detailed_hash: bytes, wallet: Address
    ) -> bytes:
        """ID† = H(Δ || D_i || H_{R*} || W_D)."""
        return hash_fields(sra_id, detector_id, detailed_hash, wallet.value)

    def to_payload(self) -> bytes:
        """Serialize for inclusion as a chain record."""
        return pack(
            [
                self.sra_id,
                self.detector_id.encode(),
                self.detailed_hash,
                self.wallet.value,
                self.report_id,
                self.signature.to_bytes(),
            ]
        )

    @classmethod
    def from_payload(cls, payload: bytes) -> "InitialReport":
        """Parse the chain-record form."""
        sra_id, detector, detailed_hash, wallet, report_id, signature = unpack(
            payload, 6
        )
        return cls(
            sra_id=sra_id,
            detector_id=detector.decode(),
            detailed_hash=detailed_hash,
            wallet=Address(wallet),
            report_id=report_id,
            signature=Signature.from_bytes(signature),
        )


def build_report_pair(
    sra_id: bytes,
    detector_id: str,
    detector_keys: KeyPair,
    wallet: Address,
    descriptions: Tuple[VulnerabilityDescription, ...],
) -> Tuple[InitialReport, DetailedReport]:
    """Construct a matching (R†, R*) pair for a set of findings.

    The detailed report is built first (its hash is the commitment),
    but published second — callers submit R†, wait for confirmation,
    then publish R*.
    """
    if not descriptions:
        raise ValueError("a report must describe at least one vulnerability")
    detailed_id = DetailedReport.compute_id(sra_id, detector_id, wallet, descriptions)
    detailed = DetailedReport(
        sra_id=sra_id,
        detector_id=detector_id,
        wallet=wallet,
        descriptions=descriptions,
        report_id=detailed_id,
        signature=detector_keys.sign(detailed_id),
    )
    commitment = detailed.body_hash()
    initial_id = InitialReport.compute_id(sra_id, detector_id, commitment, wallet)
    initial = InitialReport(
        sra_id=sra_id,
        detector_id=detector_id,
        detailed_hash=commitment,
        wallet=wallet,
        report_id=initial_id,
        signature=detector_keys.sign(initial_id),
    )
    return initial, detailed
