"""Retrospective detection — security notifications after deployment.

The paper's companion system SmartRetro (cited in §IX, [46])
"automatically sends security notifications to IoT consumers once
discovering any vulnerabilities" — covering the case SmartCrowd's
deploy-time reference misses: a consumer deploys a system that *looks*
clean, and a flaw is confirmed on chain only later (a re-detection
round, a slow detector, a new scanner generation).

Implemented as an on-chain monitor: consumers register what they
deployed; :meth:`RetrospectiveMonitor.poll` diffs the set of confirmed
detailed reports against what each deployment has already been told,
emitting one :class:`SecurityNotification` per newly confirmed flaw.
Everything is derived from public chain state — the monitor holds no
private data and any party can run it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.chain.block import RecordKind
from repro.chain.chain import Blockchain
from repro.core.reports import DetailedReport
from repro.core.sra import SignedSRA
from repro.detection.descriptions import VulnerabilityDescription

__all__ = ["Deployment", "SecurityNotification", "RetrospectiveMonitor"]


@dataclass(frozen=True)
class Deployment:
    """One consumer's deployed system version."""

    consumer_id: str
    system_name: str
    system_version: str

    @property
    def release_key(self) -> Tuple[str, str]:
        return (self.system_name, self.system_version)


@dataclass(frozen=True)
class SecurityNotification:
    """A post-deployment alert: your deployed system has a confirmed flaw."""

    consumer_id: str
    system_name: str
    system_version: str
    description: VulnerabilityDescription
    detected_by: str

    @property
    def vulnerability_key(self) -> str:
        return self.description.canonical


class RetrospectiveMonitor:
    """Watches the public chain and alerts affected consumers."""

    def __init__(self, chain: Blockchain) -> None:
        self.chain = chain
        self._deployments: List[Deployment] = []
        #: deployment -> vulnerability keys already notified
        self._notified: Dict[Deployment, Set[str]] = {}
        self.notifications_sent = 0
        # Incremental scan state: confirmed blocks are stable (re-scanned
        # from scratch only if a reorg ever rewrites one), so each poll
        # parses only the blocks confirmed since the previous poll
        # instead of re-decoding every payload on the chain.
        self._scanned_height: int = -1
        self._scanned_block_id: Optional[bytes] = None
        self._release_of_sra: Dict[bytes, Tuple[str, str]] = {}
        self._flaws: Dict[
            Tuple[str, str], List[Tuple[VulnerabilityDescription, str]]
        ] = {}
        self._pending_reports: List[DetailedReport] = []

    # -- registration ------------------------------------------------------

    def register_deployment(
        self, consumer_id: str, system_name: str, system_version: str
    ) -> Deployment:
        """A consumer records that it deployed a release."""
        deployment = Deployment(
            consumer_id=consumer_id,
            system_name=system_name,
            system_version=system_version,
        )
        if deployment not in self._notified:
            self._deployments.append(deployment)
            self._notified[deployment] = set()
        return deployment

    def unregister_deployment(self, deployment: Deployment) -> None:
        """Stop monitoring (e.g. the consumer retired the device)."""
        if deployment in self._notified:
            self._deployments.remove(deployment)
            del self._notified[deployment]

    def deployments_of(self, consumer_id: str) -> List[Deployment]:
        """All active deployments registered by one consumer."""
        return [d for d in self._deployments if d.consumer_id == consumer_id]

    # -- chain scanning ------------------------------------------------------

    def _confirmed_flaws_by_release(
        self,
    ) -> Dict[Tuple[str, str], List[Tuple[VulnerabilityDescription, str]]]:
        """(name, version) -> [(description, detector_id)] from the chain.

        The full-rescan reference: decodes every confirmed payload on
        each call.  :meth:`poll` maintains the same mapping
        incrementally; this form remains the oracle the incremental
        scan is property-tested against.
        """
        release_of_sra: Dict[bytes, Tuple[str, str]] = {}
        for record in self.chain.confirmed_records(RecordKind.SRA):
            sra = SignedSRA.from_payload(record.payload)
            release_of_sra[sra.sra_id] = (
                sra.body.system_name,
                sra.body.system_version,
            )
        flaws: Dict[Tuple[str, str], List[Tuple[VulnerabilityDescription, str]]] = {}
        for record in self.chain.confirmed_records(RecordKind.DETAILED_REPORT):
            report = DetailedReport.from_payload(record.payload)
            release = release_of_sra.get(report.sra_id)
            if release is None:
                continue
            for description in report.descriptions:
                flaws.setdefault(release, []).append(
                    (description, report.detector_id)
                )
        return flaws

    def _reset_scan(self) -> None:
        self._scanned_height = -1
        self._scanned_block_id = None
        self._release_of_sra.clear()
        self._flaws.clear()
        self._pending_reports.clear()

    def _file_report(self, report: DetailedReport) -> None:
        """Attach a confirmed report to its release (or park it).

        A report whose SRA has not been scanned yet waits in
        ``_pending_reports`` and is retried after each batch — the
        platform always records an SRA before any report against it, so
        in practice reports resolve in chain order, matching the full
        rescan exactly.
        """
        release = self._release_of_sra.get(report.sra_id)
        if release is None:
            self._pending_reports.append(report)
            return
        for description in report.descriptions:
            self._flaws.setdefault(release, []).append(
                (description, report.detector_id)
            )

    def _advance_scan(self) -> None:
        """Fold newly confirmed blocks into the cached flaw mapping.

        One walk from the head collects the canonical blocks confirmed
        since the previous poll and re-checks the block the scan last
        stopped at; if a reorg replaced it, every cache is rebuilt from
        genesis (confirmed blocks are stable under the 6-deep rule, so
        this is a correctness backstop, not a steady-state path).
        """
        chain = self.chain
        confirmed_height = chain.head.height - chain.confirmation_depth
        new_blocks = []  # collected head-first, highest confirmed block first
        block = chain.get_block(chain.head.block_id)
        boundary = None
        while block is not None and block.height > self._scanned_height:
            if block.height <= confirmed_height:
                new_blocks.append(block)
            if block.height == 0:
                break
            block = chain.get_block(block.header.prev_block_id)
        else:
            boundary = block
        if self._scanned_height >= 0 and (
            boundary is None or boundary.block_id != self._scanned_block_id
        ):
            self._reset_scan()
            self._advance_scan()
            return
        had_pending = bool(self._pending_reports)
        sra_seen = False
        for confirmed in reversed(new_blocks):
            for record in confirmed.records:
                if record.kind == RecordKind.SRA:
                    sra = SignedSRA.from_payload(record.payload)
                    self._release_of_sra[sra.sra_id] = (
                        sra.body.system_name,
                        sra.body.system_version,
                    )
                    sra_seen = True
                elif record.kind == RecordKind.DETAILED_REPORT:
                    self._file_report(DetailedReport.from_payload(record.payload))
        if had_pending and sra_seen:
            pending, self._pending_reports = self._pending_reports, []
            for report in pending:
                self._file_report(report)
        if new_blocks:
            self._scanned_height = new_blocks[0].height
            self._scanned_block_id = new_blocks[0].block_id

    def poll(self) -> List[SecurityNotification]:
        """Scan the chain; emit alerts for newly confirmed flaws.

        Each (deployment, vulnerability) pair is notified exactly once,
        however many detectors re-describe the same flaw (N-version
        dedup via canonical keys).  Only blocks confirmed since the
        last poll are decoded (see :meth:`_advance_scan`); the result
        is identical to rebuilding the mapping from genesis.
        """
        self._advance_scan()
        flaws = self._flaws
        notifications: List[SecurityNotification] = []
        for deployment in self._deployments:
            seen = self._notified[deployment]
            for description, detector_id in flaws.get(deployment.release_key, []):
                if description.canonical in seen:
                    continue
                seen.add(description.canonical)
                notifications.append(
                    SecurityNotification(
                        consumer_id=deployment.consumer_id,
                        system_name=deployment.system_name,
                        system_version=deployment.system_version,
                        description=description,
                        detected_by=detector_id,
                    )
                )
        self.notifications_sent += len(notifications)
        return notifications
