"""Retrospective detection — security notifications after deployment.

The paper's companion system SmartRetro (cited in §IX, [46])
"automatically sends security notifications to IoT consumers once
discovering any vulnerabilities" — covering the case SmartCrowd's
deploy-time reference misses: a consumer deploys a system that *looks*
clean, and a flaw is confirmed on chain only later (a re-detection
round, a slow detector, a new scanner generation).

Implemented as an on-chain monitor: consumers register what they
deployed; :meth:`RetrospectiveMonitor.poll` diffs the set of confirmed
detailed reports against what each deployment has already been told,
emitting one :class:`SecurityNotification` per newly confirmed flaw.
Everything is derived from public chain state — the monitor holds no
private data and any party can run it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.chain.block import RecordKind
from repro.chain.chain import Blockchain
from repro.core.reports import DetailedReport
from repro.core.sra import SignedSRA
from repro.detection.descriptions import VulnerabilityDescription

__all__ = ["Deployment", "SecurityNotification", "RetrospectiveMonitor"]


@dataclass(frozen=True)
class Deployment:
    """One consumer's deployed system version."""

    consumer_id: str
    system_name: str
    system_version: str

    @property
    def release_key(self) -> Tuple[str, str]:
        return (self.system_name, self.system_version)


@dataclass(frozen=True)
class SecurityNotification:
    """A post-deployment alert: your deployed system has a confirmed flaw."""

    consumer_id: str
    system_name: str
    system_version: str
    description: VulnerabilityDescription
    detected_by: str

    @property
    def vulnerability_key(self) -> str:
        return self.description.canonical


class RetrospectiveMonitor:
    """Watches the public chain and alerts affected consumers."""

    def __init__(self, chain: Blockchain) -> None:
        self.chain = chain
        self._deployments: List[Deployment] = []
        #: deployment -> vulnerability keys already notified
        self._notified: Dict[Deployment, Set[str]] = {}
        self.notifications_sent = 0

    # -- registration ------------------------------------------------------

    def register_deployment(
        self, consumer_id: str, system_name: str, system_version: str
    ) -> Deployment:
        """A consumer records that it deployed a release."""
        deployment = Deployment(
            consumer_id=consumer_id,
            system_name=system_name,
            system_version=system_version,
        )
        if deployment not in self._notified:
            self._deployments.append(deployment)
            self._notified[deployment] = set()
        return deployment

    def unregister_deployment(self, deployment: Deployment) -> None:
        """Stop monitoring (e.g. the consumer retired the device)."""
        if deployment in self._notified:
            self._deployments.remove(deployment)
            del self._notified[deployment]

    def deployments_of(self, consumer_id: str) -> List[Deployment]:
        """All active deployments registered by one consumer."""
        return [d for d in self._deployments if d.consumer_id == consumer_id]

    # -- chain scanning ------------------------------------------------------

    def _confirmed_flaws_by_release(
        self,
    ) -> Dict[Tuple[str, str], List[Tuple[VulnerabilityDescription, str]]]:
        """(name, version) -> [(description, detector_id)] from the chain."""
        release_of_sra: Dict[bytes, Tuple[str, str]] = {}
        for record in self.chain.confirmed_records(RecordKind.SRA):
            sra = SignedSRA.from_payload(record.payload)
            release_of_sra[sra.sra_id] = (
                sra.body.system_name,
                sra.body.system_version,
            )
        flaws: Dict[Tuple[str, str], List[Tuple[VulnerabilityDescription, str]]] = {}
        for record in self.chain.confirmed_records(RecordKind.DETAILED_REPORT):
            report = DetailedReport.from_payload(record.payload)
            release = release_of_sra.get(report.sra_id)
            if release is None:
                continue
            for description in report.descriptions:
                flaws.setdefault(release, []).append(
                    (description, report.detector_id)
                )
        return flaws

    def poll(self) -> List[SecurityNotification]:
        """Scan the chain; emit alerts for newly confirmed flaws.

        Each (deployment, vulnerability) pair is notified exactly once,
        however many detectors re-describe the same flaw (N-version
        dedup via canonical keys).
        """
        flaws = self._confirmed_flaws_by_release()
        notifications: List[SecurityNotification] = []
        for deployment in self._deployments:
            seen = self._notified[deployment]
            for description, detector_id in flaws.get(deployment.release_key, []):
                if description.canonical in seen:
                    continue
                seen.add(description.canonical)
                notifications.append(
                    SecurityNotification(
                        consumer_id=deployment.consumer_id,
                        system_name=deployment.system_name,
                        system_version=deployment.system_version,
                        description=description,
                        detected_by=detector_id,
                    )
                )
        self.notifications_sent += len(notifications)
        return notifications
