"""SmartCrowd core — the paper's contribution.

Insuranced SRAs (Eq. 1-2), two-phase detection reports (Eq. 3-5),
Algorithm 1 report verification, the incentive scheme (Eq. 7-10), the
platform orchestrator running all four phases of §IV-B, and the
consumer reference client.
"""

from repro.core.consumer import (
    ConsumerClient,
    ProviderTrackRecord,
    SecurityReference,
)
from repro.core.distributed import DistributedChain, ReplicaNode
from repro.core.lightclient import (
    HeaderChain,
    LightClient,
    RecordProof,
    prove_record,
)
from repro.core.incentives import (
    IncentiveParameters,
    detector_cost,
    detector_incentive,
    provider_incentive,
    provider_punishment,
)
from repro.core.platform import (
    DetectorStats,
    PlatformConfig,
    ReleaseCase,
    SmartCrowdPlatform,
)
from repro.core.registry import IdentityRegistry
from repro.core.reputation import ProviderReputation, ReputationEngine
from repro.core.retrospective import (
    Deployment,
    RetrospectiveMonitor,
    SecurityNotification,
)
from repro.core.reports import (
    DetailedReport,
    InitialReport,
    build_report_pair,
    detailed_report_hash,
)
from repro.core.sra import SRA, SignedSRA, make_sra
from repro.core.stakeholders import (
    ConsumerStakeholder,
    DecentralizedDeployment,
    DetectorStakeholder,
    ProviderStakeholder,
    SystemDirectory,
)
from repro.core.verification import ReportVerifier, Verdict, VerdictCode

__all__ = [
    "ConsumerClient",
    "ConsumerStakeholder",
    "DecentralizedDeployment",
    "Deployment",
    "DetailedReport",
    "DetectorStakeholder",
    "DetectorStats",
    "DistributedChain",
    "HeaderChain",
    "IdentityRegistry",
    "IncentiveParameters",
    "InitialReport",
    "LightClient",
    "PlatformConfig",
    "ProviderReputation",
    "ProviderStakeholder",
    "ProviderTrackRecord",
    "RecordProof",
    "ReleaseCase",
    "ReplicaNode",
    "ReportVerifier",
    "ReputationEngine",
    "RetrospectiveMonitor",
    "SRA",
    "SecurityNotification",
    "SecurityReference",
    "SignedSRA",
    "SmartCrowdPlatform",
    "SystemDirectory",
    "Verdict",
    "VerdictCode",
    "build_report_pair",
    "detailed_report_hash",
    "detector_cost",
    "detector_incentive",
    "make_sra",
    "prove_record",
    "provider_incentive",
    "provider_punishment",
]
