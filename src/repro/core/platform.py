"""The SmartCrowd platform orchestrator.

Ties every substrate together and runs the four phases of §IV-B over
simulated time:

* **Phase #1** — a provider announces a release: it deploys a
  :class:`~repro.contracts.SmartCrowdContract` escrowing the insurance
  (paying ≈0.095 ether of gas), signs the SRA (Eq. 1-2), and the SRA is
  verified decentrally and recorded in the chain.
* **Phase #2** — detectors scan the release; each discovered
  vulnerability yields a two-phase (R†, R*) submission racing other
  detectors (§V-B).
* **Phase #3** — providers verify reports with Algorithm 1 +
  ``AutoVerif`` before recording them; PoW mining aggregates records
  into blocks; 6-block confirmation finalizes them (§V-C).
* **Phase #4** — confirmations trigger the contract: detector bounties
  pay out automatically, providers collect block rewards ν and
  transaction fees ψ·ω, clean releases are refunded and vulnerable
  ones forfeited (§V-D).

The master clock is the mining process; scheduled actions (releases,
report submissions, contract closes) fire between blocks in timestamp
order, so runs are exactly reproducible for a given seed.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.chain.block import ChainRecord, RecordKind
from repro.chain.consensus import MinedEvent, MiningSimulation
from repro.chain.pow import PAPER_DIFFICULTY, PAPER_MEAN_BLOCK_TIME
from repro.compat import warn_deprecated
from repro.contracts.gas import DEFAULT_GAS_SCHEDULE
from repro.contracts.smartcrowd_contract import SmartCrowdContract
from repro.contracts.state import InsufficientFunds
from repro.contracts.vm import ContractRuntime
from repro.core.incentives import IncentiveParameters
from repro.economics.batch import crosscheck_detectors, crosscheck_providers
from repro.core.registry import IdentityRegistry
from repro.core.reports import DetailedReport, InitialReport, build_report_pair
from repro.core.sra import SignedSRA, make_sra
from repro.core.verification import ReportVerifier, VerdictCode
from repro.crypto.keys import Address, KeyPair
from repro.detection.autoverif import AutoVerifEngine
from repro.detection.detector import Detector
from repro.detection.iot_system import IoTSystem
from repro.units import to_wei

__all__ = [
    "SmartCrowdPlatform",
    "PlatformConfig",
    "ReleaseCase",
    "DetectorStats",
    "EconomicsSummary",
]


@dataclass(frozen=True)
class PlatformConfig:
    """Global knobs of a SmartCrowd deployment (paper defaults)."""

    params: IncentiveParameters = field(default_factory=IncentiveParameters)
    difficulty: int = PAPER_DIFFICULTY
    mean_block_time: float = PAPER_MEAN_BLOCK_TIME
    confirmation_depth: int = 6
    #: Seconds after an SRA during which reports are payable.
    detection_window: float = 600.0
    #: Starting balance of each provider account, wei.
    provider_funding_wei: int = to_wei(50_000)
    #: Starting balance of each detector account, wei.
    detector_funding_wei: int = to_wei(100)
    seed: int = 0


@dataclass
class ReleaseCase:
    """Everything the platform tracks about one announced release."""

    sra: SignedSRA
    system: IoTSystem
    provider_name: str
    contract_address: Address
    announced_at: float
    #: Detection round (1 for the original SRA, 2+ for re-detection).
    round: int = 1
    closed: bool = False
    refunded_wei: int = 0
    #: detector_id -> number of vulnerabilities it found in this release
    found_counts: Dict[str, int] = field(default_factory=dict)
    #: detector_id -> number of its findings that won a bounty
    awarded_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def sra_id(self) -> bytes:
        return self.sra.sra_id


@dataclass
class DetectorStats:
    """Running per-detector tallies the Fig. 6 experiments read."""

    findings: int = 0
    initial_reports_submitted: int = 0
    detailed_reports_submitted: int = 0
    reports_dropped: int = 0
    bounties_won: int = 0
    incentives_wei: int = 0
    fees_paid_wei: int = 0


@dataclass(frozen=True)
class EconomicsSummary:
    """Whole-population Eq. 7–10 accounting for one platform run.

    Computed by the batch engine (:mod:`repro.economics`) with the
    scalar closed forms of :mod:`repro.core.incentives` run alongside
    as the cross-check oracle — any divergence raises
    :class:`repro.economics.BatchParityError` instead of returning.
    """

    #: Eq. 7 per detector: μ·n_i·ρ_i with measured findings/awards.
    detector_incentives_wei: Dict[str, int]
    #: Eq. 10 per detector: n_i·(c + ρ_i·ψ).
    detector_costs_wei: Dict[str, int]
    #: Eq. 8 per provider: χ·ν + ψ·ω with measured block/fee counts.
    provider_incentives_wei: Dict[str, int]
    #: Eq. 9 per provider: μ·Σn_j·ρ_j + releases·cp over its releases.
    provider_punishments_wei: Dict[str, int]


class SmartCrowdPlatform:
    """A running SmartCrowd deployment over simulated time."""

    def __init__(
        self,
        provider_shares: Mapping[str, float],
        detectors: Sequence[Detector],
        config: Optional[PlatformConfig] = None,
        autoverif: Optional[AutoVerifEngine] = None,
    ) -> None:
        self.config = config if config is not None else PlatformConfig()
        self._rng = random.Random(self.config.seed)

        # Identities: long-lived keys for every entity (§V-A).
        self.registry = IdentityRegistry()
        self.provider_keys: Dict[str, KeyPair] = {}
        for name in provider_shares:
            keys = KeyPair.from_seed(f"provider:{name}:{self.config.seed}".encode())
            self.provider_keys[name] = keys
            self.registry.register(name, keys.public)
        self.detectors: Dict[str, Detector] = {d.detector_id: d for d in detectors}
        self.detector_keys: Dict[str, KeyPair] = {}
        for detector_id in self.detectors:
            keys = KeyPair.from_seed(f"detector:{detector_id}:{self.config.seed}".encode())
            self.detector_keys[detector_id] = keys
            self.registry.register(detector_id, keys.public)

        # The consensus trigger authority (§V-D substitution; DESIGN.md).
        self._authority = KeyPair.from_seed(f"authority:{self.config.seed}".encode())

        # Contract runtime over the shared world state.
        self.runtime = ContractRuntime(gas_schedule=DEFAULT_GAS_SCHEDULE)
        for name, keys in self.provider_keys.items():
            self.runtime.state.mint(keys.address, self.config.provider_funding_wei)
        for detector_id, keys in self.detector_keys.items():
            self.runtime.state.mint(keys.address, self.config.detector_funding_wei)
        self.runtime.state.mint(self._authority.address, to_wei(10_000_000))

        # PoW mining competition among providers.
        addresses = {name: keys.address for name, keys in self.provider_keys.items()}
        self.mining = MiningSimulation.from_shares(
            provider_shares,
            addresses,
            difficulty=self.config.difficulty,
            mean_block_time=self.config.mean_block_time,
            confirmation_depth=self.config.confirmation_depth,
            rng=random.Random(self._rng.randrange(2**31)),
        )

        # Provider-side verification (honest majority): Algorithm 1.
        self.verifier = ReportVerifier(
            self.registry,
            autoverif if autoverif is not None else AutoVerifEngine(),
        )

        # Scheduled actions between blocks.
        self._actions: List[Tuple[float, int, Callable[[], None]]] = []
        #: Events mined by the most recent advance_until/advance_for call.
        self.last_mined_events: List[MinedEvent] = []
        self._action_seq = itertools.count()
        self._action_time: float = 0.0

        # Release and report bookkeeping.
        self.releases: Dict[bytes, ReleaseCase] = {}
        self._initial_by_id: Dict[bytes, InitialReport] = {}
        self._detailed_by_id: Dict[bytes, DetailedReport] = {}
        self._confirmed_heights: Set[int] = set()
        self.detector_stats: Dict[str, DetectorStats] = {
            detector_id: DetectorStats() for detector_id in self.detectors
        }
        self._stats_by_address: Dict[Address, DetectorStats] = {
            keys.address: self.detector_stats[detector_id]
            for detector_id, keys in self.detector_keys.items()
        }
        self.dropped_reports: List[Tuple[bytes, VerdictCode]] = []
        #: Detectors exposed by a failed AutoVerif: providers filter all
        #: of their future submissions (§V-C "filter this detector's
        #: next reports").
        self.isolated_detectors: Set[str] = set()
        #: Per-provider punishment tally (forfeited insurance + deploy gas).
        self.punishments_wei: Dict[str, int] = {name: 0 for name in provider_shares}
        #: Per-provider fee income from mined records (the ψ·ω term).
        self.fee_income_wei: Dict[str, int] = {name: 0 for name in provider_shares}
        #: Per-provider count of fee-bearing records collected (ω of Eq. 8).
        self.fee_records_collected: Dict[str, int] = {name: 0 for name in provider_shares}
        self.blocks_mined: Dict[str, int] = {name: 0 for name in provider_shares}

        self.mining.add_listener(self._on_block)

    # -- clock & scheduling --------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time.

        The mining clock is the base; while actions are being processed
        between blocks, the firing action's own timestamp is current
        (so e.g. a contract deployed by an announce action carries the
        announce time, and close-window arithmetic is deterministic).
        """
        return max(self.mining.clock, self._action_time)

    def schedule_at(self, time: float, action: Callable[[], None]) -> None:
        """Queue an action to fire at absolute ``time`` (between blocks).

        Unified time-control surface: absolute scheduling is
        ``schedule_at`` here exactly as on
        :class:`~repro.network.simulator.Simulator`.
        """
        if time < self.now - 1e-9:
            time = self.now
        heapq.heappush(self._actions, (time, next(self._action_seq), action))

    def schedule(self, at_time: float, action: Callable[[], None]) -> None:
        """Deprecated spelling of :meth:`schedule_at` (warns once)."""
        warn_deprecated(
            "SmartCrowdPlatform.schedule",
            "SmartCrowdPlatform.schedule_at",
            extra="(the argument is an absolute time, matching Simulator.schedule_at)",
        )
        self.schedule_at(at_time, action)

    def _process_actions(self, up_to: float) -> None:
        while self._actions and self._actions[0][0] <= up_to + 1e-12:
            fire_time, _, action = heapq.heappop(self._actions)
            self._action_time = max(self._action_time, fire_time)
            self.runtime.advance_time(max(self.runtime.block_time, self._action_time))
            action()

    def advance_until(self, deadline: float) -> int:
        """Advance simulated time to ``deadline``, mining as we go.

        Returns the number of blocks mined, matching
        :meth:`Simulator.advance_until`'s count-of-work convention; the
        mined events themselves are kept in :attr:`last_mined_events`
        (or subscribe via ``platform.mining.add_listener``).
        """
        self.last_mined_events = self._advance(deadline)
        return len(self.last_mined_events)

    def advance_for(self, duration: float) -> int:
        """Advance by ``duration`` seconds; returns blocks mined."""
        return self.advance_until(self.now + duration)

    def _advance(self, deadline: float) -> List[MinedEvent]:
        events: List[MinedEvent] = []
        while True:
            outcome = self.mining.model.next_block()
            block_time = self.mining.clock + outcome.interval
            if block_time > deadline:
                self._process_actions(deadline)
                self.mining.clock = deadline
                self.runtime.advance_time(max(self.runtime.block_time, deadline))
                return events
            self._process_actions(block_time)
            self.runtime.advance_time(max(self.runtime.block_time, block_time))
            events.append(self.mining.apply_outcome(outcome))

    def run_until(self, deadline: float) -> List[MinedEvent]:
        """Deprecated spelling of :meth:`advance_until` (warns once).

        Kept with its historical return type — the list of mined
        events — so existing callers keep working.
        """
        warn_deprecated(
            "SmartCrowdPlatform.run_until",
            "SmartCrowdPlatform.advance_until",
            extra="(advance_until returns the count; events are in last_mined_events)",
        )
        self.last_mined_events = self._advance(deadline)
        return self.last_mined_events

    def run_for(self, duration: float) -> List[MinedEvent]:
        """Deprecated spelling of :meth:`advance_for` (warns once)."""
        warn_deprecated(
            "SmartCrowdPlatform.run_for",
            "SmartCrowdPlatform.advance_for",
            extra="(advance_for returns the count; events are in last_mined_events)",
        )
        self.last_mined_events = self._advance(self.now + duration)
        return self.last_mined_events

    # -- Phase #1: release announcement ---------------------------------------

    def announce_release(
        self,
        provider_name: str,
        system: IoTSystem,
        insurance_wei: Optional[int] = None,
        bounty_wei: Optional[int] = None,
        at_time: Optional[float] = None,
    ) -> SignedSRA:
        """Announce an IoT system release (scheduling it if ``at_time``).

        Deploys the escrow contract, records the SRA on chain, and
        schedules detector scans and the end-of-window close.
        """
        if provider_name not in self.provider_keys:
            raise ValueError(f"unknown provider {provider_name!r}")
        insurance = (
            insurance_wei if insurance_wei is not None else self.config.params.insurance_wei
        )
        bounty = bounty_wei if bounty_wei is not None else self.config.params.bounty_wei
        keys = self.provider_keys[provider_name]
        sra = make_sra(provider_name, keys, system, insurance, bounty)
        when = at_time if at_time is not None else self.now
        self.schedule_at(when, lambda: self._do_announce(provider_name, sra, system))
        return sra

    def reopen_release(
        self,
        sra_id: bytes,
        insurance_wei: Optional[int] = None,
        bounty_wei: Optional[int] = None,
        at_time: Optional[float] = None,
    ) -> SignedSRA:
        """Open a re-detection round for a closed release.

        Retrospective detection (SmartRetro, cited in §IX): the
        provider escrows a fresh insurance and detectors rescan, but
        only *newly discovered* vulnerabilities are payable — flaws
        already confirmed in earlier rounds are excluded from both
        payouts and punishment.
        """
        case = self.releases.get(sra_id)
        if case is None:
            raise ValueError("unknown release")
        if not case.closed:
            raise ValueError("previous round is still open")
        previous_contract = self.runtime.get_contract(case.contract_address)
        excluded = (
            previous_contract.awarded_vulnerabilities()
            | previous_contract.excluded_keys
        )
        insurance = (
            insurance_wei
            if insurance_wei is not None
            else self.config.params.insurance_wei
        )
        bounty = (
            bounty_wei if bounty_wei is not None else self.config.params.bounty_wei
        )
        keys = self.provider_keys[case.provider_name]
        next_round = case.round + 1
        # A distinct download link per round keeps Δ_id unique while the
        # artifact itself is unchanged.
        link = f"{case.system.download_link}?round={next_round}"
        sra = make_sra(
            case.provider_name, keys, case.system, insurance, bounty,
            download_link=link,
        )
        when = at_time if at_time is not None else self.now
        self.schedule_at(
            when,
            lambda: self._do_announce(
                case.provider_name, sra, case.system,
                excluded_keys=excluded, round_number=next_round,
            ),
        )
        return sra

    def _do_announce(
        self,
        provider_name: str,
        sra: SignedSRA,
        system: IoTSystem,
        excluded_keys: Optional[Set[str]] = None,
        round_number: int = 1,
    ) -> None:
        if sra.sra_id in self.releases:
            raise RuntimeError("duplicate SRA announcement")
        keys = self.provider_keys[provider_name]
        contract = SmartCrowdContract(
            sra_id=sra.sra_id,
            provider=keys.address,
            bounty_per_vulnerability_wei=sra.body.bounty_wei,
            detection_window=self.config.detection_window,
            trigger_authority=self._authority.address,
            excluded_keys=excluded_keys,
        )
        receipt = self.runtime.deploy(
            contract, keys.address, value_wei=sra.body.insurance_wei
        )
        if not receipt.success:
            raise RuntimeError(
                f"SRA deployment failed for {provider_name}: {receipt.error}"
            )
        self.punishments_wei[provider_name] += receipt.fee_wei

        case = ReleaseCase(
            sra=sra,
            system=system,
            provider_name=provider_name,
            contract_address=receipt.contract,
            announced_at=self.now,
            round=round_number,
        )
        self.releases[sra.sra_id] = case

        # Decentralized SRA verification, then on-chain recording.
        if not sra.verify(keys.public):
            raise RuntimeError("provider produced an invalid SRA")
        self.mining.submit(
            ChainRecord(
                kind=RecordKind.SRA,
                record_id=sra.sra_id,
                payload=sra.to_payload(),
                fee=0,
                sender=keys.address,
            )
        )

        self._start_detection(case)
        close_at = self.now + self.config.detection_window + 1e-6
        self.schedule_at(close_at, lambda: self._close_release(case))

    # -- Phase #2: distributed detection --------------------------------------

    def _start_detection(self, case: ReleaseCase) -> None:
        """Every detector scans the release; findings become scheduled
        two-phase submissions racing on find time."""
        for detector_id, detector in self.detectors.items():
            findings = detector.scan(case.system)
            case.found_counts[detector_id] = len(findings)
            stats = self.detector_stats[detector_id]
            stats.findings += len(findings)
            for finding in findings:
                submit_at = case.announced_at + finding.found_after
                if submit_at > case.announced_at + self.config.detection_window:
                    continue  # found too late to be payable
                self.schedule_at(
                    submit_at,
                    self._make_submitter(case, detector_id, finding),
                )

    def _make_submitter(self, case: ReleaseCase, detector_id: str, finding):
        def _submit() -> None:
            self._submit_initial(case, detector_id, finding)

        return _submit

    def _submit_initial(self, case: ReleaseCase, detector_id: str, finding) -> None:
        """Build the (R†, R*) pair for one finding and submit R†."""
        if detector_id in self.isolated_detectors:
            self.detector_stats[detector_id].reports_dropped += 1
            return
        keys = self.detector_keys[detector_id]
        initial, detailed = build_report_pair(
            sra_id=case.sra_id,
            detector_id=detector_id,
            detector_keys=keys,
            wallet=keys.address,
            descriptions=(finding.description,),
        )
        verdict = self.verifier.verify_initial(initial)
        stats = self.detector_stats[detector_id]
        if not verdict.ok:
            stats.reports_dropped += 1
            self.dropped_reports.append((initial.report_id, verdict.code))
            return
        record = ChainRecord(
            kind=RecordKind.INITIAL_REPORT,
            record_id=initial.report_id,
            payload=initial.to_payload(),
            fee=self.runtime.gas.fee_wei("submit_initial_report"),
            sender=keys.address,
        )
        if self.runtime.state.balance(keys.address) < record.fee:
            stats.reports_dropped += 1
            return
        if self.mining.submit(record):
            self._initial_by_id[initial.report_id] = initial
            self._detailed_by_id[initial.report_id] = detailed
            stats.initial_reports_submitted += 1

    def _submit_detailed(self, initial_id: bytes) -> None:
        """Publish R* after its R† confirmed (§V-B Phase II)."""
        initial = self._initial_by_id.get(initial_id)
        detailed = self._detailed_by_id.get(initial_id)
        if initial is None or detailed is None:
            return
        case = self.releases.get(initial.sra_id)
        if case is None:
            return
        verdict = self.verifier.verify_detailed(detailed, initial, case.system)
        stats = self.detector_stats[detailed.detector_id]
        if not verdict.ok:
            stats.reports_dropped += 1
            self.dropped_reports.append((detailed.report_id, verdict.code))
            if verdict.code == VerdictCode.AUTOVERIF_FAILED:
                self.isolated_detectors.add(detailed.detector_id)
                self._isolate_detector(case, detailed)
            return
        record = ChainRecord(
            kind=RecordKind.DETAILED_REPORT,
            record_id=detailed.report_id,
            payload=detailed.to_payload(),
            fee=self.runtime.gas.fee_wei("submit_detailed_report"),
            sender=detailed.wallet,
        )
        if self.runtime.state.balance(detailed.wallet) < record.fee:
            stats.reports_dropped += 1
            return
        if self.mining.submit(record):
            stats.detailed_reports_submitted += 1

    def _isolate_detector(self, case: ReleaseCase, detailed: DetailedReport) -> None:
        """Record a failed-AutoVerif detector in the contract's filter."""
        self.runtime.call(
            case.contract_address,
            "award_detailed_report",
            self._authority.address,
            0,
            "confirm_report",
            detailed.detector_id,
            detailed.wallet,
            detailed.body_hash(),
            detailed.vulnerability_keys(),
            False,
        )

    # -- Phase #3/#4: block events, confirmation triggers ----------------------

    def _on_block(self, event: MinedEvent) -> None:
        miner_name = event.miner_name
        miner_address = self.mining.miners[miner_name]
        self.blocks_mined[miner_name] += 1

        # Mint the block reward ν and collect record fees ψ·ω (Eq. 8).
        self.runtime.state.mint(miner_address, self.config.params.block_reward_wei)
        fee_records = [
            record
            for record in event.block.records
            if record.fee and record.sender is not None
        ]
        if fee_records:
            self._settle_fees(fee_records, miner_name, miner_address)

        # Gas of authority-triggered contract calls flows to this miner.
        self.runtime.fee_collector = miner_address
        self.runtime.advance_time(max(self.runtime.block_time, event.time))

        # Fire confirmation triggers for the block that just became final.
        confirmed_height = event.block.height - self.config.confirmation_depth
        if confirmed_height <= 0:
            return
        if confirmed_height in self._confirmed_heights:
            return
        self._confirmed_heights.add(confirmed_height)
        confirmed_block = self.mining.chain.block_at_height(confirmed_height)
        if confirmed_block is None:
            return
        for record in confirmed_block.records:
            self._on_record_confirmed(record)

    def _settle_fees(
        self,
        fee_records: Sequence[ChainRecord],
        miner_name: str,
        miner_address: Address,
    ) -> None:
        """Collect a block's record fees for the miner, batched by sender.

        Equivalent to transferring each record's fee in block order:
        fee-bearing senders are never *credited* during settlement (only
        the miner receives), so each sender's total settles in one
        transfer.  A sender that cannot cover its total falls back to
        the per-record greedy semantics (drop exactly the records the
        sequential loop would drop), and a block whose miner is itself a
        fee sender takes the per-record path outright — its balance
        changes mid-settlement.
        """
        state = self.runtime.state
        if any(record.sender == miner_address for record in fee_records):
            for record in fee_records:
                self._settle_fee_record(record, miner_name, miner_address)
            return
        totals: Dict[Address, int] = {}
        for record in fee_records:
            totals[record.sender] = totals.get(record.sender, 0) + record.fee
        for sender, total in totals.items():
            if state.balance(sender) >= total:
                state.transfer(sender, miner_address, total)
                self.fee_income_wei[miner_name] += total
                self.fee_records_collected[miner_name] += sum(
                    1 for record in fee_records if record.sender == sender
                )
                stats = self._stats_by_address.get(sender)
                if stats is not None:
                    stats.fees_paid_wei += total
            else:
                for record in fee_records:
                    if record.sender == sender:
                        self._settle_fee_record(record, miner_name, miner_address)

    def _settle_fee_record(
        self, record: ChainRecord, miner_name: str, miner_address: Address
    ) -> None:
        """Transfer one record's fee (the pre-batch sequential step)."""
        try:
            self.runtime.state.transfer(record.sender, miner_address, record.fee)
        except InsufficientFunds:
            return  # checked at submission; racing drain is dropped
        self.fee_income_wei[miner_name] += record.fee
        self.fee_records_collected[miner_name] += 1
        stats = self._stats_by_address.get(record.sender)
        if stats is not None:
            stats.fees_paid_wei += record.fee

    def _stats_for_address(self, address: Address) -> Optional[DetectorStats]:
        return self._stats_by_address.get(address)

    def _on_record_confirmed(self, record: ChainRecord) -> None:
        if record.kind == RecordKind.INITIAL_REPORT:
            self._confirm_initial(record)
        elif record.kind == RecordKind.DETAILED_REPORT:
            self._confirm_detailed(record)
        # SRA confirmation needs no trigger: the contract escrowed at deploy.

    def _confirm_initial(self, record: ChainRecord) -> None:
        initial = InitialReport.from_payload(record.payload)
        case = self.releases.get(initial.sra_id)
        if case is None:
            return
        receipt = self.runtime.call(
            case.contract_address,
            "confirm_initial_report",
            self._authority.address,
            0,
            "confirm_report",
            initial.detector_id,
            initial.wallet,
            initial.detailed_hash,
        )
        if receipt.success and receipt.return_value:
            # Commitment registered: the detector publishes R* now.
            self.schedule_at(self.now, lambda: self._submit_detailed(initial.report_id))

    def _confirm_detailed(self, record: ChainRecord) -> None:
        detailed = DetailedReport.from_payload(record.payload)
        case = self.releases.get(detailed.sra_id)
        if case is None:
            return
        before = self.runtime.state.balance(detailed.wallet)
        receipt = self.runtime.call(
            case.contract_address,
            "award_detailed_report",
            self._authority.address,
            0,
            "confirm_report",
            detailed.detector_id,
            detailed.wallet,
            detailed.body_hash(),
            detailed.vulnerability_keys(),
            True,
        )
        if not receipt.success:
            return
        paid = receipt.return_value or 0
        if paid > 0:
            stats = self.detector_stats.get(detailed.detector_id)
            if stats is not None:
                stats.bounties_won += len(
                    [e for e in receipt.events if e.name == "BountyPaid"]
                )
                stats.incentives_wei += paid
            case.awarded_counts[detailed.detector_id] = case.awarded_counts.get(
                detailed.detector_id, 0
            ) + len([e for e in receipt.events if e.name == "BountyPaid"])

    def _close_release(self, case: ReleaseCase) -> None:
        """End of detection window: refund (clean) or forfeit (vulnerable)."""
        if case.closed:
            return
        receipt = self.runtime.call(
            case.contract_address,
            "close",
            self._authority.address,
            0,
            "refund_insurance",
        )
        if not receipt.success:
            # Window may not have expired on the runtime clock yet
            # (block times are stochastic); retry shortly after.
            self.schedule_at(self.now + self.config.mean_block_time, lambda: self._close_release(case))
            return
        case.closed = True
        case.refunded_wei = receipt.return_value or 0
        forfeited = case.sra.body.insurance_wei - case.refunded_wei
        self.punishments_wei[case.provider_name] += forfeited

    # -- views ------------------------------------------------------------------

    def provider_balance(self, provider_name: str) -> int:
        """Current account balance of a provider, wei."""
        return self.runtime.state.balance(self.provider_keys[provider_name].address)

    def detector_balance(self, detector_id: str) -> int:
        """Current account balance of a detector, wei."""
        return self.runtime.state.balance(self.detector_keys[detector_id].address)

    def provider_incentives_wei(self, provider_name: str) -> int:
        """Eq. 8 income actually accrued: χ·ν + collected fees."""
        return (
            self.blocks_mined[provider_name] * self.config.params.block_reward_wei
            + self.fee_income_wei[provider_name]
        )

    def release_case(self, sra_id: bytes) -> Optional[ReleaseCase]:
        """Look up a tracked release."""
        return self.releases.get(sra_id)

    def economics_summary(self) -> EconomicsSummary:
        """Batch Eq. 7–10 accounting over the whole population.

        One vectorized pass through :mod:`repro.economics` instead of a
        per-entity loop, with every value re-derived by the scalar
        oracle (:class:`repro.economics.BatchParityError` on any
        divergence).  Semantics: ``n_i`` is the detector's measured
        findings and ``ρ_i`` its award proportion (clamped to 1 — a
        bounty per finding at most); a provider's Eq. 9 term uses the
        awarded counts against its releases at ρ = 1 (awards are
        confirmed on-chain by definition) plus one deployment per
        release.
        """
        params = self.config.params
        detector_ids = sorted(self.detector_stats)
        counts = [self.detector_stats[d].findings for d in detector_ids]
        rhos = [
            min(1.0, self.detector_stats[d].bounties_won / found) if found else 0.0
            for d, found in zip(detector_ids, counts)
        ]
        incentives, costs = crosscheck_detectors(params, counts, rhos)

        providers = sorted(self.blocks_mined)
        chis = [self.blocks_mined[p] for p in providers]
        omegas = [self.fee_records_collected[p] for p in providers]
        awarded: Dict[str, List[float]] = {p: [] for p in providers}
        deployed: Dict[str, int] = {p: 0 for p in providers}
        for case in self.releases.values():
            deployed[case.provider_name] += 1
            awarded[case.provider_name].extend(
                float(count) for count in case.awarded_counts.values()
            )
        provider_inc, provider_pun = crosscheck_providers(
            params,
            chis,
            omegas,
            [awarded[p] for p in providers],
            [[1.0] * len(awarded[p]) for p in providers],
            [deployed[p] for p in providers],
        )
        return EconomicsSummary(
            detector_incentives_wei=dict(zip(detector_ids, incentives)),
            detector_costs_wei=dict(zip(detector_ids, costs)),
            provider_incentives_wei=dict(zip(providers, provider_inc)),
            provider_punishments_wei=dict(zip(providers, provider_pun)),
        )

    def finish_pending(self, max_extra_time: float = 3600.0) -> None:
        """Run until all open releases are closed (bounded)."""
        deadline = self.now + max_extra_time
        while self.now < deadline and any(
            not case.closed for case in self.releases.values()
        ):
            self.advance_for(self.config.mean_block_time * 8)
