"""System Release Announcements (SRAs) — Eq. 1 and Eq. 2.

An insuranced SRA is the unit of accountability:

    Δ = {Δ_id, P_i, U_n, U_v, U_h, U_l, I_i, P_Sign}        (Eq. 1)
    P_Sign = Sign_{sk_{P_i}}(Δ_id)                           (Eq. 2)

``Δ_id`` binds the provider to the exact artifact (name, version, hash,
link) and insurance; the signature makes the SRA unforgeable.  The
decentralized verification of §V-A — recompute ``Δ_id``, check the
signature, check ``U_h`` against the downloaded artifact — is
:meth:`SignedSRA.verify` / :meth:`SignedSRA.verify_artifact`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.codec import pack, unpack
from repro.crypto.ecdsa import Signature
from repro.crypto.hashing import hash_fields, sha3_256
from repro.crypto.keys import KeyPair, PublicKey
from repro.detection.iot_system import IoTSystem

__all__ = ["SRA", "SignedSRA", "make_sra"]


@dataclass(frozen=True)
class SRA:
    """The unsigned body of a release announcement (Δ minus P_Sign)."""

    provider_id: str  # P_i — unique provider identifier
    system_name: str  # U_n
    system_version: str  # U_v
    artifact_hash: bytes  # U_h — hash of the released image
    download_link: str  # U_l
    insurance_wei: int  # I_i — the escrowed insurance
    bounty_wei: int  # μ — preset incentive per vulnerability (§V-D)

    def sra_id(self) -> bytes:
        """Δ_id = H(P_i || U_n || U_v || U_h || U_l || I_i)."""
        return hash_fields(
            self.provider_id,
            self.system_name,
            self.system_version,
            self.artifact_hash,
            self.download_link,
            self.insurance_wei,
            self.bounty_wei,
        )


@dataclass(frozen=True)
class SignedSRA:
    """A complete Δ: body, claimed id, and provider signature."""

    body: SRA
    claimed_id: bytes  # Δ_id as announced (recomputed by verifiers)
    signature: Signature  # P_Sign

    @property
    def sra_id(self) -> bytes:
        """The announced Δ_id (verify before trusting)."""
        return self.claimed_id

    def verify(self, provider_key: PublicKey) -> bool:
        """Decentralized SRA verification (§V-A).

        Recomputes Δ_id from the body and checks P_Sign over it; a
        spoofed announcement — wrong id, tampered field, or a signature
        from someone other than the named provider — fails here and is
        never propagated.
        """
        expected_id = self.body.sra_id()
        if expected_id != self.claimed_id:
            return False
        return provider_key.verify(expected_id, self.signature)

    def verify_artifact(self, image: bytes) -> bool:
        """Check U_h against a downloaded artifact.

        Detects marketplace repackaging: a tampered image hashes
        differently from the provider's committed U_h.
        """
        return sha3_256(image) == self.body.artifact_hash

    def to_payload(self) -> bytes:
        """Serialize for inclusion as a chain record."""
        body = self.body
        return pack(
            [
                body.provider_id.encode(),
                body.system_name.encode(),
                body.system_version.encode(),
                body.artifact_hash,
                body.download_link.encode(),
                str(body.insurance_wei).encode(),
                str(body.bounty_wei).encode(),
                self.claimed_id,
                self.signature.to_bytes(),
            ]
        )

    @classmethod
    def from_payload(cls, payload: bytes) -> "SignedSRA":
        """Parse the chain-record form."""
        (
            provider_id,
            system_name,
            system_version,
            artifact_hash,
            download_link,
            insurance,
            bounty,
            claimed_id,
            signature,
        ) = unpack(payload, 9)
        body = SRA(
            provider_id=provider_id.decode(),
            system_name=system_name.decode(),
            system_version=system_version.decode(),
            artifact_hash=artifact_hash,
            download_link=download_link.decode(),
            insurance_wei=int(insurance),
            bounty_wei=int(bounty),
        )
        return cls(
            body=body,
            claimed_id=claimed_id,
            signature=Signature.from_bytes(signature),
        )


def make_sra(
    provider_id: str,
    provider_keys: KeyPair,
    system: IoTSystem,
    insurance_wei: int,
    bounty_wei: int,
    download_link: Optional[str] = None,
) -> SignedSRA:
    """Build and sign an SRA for a release (the provider-side action)."""
    body = SRA(
        provider_id=provider_id,
        system_name=system.name,
        system_version=system.version,
        artifact_hash=system.artifact_hash,
        download_link=download_link or system.download_link,
        insurance_wei=insurance_wei,
        bounty_wei=bounty_wei,
    )
    sra_id = body.sra_id()
    return SignedSRA(
        body=body,
        claimed_id=sra_id,
        signature=provider_keys.sign(sra_id),
    )
