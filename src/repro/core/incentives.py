"""The incentive scheme — Eq. 7 through Eq. 10 as pure functions.

These closed forms drive both the analysis module (which evaluates them
symbolically) and the experiment harness (which cross-checks them
against simulated outcomes):

    in†_i = μ · n_i · ρ_i                                   (Eq. 7)
    in*_i = χ · ν + ψ · ω                                   (Eq. 8)
    pu_i  = μ · Σ_j n_j · ρ_j + cp_i                        (Eq. 9)
    co_i  = n_i · (c + ρ_i · ψ)                             (Eq. 10)

All money is integer wei; proportions are floats; results round toward
zero as the contract's integer arithmetic would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.contracts.gas import DEFAULT_GAS_SCHEDULE
from repro.units import to_wei

__all__ = [
    "IncentiveParameters",
    "detector_incentive",
    "provider_incentive",
    "provider_punishment",
    "detector_cost",
]


@dataclass(frozen=True)
class IncentiveParameters:
    """All the Greek letters of §V-D/§VI-B in one place.

    Defaults reproduce the paper's prototype configuration.
    """

    #: μ — preset incentive per detected vulnerability, wei.
    bounty_wei: int = to_wei(250)
    #: ν — value of one mining reward, wei (5 ether per block, §VII).
    block_reward_wei: int = to_wei(5)
    #: ψ — transaction fee per detection report, wei.
    report_fee_wei: int = DEFAULT_GAS_SCHEDULE.fee_wei("submit_detailed_report")
    #: c — cost of submitting one detection report, wei
    #: (the Fig. 6(b) ≈0.011 ether per report).
    submission_cost_wei: int = DEFAULT_GAS_SCHEDULE.report_submission_cost()
    #: cp_i — cost of deploying an SRA contract, wei (≈0.095 ether).
    deployment_cost_wei: int = DEFAULT_GAS_SCHEDULE.sra_deployment_cost()
    #: I_i — default insurance escrowed with each SRA, wei.
    insurance_wei: int = to_wei(1000)
    #: θ — mean SRA period, seconds.
    sra_period: float = 600.0
    #: ϑ — mean block time, seconds.
    block_time: float = 15.35

    @classmethod
    def paper_defaults(cls) -> "IncentiveParameters":
        """The configuration of §VII (explicit alias of the defaults)."""
        return cls()


def detector_incentive(params: IncentiveParameters, n_i: float, rho_i: float) -> int:
    """Eq. 7: in†_i = μ · n_i · ρ_i.

    ``n_i`` — vulnerabilities the detector found for this system;
    ``rho_i`` — the proportion of them finally written to the chain
    (i.e. that won the first-commit race and passed verification).
    """
    if n_i < 0:
        raise ValueError("n_i cannot be negative")
    if not 0.0 <= rho_i <= 1.0:
        raise ValueError("rho_i must be in [0, 1]")
    return int(params.bounty_wei * n_i * rho_i)


def provider_incentive(params: IncentiveParameters, chi: int, omega: int) -> int:
    """Eq. 8: in*_i = χ·ν + ψ·ω.

    ``chi`` — blocks this provider mined; ``omega`` — detection reports
    whose fees it collected.
    """
    if chi < 0 or omega < 0:
        raise ValueError("block and report counts cannot be negative")
    return chi * params.block_reward_wei + omega * params.report_fee_wei


def provider_punishment(
    params: IncentiveParameters,
    awarded_counts: Sequence[float],
    rhos: Sequence[float],
    contracts_deployed: int = 1,
) -> int:
    """Eq. 9: pu_i = μ · Σ_j n_j·ρ_j + cp_i.

    ``awarded_counts[j]``/``rhos[j]`` are detector *j*'s found count
    and confirmation proportion against this provider's releases.
    """
    if len(awarded_counts) != len(rhos):
        raise ValueError("awarded_counts and rhos must align")
    total = sum(n * rho for n, rho in zip(awarded_counts, rhos))
    return int(params.bounty_wei * total) + contracts_deployed * params.deployment_cost_wei


def detector_cost(params: IncentiveParameters, n_i: float, rho_i: float) -> int:
    """Eq. 10: co_i = n_i · (c + ρ_i · ψ).

    Submitting costs ``c`` per report regardless of acceptance; the
    transaction fee ψ is only charged for the proportion ρ_i that is
    actually written to the blockchain.
    """
    if n_i < 0:
        raise ValueError("n_i cannot be negative")
    if not 0.0 <= rho_i <= 1.0:
        raise ValueError("rho_i must be in [0, 1]")
    return int(n_i * (params.submission_cost_wei + rho_i * params.report_fee_wei))
