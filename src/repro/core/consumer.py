"""Consumer reference queries — the "authoritative reference" feature.

"Consumers can access the public blockchain for learning the
authoritative references regarding with the security of IoT systems.
They can deploy IoT systems only if no (or less) vulnerability is
discovered" (§IV-A).  The client here reads *only* what a consumer
could read — confirmed chain records — never the simulation's ground
truth, so tests can check that the public view converges to the truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.chain.block import RecordKind
from repro.chain.chain import Blockchain
from repro.core.reports import DetailedReport
from repro.core.sra import SignedSRA
from repro.detection.descriptions import VulnerabilityDescription, deduplicate
from repro.detection.vulnerability import Severity

__all__ = ["SecurityReference", "ProviderTrackRecord", "ConsumerClient"]


@dataclass(frozen=True)
class SecurityReference:
    """What a consumer learns about one release before deploying it."""

    system_name: str
    system_version: str
    provider_id: str
    sra_confirmed: bool
    vulnerabilities: Tuple[VulnerabilityDescription, ...]

    @property
    def vulnerability_count(self) -> int:
        """Distinct confirmed vulnerabilities."""
        return len(self.vulnerabilities)

    @property
    def is_clean_so_far(self) -> bool:
        """True if no confirmed vulnerability has been recorded yet."""
        return not self.vulnerabilities

    def counts_by_severity(self) -> Dict[Severity, int]:
        """High/medium/low tallies for display."""
        counts = {severity: 0 for severity in Severity}
        for description in self.vulnerabilities:
            counts[description.severity] += 1
        return counts


@dataclass(frozen=True)
class ProviderTrackRecord:
    """A provider's accountability history, derived from the chain."""

    provider_id: str
    releases: int
    vulnerable_releases: int
    total_confirmed_vulnerabilities: int

    @property
    def vulnerable_fraction(self) -> float:
        """Observed VP: fraction of releases with confirmed flaws."""
        if self.releases == 0:
            return 0.0
        return self.vulnerable_releases / self.releases


class ConsumerClient:
    """Reads the public chain to answer deploy-or-not questions."""

    def __init__(self, chain: Blockchain) -> None:
        self.chain = chain

    def _confirmed_sras(self) -> List[SignedSRA]:
        return [
            SignedSRA.from_payload(record.payload)
            for record in self.chain.confirmed_records(RecordKind.SRA)
        ]

    def _confirmed_detailed_reports(self) -> List[DetailedReport]:
        return [
            DetailedReport.from_payload(record.payload)
            for record in self.chain.confirmed_records(RecordKind.DETAILED_REPORT)
        ]

    def lookup(
        self, system_name: str, system_version: str
    ) -> Optional[SecurityReference]:
        """The authoritative reference for one release, or None if no
        confirmed SRA exists for it yet.

        Aggregates across all confirmed SRAs of the release — a
        re-detection round (SmartRetro-style) publishes a second SRA
        for the same version, and its findings belong to the same
        reference.
        """
        matching = [
            candidate
            for candidate in self._confirmed_sras()
            if candidate.body.system_name == system_name
            and candidate.body.system_version == system_version
        ]
        if not matching:
            return None
        sra_ids = {sra.sra_id for sra in matching}
        descriptions: List[VulnerabilityDescription] = []
        for report in self._confirmed_detailed_reports():
            if report.sra_id in sra_ids:
                descriptions.extend(report.descriptions)
        return SecurityReference(
            system_name=system_name,
            system_version=system_version,
            provider_id=matching[0].body.provider_id,
            sra_confirmed=True,
            vulnerabilities=tuple(deduplicate(descriptions)),
        )

    def should_deploy(
        self,
        system_name: str,
        system_version: str,
        max_vulnerabilities: int = 0,
    ) -> bool:
        """The consumer's decision rule: deploy only if the confirmed
        vulnerability count is within tolerance (and the SRA exists)."""
        reference = self.lookup(system_name, system_version)
        if reference is None:
            return False  # unannounced software: never deploy
        return reference.vulnerability_count <= max_vulnerabilities

    def provider_track_record(self, provider_id: str) -> ProviderTrackRecord:
        """Accountability summary over all of a provider's releases."""
        sras = [s for s in self._confirmed_sras() if s.body.provider_id == provider_id]
        reports = self._confirmed_detailed_reports()
        vulnerable = 0
        total_flaws = 0
        for sra in sras:
            keys = set()
            for report in reports:
                if report.sra_id == sra.sra_id:
                    keys.update(report.vulnerability_keys())
            if keys:
                vulnerable += 1
                total_flaws += len(keys)
        return ProviderTrackRecord(
            provider_id=provider_id,
            releases=len(sras),
            vulnerable_releases=vulnerable,
            total_confirmed_vulnerabilities=total_flaws,
        )
