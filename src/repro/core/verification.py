"""Algorithm 1 — verification of detection reports.

Providers verify every received R† and R* before recording it:

* recompute the report identifier and compare (integrity);
* check the detector's signature against its registered key
  (authenticity);
* for R*: compare ``H(R*)`` with the ``H_{R*}`` committed in the
  matching R† (binds phase II to phase I — anti-plagiarism and
  anti-tampering), then run ``AutoVerif`` (correctness, Eq. 6).

Failures *drop* the report — "Drop the initial report R† and break" —
they never crash the verifier; reasons are returned for audit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.core.registry import IdentityRegistry
from repro.core.reports import DetailedReport, InitialReport, detailed_report_hash
from repro.detection.autoverif import AutoVerifEngine
from repro.detection.iot_system import IoTSystem

__all__ = [
    "ReportVerifier",
    "VerdictCode",
    "Verdict",
]


class VerdictCode(enum.Enum):
    """Why a report was accepted or dropped."""

    ACCEPTED = "accepted"
    UNKNOWN_DETECTOR = "unknown_detector"
    BAD_IDENTIFIER = "bad_identifier"
    BAD_SIGNATURE = "bad_signature"
    COMMITMENT_MISMATCH = "commitment_mismatch"
    AUTOVERIF_FAILED = "autoverif_failed"


@dataclass(frozen=True)
class Verdict:
    """The outcome of verifying one report."""

    ok: bool
    code: VerdictCode

    @classmethod
    def accept(cls) -> "Verdict":
        return cls(ok=True, code=VerdictCode.ACCEPTED)

    @classmethod
    def drop(cls, code: VerdictCode) -> "Verdict":
        return cls(ok=False, code=code)


class ReportVerifier:
    """A provider's implementation of Algorithm 1."""

    def __init__(
        self,
        registry: IdentityRegistry,
        autoverif: Optional[AutoVerifEngine] = None,
    ) -> None:
        self.registry = registry
        self.autoverif = autoverif if autoverif is not None else AutoVerifEngine()

    # -- function VERIFICATION FOR R† (Algorithm 1, lines 1-9) ----------

    def verify_initial(self, report: InitialReport) -> Verdict:
        """Integrity + authenticity checks for an initial report."""
        detector_key = self.registry.public_key(report.detector_id)
        if detector_key is None:
            return Verdict.drop(VerdictCode.UNKNOWN_DETECTOR)
        expected_id = InitialReport.compute_id(
            report.sra_id, report.detector_id, report.detailed_hash, report.wallet
        )
        if expected_id != report.report_id:
            return Verdict.drop(VerdictCode.BAD_IDENTIFIER)
        if not detector_key.verify(report.report_id, report.signature):
            return Verdict.drop(VerdictCode.BAD_SIGNATURE)
        return Verdict.accept()

    # -- function VERIFICATION FOR R* (Algorithm 1, lines 10-24) --------

    def verify_detailed(
        self,
        report: DetailedReport,
        initial: InitialReport,
        system: IoTSystem,
    ) -> Verdict:
        """Full phase-II verification against the matching R† and the
        released system.

        Order follows Algorithm 1: identifier, signature, commitment
        cross-check (``H_{R*} == H(R*)``), then ``AutoVerif``.
        """
        detector_key = self.registry.public_key(report.detector_id)
        if detector_key is None:
            return Verdict.drop(VerdictCode.UNKNOWN_DETECTOR)
        expected_id = DetailedReport.compute_id(
            report.sra_id, report.detector_id, report.wallet, report.descriptions
        )
        if expected_id != report.report_id:
            return Verdict.drop(VerdictCode.BAD_IDENTIFIER)
        if not detector_key.verify(report.report_id, report.signature):
            return Verdict.drop(VerdictCode.BAD_SIGNATURE)
        if detailed_report_hash(report) != initial.detailed_hash:
            return Verdict.drop(VerdictCode.COMMITMENT_MISMATCH)
        if report.detector_id != initial.detector_id or report.wallet != initial.wallet:
            return Verdict.drop(VerdictCode.COMMITMENT_MISMATCH)
        outcome = self.autoverif.verify(system, report.descriptions)
        if not outcome.verified:
            return Verdict.drop(VerdictCode.AUTOVERIF_FAILED)
        return Verdict.accept()
