"""Identity registry: long-lived keys of IoT entities.

"In SmartCrowd, every IoT entity (e.g., IoT provider, detector, and
consumer) has long-time lived public key pk and private key sk" (§V-A).
Verifiers resolve an entity id (``P_i``, ``D_i``) to its public key
through this registry — the reproduction's stand-in for whatever PKI or
on-chain key registration a deployment would use.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro.crypto.keys import Address, PublicKey

__all__ = ["IdentityRegistry"]


class IdentityRegistry:
    """Maps entity ids to public keys (and payout addresses)."""

    def __init__(self) -> None:
        self._keys: Dict[str, PublicKey] = {}
        self._wallets: Dict[str, Address] = {}

    def __contains__(self, entity_id: str) -> bool:
        return entity_id in self._keys

    def __len__(self) -> int:
        return len(self._keys)

    def register(
        self,
        entity_id: str,
        public_key: PublicKey,
        wallet: Optional[Address] = None,
    ) -> None:
        """Bind an entity id to its long-lived public key.

        Re-registering an id with a *different* key is rejected —
        identities are long-lived, and allowing silent rebinding would
        let an attacker hijack a detector's payouts.
        """
        existing = self._keys.get(entity_id)
        if existing is not None and existing != public_key:
            raise ValueError(f"identity {entity_id!r} is already bound to another key")
        self._keys[entity_id] = public_key
        self._wallets[entity_id] = wallet if wallet is not None else public_key.address()

    def public_key(self, entity_id: str) -> Optional[PublicKey]:
        """Resolve an id to its public key (None if unknown)."""
        return self._keys.get(entity_id)

    def wallet(self, entity_id: str) -> Optional[Address]:
        """Resolve an id to its payout address."""
        return self._wallets.get(entity_id)

    def entities(self) -> Iterator[Tuple[str, PublicKey]]:
        """Iterate all registered (id, key) pairs."""
        return iter(self._keys.items())
