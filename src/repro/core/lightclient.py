"""Lightweight clients — §V-B's "lightweight detector".

"SmartCrowd introduces lightweight detectors to mitigate constrained
resource, where detectors no longer construct, synchronize and store a
heavyweight blockchain locally."  A light client keeps only block
*headers* (80-ish bytes each instead of full record bodies) and
verifies facts about the chain with Merkle audit paths:

* a detector checks that its R†/R* made it into a confirmed block
  before publishing phase II / expecting payment;
* a constrained consumer verifies a specific detection report it was
  handed (e.g. by an untrusted aggregator) without trusting the
  aggregator.

Full nodes serve proofs via :func:`prove_record`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.chain.block import BlockHeader, ChainRecord, GENESIS_PARENT
from repro.chain.chain import Blockchain
from repro.chain.merkle import MerkleProof
from repro.chain.pow import check_pow

__all__ = ["RecordProof", "HeaderChain", "LightClient", "prove_record"]


@dataclass(frozen=True)
class RecordProof:
    """Everything a light client needs to verify one record's inclusion."""

    record: ChainRecord
    proof: MerkleProof
    block_id: bytes

    def verify_against(self, header: BlockHeader) -> bool:
        """Check the audit path against a header the client trusts."""
        if header.header_hash() != self.block_id:
            return False
        return self.proof.verify(header.merkle_root)


def prove_record(chain: Blockchain, record_id: bytes) -> Optional[RecordProof]:
    """Full-node side: build an inclusion proof for a canonical record."""
    location = chain.locate_record(record_id)
    if location is None:
        return None
    block = chain.get_block(location.block_id)
    assert block is not None
    tree = block.merkle_tree()
    return RecordProof(
        record=block.records[location.index_in_block],
        proof=tree.proof(location.index_in_block),
        block_id=block.block_id,
    )


class HeaderChain:
    """A headers-only replica of the canonical chain.

    Validates the ``PreBlockID``→``CurBlockID`` links and (optionally)
    PoW on each accepted header; total storage is O(headers), never
    record bodies.
    """

    def __init__(self, require_pow: bool = False) -> None:
        self._headers: List[BlockHeader] = []
        self._by_id: Dict[bytes, int] = {}
        self._require_pow = require_pow
        #: Times a sync found the source chain diverging from our tail
        #: (full-node reorg observed from the light side).
        self.reorgs = 0
        #: Optional persistence hooks: ``on_accept(header)`` after each
        #: accepted header, ``on_truncate(height)`` before a reorg drops
        #: the tail.  A durable header store mirrors the chain through
        #: these (see :class:`repro.store.HeaderStore`).
        self.on_accept: Optional[Callable[[BlockHeader], None]] = None
        self.on_truncate: Optional[Callable[[int], None]] = None

    def __len__(self) -> int:
        return len(self._headers)

    @property
    def tip(self) -> Optional[BlockHeader]:
        """The most recent accepted header."""
        return self._headers[-1] if self._headers else None

    def accept(self, header: BlockHeader) -> bool:
        """Append a header if it extends the tip; returns success.

        Header identities are memoized on the headers themselves
        (:meth:`BlockHeader.header_hash`), so link checks, the PoW
        check, and the id index all reuse one SHA-3 computation.
        """
        if not self._headers:
            if header.prev_block_id != GENESIS_PARENT:
                return False
        else:
            previous = self._headers[-1]
            if header.prev_block_id != previous.header_hash():
                return False
            if header.height != previous.height + 1:
                return False
            if header.timestamp < previous.timestamp:
                return False
        header_id = header.header_hash()
        if self._require_pow and header.height > 0 and not check_pow(header):
            return False
        self._headers.append(header)
        self._by_id[header_id] = len(self._headers) - 1
        if self.on_accept is not None:
            self.on_accept(header)
        return True

    def sync_from(self, chain: Blockchain) -> int:
        """Pull any canonical headers we don't have yet; returns count added.

        Header heights index the list directly (the chain is linear), so
        divergence shows up as a different id at a height we already
        store: the stale tail is truncated and the source's branch
        accepted forward — the light-side view of a full-node reorg.
        """
        added = 0
        for block in chain.iter_canonical():
            height = block.header.height
            if height < len(self._headers):
                if self._headers[height].header_hash() == block.block_id:
                    continue
                self._truncate(height)
                self.reorgs += 1
            if self.accept(block.header):
                added += 1
        return added

    def _truncate(self, height: int) -> None:
        """Drop every header at or above ``height`` (reorg tail)."""
        if self.on_truncate is not None:
            self.on_truncate(height)
        for header in self._headers[height:]:
            self._by_id.pop(header.header_hash(), None)
        del self._headers[height:]

    def header(self, block_id: bytes) -> Optional[BlockHeader]:
        """Look up a synced header by block id."""
        index = self._by_id.get(block_id)
        return self._headers[index] if index is not None else None

    def at_height(self, height: int) -> Optional[BlockHeader]:
        """The synced header at ``height`` (None above the tip)."""
        if 0 <= height < len(self._headers):
            return self._headers[height]
        return None

    def confirmations(self, block_id: bytes) -> int:
        """Headers linked after ``block_id`` (-1 if unknown)."""
        index = self._by_id.get(block_id)
        if index is None:
            return -1
        return len(self._headers) - 1 - index


class LightClient:
    """A resource-constrained participant: headers + proofs only."""

    def __init__(self, confirmation_depth: int = 6, require_pow: bool = False) -> None:
        self.headers = HeaderChain(require_pow=require_pow)
        self.confirmation_depth = confirmation_depth

    def sync(self, chain: Blockchain) -> int:
        """Sync headers from a full node's canonical chain."""
        return self.headers.sync_from(chain)

    def verify_record(self, record_proof: RecordProof) -> bool:
        """Check a record's inclusion against our own header set."""
        header = self.headers.header(record_proof.block_id)
        if header is None:
            return False
        return record_proof.verify_against(header)

    def record_is_confirmed(self, record_proof: RecordProof) -> bool:
        """Inclusion *and* burial under ``confirmation_depth`` headers."""
        if not self.verify_record(record_proof):
            return False
        return (
            self.headers.confirmations(record_proof.block_id)
            >= self.confirmation_depth
        )
