"""Message-driven stakeholders: the §IV-B workflow as actual traffic.

:class:`~repro.core.platform.SmartCrowdPlatform` drives the four phases
with a scheduler, which is ideal for economics but hides the
*decentralized process* property (§III-B).  This module is the
faithful front-end: providers, detectors, and consumers are gossip
nodes, and every step is a message —

* a provider broadcasts its signed SRA (``SRA_ANNOUNCE``); every
  relaying node verifies it before forwarding (§V-A);
* detectors fetch the artifact from ``U_l`` (a
  :class:`SystemDirectory` standing in for the download server), scan
  it, and broadcast ``INITIAL_REPORT`` / ``DETAILED_REPORT`` messages
  whose timing follows their find times;
* provider replicas verify received reports with Algorithm 1 before
  mempooling them, mine blocks on their *own* chain copies, and gossip
  ``BLOCK_ANNOUNCE``;
* detectors watch block announcements to learn when their R† is buried
  deep enough to publish R* (§V-B phase II);
* consumers unicast ``CONSUMER_QUERY`` to any provider and get the
  chain-derived reference back.

Contract state is global (it *is* the replicated on-chain state);
confirmation triggers fire once, driven by a designated honest
observer replica — the same substitution the platform documents.
Record fees are omitted here: the economics are validated end-to-end
by the platform; this front-end validates the decentralized dataflow.
"""

from __future__ import annotations

import random
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.compat import warn_deprecated
from repro.chain.block import Block, ChainRecord, RecordKind
from repro.chain.mempool import Mempool
from repro.chain.pow import MiningModel
from repro.contracts.smartcrowd_contract import SmartCrowdContract
from repro.contracts.vm import ContractRuntime
from repro.core.consumer import ConsumerClient, SecurityReference
from repro.core.distributed import ReplicaNode
from repro.core.registry import IdentityRegistry
from repro.core.reports import DetailedReport, InitialReport, build_report_pair
from repro.core.sra import SignedSRA, make_sra
from repro.core.verification import ReportVerifier
from repro.crypto.keys import KeyPair
from repro.detection.autoverif import AutoVerifEngine
from repro.detection.detector import Detector
from repro.detection.iot_system import IoTSystem
from repro.network.gossip import GossipNetwork, build_topology
from repro.network.latency import DEFAULT_LATENCY, LatencyModel
from repro.network.messages import Message, MessageKind
from repro.network.node import Node
from repro.network.simulator import Simulator
from repro.chain.consensus import make_genesis
from repro.store import ChainStore
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.units import to_wei

__all__ = [
    "SystemDirectory",
    "ProviderStakeholder",
    "DetectorStakeholder",
    "ConsumerStakeholder",
    "DecentralizedDeployment",
]

#: Sentinel distinguishing "kwarg not passed" from an explicit value, so
#: the legacy persistence kwargs can warn only when actually used.
_UNSET = object()


def _resolve_deployment_shape(spec, store_dir, store_snapshot_interval):
    """Reconcile ``spec=`` with the legacy persistence kwargs.

    The deployment's fleet shape is fixed by ``provider_shares`` /
    ``detectors`` / ``consumers`` (named stakeholders on a complete
    overlay), so a :class:`~repro.shard.spec.FleetSpec` contributes only
    its persistence knobs here — and must not ask for light replicas or
    sharding, which the stakeholder workflow does not model.
    """
    from repro.shard.spec import FleetSpec

    passed = [
        name
        for name, value in (
            ("store_dir", store_dir),
            ("store_snapshot_interval", store_snapshot_interval),
        )
        if value is not _UNSET
    ]
    if spec is not None:
        if not isinstance(spec, FleetSpec):
            raise TypeError(
                f"spec must be a FleetSpec, got {type(spec).__name__}"
            )
        if passed:
            raise ValueError(
                "DecentralizedDeployment got both spec= and legacy "
                f"persistence kwargs ({', '.join(passed)}); describe the "
                "fleet once"
            )
        if spec.light_nodes:
            raise ValueError(
                "DecentralizedDeployment has no light replicas; use "
                "DistributedChain or ShardedSimulator for "
                f"spec.light_nodes={spec.light_nodes}"
            )
        if spec.shards != 1:
            raise ValueError(
                "DecentralizedDeployment is single-process; run "
                f"spec.shards={spec.shards} through "
                "repro.shard.ShardedSimulator, or pass spec.unsharded()"
            )
        return spec.store_dir, spec.store_snapshot_interval
    for name in passed:
        warn_deprecated(
            f"DecentralizedDeployment({name}=)",
            "DecentralizedDeployment(spec=FleetSpec(...))",
            extra="FleetSpec carries the whole fleet shape in one object.",
        )
    return (
        store_dir if store_dir is not _UNSET else None,
        store_snapshot_interval if store_snapshot_interval is not _UNSET else 512,
    )


class SystemDirectory:
    """The download servers behind ``U_l`` links."""

    def __init__(self) -> None:
        self._systems: Dict[str, IoTSystem] = {}

    def publish(self, system: IoTSystem, link: Optional[str] = None) -> str:
        """Host an artifact; returns the link."""
        url = link or system.download_link
        self._systems[url] = system
        return url

    def fetch(self, link: str) -> Optional[IoTSystem]:
        """Download an artifact by link."""
        return self._systems.get(link)


class ProviderStakeholder(ReplicaNode):
    """A provider: SRA verification, Algorithm 1, mempool, mining."""

    def __init__(
        self,
        name: str,
        genesis: Block,
        registry: IdentityRegistry,
        directory: SystemDirectory,
        autoverif: Optional[AutoVerifEngine] = None,
        keys: Optional[KeyPair] = None,
        store=None,
    ) -> None:
        super().__init__(name, genesis, record_check=None, keys=keys, store=store)
        self.registry = registry
        self.directory = directory
        self.verifier = ReportVerifier(
            registry, autoverif if autoverif is not None else AutoVerifEngine()
        )
        self.mempool = Mempool()
        #: Δ_id -> accepted SRA (this provider's view of live releases).
        self.known_sras: Dict[bytes, SignedSRA] = {}
        #: report id -> accepted initial report (needed to check R*).
        self.known_initials: Dict[bytes, InitialReport] = {}
        self.rejected_messages = 0
        self.records_resubmitted = 0
        self.mempool_records_revalidated = 0
        self.on(MessageKind.SRA_ANNOUNCE, self._on_sra)
        self.on(MessageKind.INITIAL_REPORT, self._on_initial)
        self.on(MessageKind.DETAILED_REPORT, self._on_detailed)
        self.on(MessageKind.CONSUMER_QUERY, self._on_consumer_query)

    # -- message handlers ----------------------------------------------------

    def _on_sra(self, _node: Node, message: Message) -> None:
        sra: SignedSRA = message.payload
        provider_key = self.registry.public_key(sra.body.provider_id)
        if provider_key is None or not sra.verify(provider_key):
            self.rejected_messages += 1
            return
        if sra.sra_id in self.known_sras:
            return
        self.known_sras[sra.sra_id] = sra
        self.mempool.add(
            ChainRecord(
                kind=RecordKind.SRA,
                record_id=sra.sra_id,
                payload=sra.to_payload(),
            )
        )

    def _on_initial(self, _node: Node, message: Message) -> None:
        report: InitialReport = message.payload
        if report.sra_id not in self.known_sras:
            self.rejected_messages += 1
            return
        if not self.verifier.verify_initial(report).ok:
            self.rejected_messages += 1
            return
        self.known_initials[report.report_id] = report
        self.mempool.add(
            ChainRecord(
                kind=RecordKind.INITIAL_REPORT,
                record_id=report.report_id,
                payload=report.to_payload(),
            )
        )

    def _on_detailed(self, _node: Node, message: Message) -> None:
        report: DetailedReport = message.payload
        sra = self.known_sras.get(report.sra_id)
        if sra is None:
            self.rejected_messages += 1
            return
        initial = next(
            (
                candidate
                for candidate in self.known_initials.values()
                if candidate.detailed_hash == report.body_hash()
            ),
            None,
        )
        if initial is None:
            self.rejected_messages += 1
            return
        system = self.directory.fetch(sra.body.download_link)
        if system is None:
            self.rejected_messages += 1
            return
        if not self.verifier.verify_detailed(report, initial, system).ok:
            self.rejected_messages += 1
            return
        self.mempool.add(
            ChainRecord(
                kind=RecordKind.DETAILED_REPORT,
                record_id=report.report_id,
                payload=report.to_payload(),
            )
        )

    def _on_consumer_query(self, _node: Node, message: Message) -> None:
        name, version, reply_to = message.payload
        reference = ConsumerClient(self.chain).lookup(name, version)
        self.send(reply_to, MessageKind.CONSUMER_RESPONSE, reference)

    # -- mining ----------------------------------------------------------------

    def mine(self, timestamp: float, difficulty: int) -> Block:
        """Assemble a block from this provider's own mempool and head."""
        records = self.mempool.select(
            exclude=self.chain.record_ids_on_canonical()
        )
        block = self.assemble_block(timestamp, records, difficulty)
        self.receive_block(block)
        self.mempool.prune(record.record_id for record in records)
        self.broadcast(MessageKind.BLOCK_ANNOUNCE, block)
        return block

    # -- fault recovery ---------------------------------------------------------

    def _on_records_orphaned(self, records) -> None:
        """Reorg stranded mined records: resubmit them to the mempool.

        Without this, a report mined on the losing side of a fork (e.g.
        during a partition) would vanish when the heavier branch wins —
        the detector would be charged its submission without the chain
        ever carrying the result.
        """
        self.records_resubmitted += self.mempool.add_all(records)

    def on_restarted(self) -> None:
        """Recover after a crash: chain resync, then rebuild from it.

        The chain is the authoritative reference (§V-C): after the
        headers-first resync, the provider reconstructs its SRA and
        initial-report views from canonical records it may have missed
        while down, and re-validates the mempool against the adopted
        chain (anything already canonical is dropped).
        """
        super().on_restarted()  # headers-first resync from best peer
        for block in self.chain.iter_canonical():
            for record in block.records:
                if record.kind == RecordKind.SRA and record.record_id not in self.known_sras:
                    sra = SignedSRA.from_payload(record.payload)
                    self.known_sras[sra.sra_id] = sra
                elif (
                    record.kind == RecordKind.INITIAL_REPORT
                    and record.record_id not in self.known_initials
                ):
                    initial = InitialReport.from_payload(record.payload)
                    self.known_initials[initial.report_id] = initial
        mined = [
            record_id
            for record_id in self.mempool.pending_ids()
            if self.chain.locate_record(record_id) is not None
        ]
        self.mempool_records_revalidated += self.mempool.prune(mined)


class DetectorStakeholder(Node):
    """A detector: scan on SRA arrival, two-phase submission by watching
    block announcements for its own R† burial depth.

    With a retry policy attached (see :mod:`repro.faults.retry`), the
    two-phase submission becomes fault tolerant: if a gossiped R† or R*
    does not show up on-chain within the policy deadline, the detector
    re-gossips a salted retransmission with exponential backoff and
    jitter, and polls a reachable replica's canonical chain (SPV-style
    catch-up) so that block announcements lost to crashes or drops
    cannot stall phase II.  Retries are idempotent — report ids are
    content-derived and every downstream layer deduplicates — so a
    retransmission can never double-pay a fee or a bounty.
    """

    def __init__(
        self,
        engine: Detector,
        simulator: Simulator,
        directory: SystemDirectory,
        confirmation_depth: int = 6,
        keys: Optional[KeyPair] = None,
        retry_policy=None,
    ) -> None:
        super().__init__(engine.detector_id, keys)
        self.engine = engine
        self.simulator = simulator
        self.directory = directory
        self.confirmation_depth = confirmation_depth
        #: None disables retries (the pre-chaos fire-and-forget mode).
        self.retry_policy = retry_policy
        self._retry_rng = random.Random(f"retry:{engine.detector_id}")
        #: initial report id -> pending detailed report
        self._pending_detailed: Dict[bytes, DetailedReport] = {}
        #: initial report id -> the initial report (kept for re-gossip)
        self._pending_initial: Dict[bytes, InitialReport] = {}
        #: published detailed reports awaiting on-chain confirmation
        self._awaiting_detailed: Dict[bytes, DetailedReport] = {}
        #: record id -> height at which it was seen in a block
        self._record_heights: Dict[bytes, int] = {}
        self._max_height_seen = 0
        self._published: Set[bytes] = set()
        #: ids of every detailed report this detector has published
        self.detailed_ids: Set[bytes] = set()
        self.scans = 0
        self.initial_retries = 0
        self.detailed_retries = 0
        self.submissions_deferred = 0
        self.reports_abandoned = 0
        self.on(MessageKind.SRA_ANNOUNCE, self._on_sra)
        self.on(MessageKind.BLOCK_ANNOUNCE, self._on_block)

    def _on_sra(self, _node: Node, message: Message) -> None:
        sra: SignedSRA = message.payload
        system = self.directory.fetch(sra.body.download_link)
        if system is None:
            return  # dead link — nothing to analyze
        if not sra.verify_artifact(system.image):
            return  # repackaged artifact: refuse to work on it
        self.scans += 1
        for finding in self.engine.scan(system):
            self.simulator.schedule(
                finding.found_after, self._submit_initial, sra, finding
            )

    def _submit_initial(self, sra: SignedSRA, finding, attempt: int = 0) -> None:
        if self.crashed:
            # The submission timer fired on a dead process.  With a
            # retry policy the submission itself is deferred until the
            # node is (hopefully) back; without one it is simply lost.
            if self.retry_policy is not None and not self.retry_policy.exhausted(attempt):
                self.submissions_deferred += 1
                self.simulator.schedule(
                    self.retry_policy.deadline,
                    self._submit_initial, sra, finding, attempt + 1,
                )
            return
        initial, detailed = build_report_pair(
            sra_id=sra.sra_id,
            detector_id=self.engine.detector_id,
            detector_keys=self.keys,
            wallet=self.keys.address,
            descriptions=(finding.description,),
        )
        self._pending_detailed[initial.report_id] = detailed
        self._pending_initial[initial.report_id] = initial
        self.broadcast(MessageKind.INITIAL_REPORT, initial)
        if self.retry_policy is not None:
            self.simulator.schedule(
                self.retry_policy.deadline, self._check_initial,
                initial.report_id, 0,
            )

    def _on_block(self, _node: Node, message: Message) -> None:
        block: Block = message.payload
        self._max_height_seen = max(self._max_height_seen, block.height)
        for record in block.records:
            self._record_heights.setdefault(record.record_id, block.height)
        self._maybe_publish()

    def _maybe_publish(self) -> None:
        """Publish R* for every committed R† now buried deep enough."""
        for initial_id, detailed in list(self._pending_detailed.items()):
            seen_at = self._record_heights.get(initial_id)
            if seen_at is None or initial_id in self._published:
                continue
            if self._max_height_seen - seen_at >= self.confirmation_depth:
                self._published.add(initial_id)
                self.detailed_ids.add(detailed.report_id)
                self._awaiting_detailed[detailed.report_id] = detailed
                self.broadcast(MessageKind.DETAILED_REPORT, detailed)
                if self.retry_policy is not None:
                    self.simulator.schedule(
                        self.retry_policy.deadline, self._check_detailed,
                        detailed.report_id, 0,
                    )

    # -- retrying two-phase submission (§V-B under faults) --------------------

    def _check_initial(self, initial_id: bytes, attempt: int) -> None:
        """Deadline check: is our R† on-chain yet?  Re-gossip if not."""
        policy = self.retry_policy
        if policy is None or initial_id in self._published:
            return
        if self.crashed:
            if not policy.exhausted(attempt):
                self.simulator.schedule(
                    policy.deadline, self._check_initial, initial_id, attempt + 1
                )
            return
        self._catch_up()
        if initial_id in self._record_heights:
            return  # mined; phase II proceeds from _maybe_publish
        if policy.exhausted(attempt):
            self.reports_abandoned += 1
            return
        initial = self._pending_initial.get(initial_id)
        if initial is None:
            return
        self.initial_retries += 1
        self.broadcast(MessageKind.INITIAL_REPORT, initial, salt=attempt + 1)
        self.simulator.schedule(
            policy.backoff(attempt, self._retry_rng),
            self._check_initial, initial_id, attempt + 1,
        )

    def _check_detailed(self, detailed_id: bytes, attempt: int) -> None:
        """Deadline check: is our published R* on-chain yet?"""
        policy = self.retry_policy
        if policy is None:
            return
        if self.crashed:
            if not policy.exhausted(attempt):
                self.simulator.schedule(
                    policy.deadline, self._check_detailed, detailed_id, attempt + 1
                )
            return
        self._catch_up()
        if detailed_id in self._record_heights:
            self._awaiting_detailed.pop(detailed_id, None)
            return  # confirmed: done with this report
        if policy.exhausted(attempt):
            self.reports_abandoned += 1
            return
        detailed = self._awaiting_detailed.get(detailed_id)
        if detailed is None:
            return
        self.detailed_retries += 1
        self.broadcast(MessageKind.DETAILED_REPORT, detailed, salt=attempt + 1)
        self.simulator.schedule(
            policy.backoff(attempt, self._retry_rng),
            self._check_detailed, detailed_id, attempt + 1,
        )

    def _catch_up(self) -> bool:
        """SPV-style poll: refresh record heights from the heaviest
        reachable replica's canonical chain.

        Block announcements the detector missed (crashed, partitioned,
        or dropped) would otherwise leave ``_record_heights`` stale and
        stall phase II forever.
        """
        network = self.network
        if network is None or not hasattr(network, "neighbors"):
            return False
        best = None
        for peer_name in network.neighbors(self.name):
            try:
                peer = network.node(peer_name)
            except KeyError:
                continue
            if getattr(peer, "crashed", False):
                continue
            chain = getattr(peer, "chain", None)
            if chain is None:
                continue
            if best is None or chain.total_difficulty() > best.total_difficulty():
                best = chain
        if best is None:
            return False
        for block in best.iter_canonical():
            self._max_height_seen = max(self._max_height_seen, block.height)
            for record in block.records:
                self._record_heights.setdefault(record.record_id, block.height)
        self._maybe_publish()
        return True

    def on_restarted(self) -> None:
        """Catch up with the chain the moment the process is back."""
        self._catch_up()


class ConsumerStakeholder(Node):
    """A consumer: unicast reference queries to any provider."""

    def __init__(self, name: str, keys: Optional[KeyPair] = None) -> None:
        super().__init__(name, keys)
        self.responses: List[Optional[SecurityReference]] = []
        self.on(MessageKind.CONSUMER_RESPONSE, self._on_response)

    def query(self, provider_name: str, system_name: str, version: str) -> None:
        """Ask a provider for the reference of a release."""
        self.send(
            provider_name,
            MessageKind.CONSUMER_QUERY,
            (system_name, version, self.name),
        )

    def _on_response(self, _node: Node, message: Message) -> None:
        self.responses.append(message.payload)

    @property
    def latest_reference(self) -> Optional[SecurityReference]:
        """The most recent answer received."""
        return self.responses[-1] if self.responses else None


class DecentralizedDeployment:
    """The whole §IV-B workflow as message traffic over a gossip overlay."""

    def __init__(
        self,
        provider_shares: Mapping[str, float],
        detectors: List[Detector],
        consumers: Tuple[str, ...] = ("consumer-1",),
        difficulty: int = 1000,
        mean_block_time: float = 15.35,
        confirmation_depth: int = 6,
        detection_window: float = 600.0,
        latency: LatencyModel = DEFAULT_LATENCY,
        seed: int = 0,
        retry_policy=None,
        telemetry: Optional[Telemetry] = None,
        store_dir=_UNSET,  # deprecated: pass spec=
        store_snapshot_interval: int = _UNSET,  # deprecated: pass spec=
        spec=None,
    ) -> None:
        store_dir, store_snapshot_interval = _resolve_deployment_shape(
            spec, store_dir, store_snapshot_interval,
        )
        self.spec = spec
        rng = random.Random(seed)
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.simulator = Simulator(telemetry=self.telemetry)
        if self.telemetry.enabled:
            # Trace events are stamped on the simulation clock, not
            # wall time, so traces line up with the chaos plan.
            self.telemetry.bind_clock(self.simulator)
        self.directory = SystemDirectory()
        self.registry = IdentityRegistry()
        self.confirmation_depth = confirmation_depth
        self.detection_window = detection_window

        genesis = make_genesis(difficulty=difficulty)
        names = (
            list(provider_shares)
            + [detector.detector_id for detector in detectors]
            + list(consumers)
        )
        self.network = GossipNetwork(
            self.simulator,
            build_topology(names, "complete"),
            latency=latency,
            rng=random.Random(rng.randrange(2**31)),
            telemetry=self.telemetry,
        )

        # On-chain world state (contracts + balances), shared by design.
        self.runtime = ContractRuntime(telemetry=self.telemetry)
        self._authority = KeyPair.from_seed(f"dd-authority:{seed}".encode())
        self.runtime.state.mint(self._authority.address, to_wei(1_000_000))

        #: With ``store_dir`` set, every provider persists its replica
        #: to ``store_dir/<name>`` and restarts recover from disk.
        self.store_dir = Path(store_dir) if store_dir is not None else None
        self.providers: Dict[str, ProviderStakeholder] = {}
        for name in provider_shares:
            keys = KeyPair.from_seed(f"dd-provider:{name}:{seed}".encode())
            self.registry.register(name, keys.public)
            store = (
                ChainStore(
                    self.store_dir / name,
                    snapshot_interval=store_snapshot_interval,
                    telemetry=self.telemetry,
                )
                if self.store_dir is not None
                else None
            )
            provider = ProviderStakeholder(
                name, genesis, self.registry, self.directory, keys=keys,
                store=store,
            )
            provider.chain.confirmation_depth = confirmation_depth
            provider.mempool.telemetry = self.telemetry
            self.providers[name] = provider
            self.network.attach(provider)
            self.runtime.state.mint(keys.address, to_wei(100_000))

        self.detectors: Dict[str, DetectorStakeholder] = {}
        for engine in detectors:
            keys = KeyPair.from_seed(
                f"dd-detector:{engine.detector_id}:{seed}".encode()
            )
            self.registry.register(engine.detector_id, keys.public)
            stakeholder = DetectorStakeholder(
                engine, self.simulator, self.directory,
                confirmation_depth=confirmation_depth, keys=keys,
                retry_policy=retry_policy,
            )
            self.detectors[engine.detector_id] = stakeholder
            self.network.attach(stakeholder)

        self.consumers: Dict[str, ConsumerStakeholder] = {}
        for name in consumers:
            consumer = ConsumerStakeholder(name)
            self.consumers[name] = consumer
            self.network.attach(consumer)

        self.model = MiningModel.from_shares(
            provider_shares, difficulty=difficulty,
            mean_block_time=mean_block_time,
            rng=random.Random(rng.randrange(2**31)),
            telemetry=self.telemetry,
        )
        self._difficulty = difficulty
        #: Δ_id -> deployed contract address.
        self.contracts: Dict[bytes, "SmartCrowdContract"] = {}
        #: the honest replica whose view fires confirmation triggers.
        self._observer = next(iter(self.providers.values()))
        self._triggered: Set[bytes] = set()

    # -- phase 1 ------------------------------------------------------------

    def announce(
        self,
        provider_name: str,
        system: IoTSystem,
        insurance_ether: int = 1000,
        bounty_ether: int = 250,
    ) -> SignedSRA:
        """Provider hosts the artifact, escrows insurance, gossips Δ."""
        provider = self.providers[provider_name]
        self.directory.publish(system)
        sra = make_sra(
            provider_name, provider.keys, system,
            to_wei(insurance_ether), to_wei(bounty_ether),
        )
        contract = SmartCrowdContract(
            sra_id=sra.sra_id,
            provider=provider.keys.address,
            bounty_per_vulnerability_wei=to_wei(bounty_ether),
            detection_window=self.detection_window,
            trigger_authority=self._authority.address,
        )
        receipt = self.runtime.deploy(
            contract, provider.keys.address, value_wei=to_wei(insurance_ether)
        )
        assert receipt.success, receipt.error
        self.contracts[sra.sra_id] = contract
        provider.deliver(
            Message.wrap(MessageKind.SRA_ANNOUNCE, sra, provider_name)
        )
        provider.broadcast(MessageKind.SRA_ANNOUNCE, sra)
        if self.telemetry.enabled:
            self.telemetry.event(
                "sra.announce",
                provider=provider_name,
                system=f"{system.name}/{system.version}",
                sra_id=sra.sra_id.hex()[:16],
            )
        return sra

    # -- consensus drive ---------------------------------------------------------

    def advance_for(self, duration: float) -> int:
        """Advance simulated time, mining and delivering as we go.

        Returns blocks mined — the unified time-control convention
        shared with :class:`~repro.core.platform.SmartCrowdPlatform`
        and :class:`~repro.network.simulator.Simulator`.
        """
        deadline = self.simulator.now + duration
        mined = 0
        while True:
            outcome = self.model.next_block()
            when = self.simulator.now + outcome.interval
            if when > deadline:
                self.simulator.advance_until(deadline)
                self._fire_confirmations()
                return mined
            self.simulator.advance_until(when)
            winner = self.providers[outcome.winner]
            if winner.crashed:
                # The sampled winner's hashpower is offline: its block is
                # simply never found.  Time still advances.
                continue
            block = winner.mine(when, self._difficulty)
            mined += 1
            if self.telemetry.enabled:
                self.telemetry.event(
                    "block.mined",
                    miner=outcome.winner,
                    height=block.height,
                    records=len(block.records),
                )
            self._fire_confirmations()

    def run_for(self, duration: float) -> int:
        """Deprecated spelling of :meth:`advance_for` (warns once)."""
        warn_deprecated(
            "DecentralizedDeployment.run_for", "DecentralizedDeployment.advance_for"
        )
        return self.advance_for(duration)

    def _fire_confirmations(self) -> None:
        """Trigger contracts for records the observer sees as confirmed."""
        observer = self._alive_observer()
        chain = observer.chain
        self.runtime.advance_time(
            max(self.runtime.block_time, self.simulator.now)
        )
        for block in chain.iter_canonical():
            if not chain.is_confirmed(block.block_id):
                continue
            for record in block.records:
                if record.record_id in self._triggered:
                    continue
                self._triggered.add(record.record_id)
                self._trigger(record)

    def _trigger(self, record: ChainRecord) -> None:
        if record.kind == RecordKind.INITIAL_REPORT:
            report = InitialReport.from_payload(record.payload)
            contract = self.contracts.get(report.sra_id)
            if contract is not None:
                self.runtime.call(
                    contract.address, "confirm_initial_report",
                    self._authority.address, 0, "confirm_report",
                    report.detector_id, report.wallet, report.detailed_hash,
                )
        elif record.kind == RecordKind.DETAILED_REPORT:
            report = DetailedReport.from_payload(record.payload)
            contract = self.contracts.get(report.sra_id)
            if contract is not None:
                self.runtime.call(
                    contract.address, "award_detailed_report",
                    self._authority.address, 0, "confirm_report",
                    report.detector_id, report.wallet, report.body_hash(),
                    report.vulnerability_keys(), True,
                )

    def _alive_observer(self) -> ProviderStakeholder:
        """The designated observer, or any alive replica if it crashed.

        Confirmation triggers only need *some* honest replica's view;
        the ``_triggered`` set keeps them once-only regardless of which
        replica's chain fires them.
        """
        if not self._observer.crashed:
            return self._observer
        for provider in self.providers.values():
            if not provider.crashed:
                return provider
        return self._observer  # everyone down: fall back to the default

    # -- fault control --------------------------------------------------------

    def crash(self, name: str) -> None:
        """Crash a stakeholder process (provider or detector) by name."""
        self.network.crash_node(name)

    def restart(self, name: str) -> None:
        """Restart a crashed stakeholder; its recovery hooks run."""
        self.network.restart_node(name)

    # -- views ---------------------------------------------------------------

    def detector_balance(self, detector_id: str) -> int:
        """A detector's on-chain earnings, wei."""
        return self.runtime.state.balance(self.detectors[detector_id].keys.address)

    def converged(self) -> bool:
        """True if all alive provider replicas share one head."""
        heads = {p.head_id() for p in self.providers.values() if not p.crashed}
        return len(heads) <= 1

    def summary(self) -> Dict[str, object]:
        """Network transport stats merged with deployment counters."""
        stats = self.network.summary()
        stats.update(
            chain_heights={
                name: provider.chain.height
                for name, provider in self.providers.items()
            },
            records_resubmitted=sum(
                p.records_resubmitted for p in self.providers.values()
            ),
            resyncs_performed=sum(
                p.resyncs_performed for p in self.providers.values()
            ),
            initial_retries=sum(
                d.initial_retries for d in self.detectors.values()
            ),
            detailed_retries=sum(
                d.detailed_retries for d in self.detectors.values()
            ),
            reports_abandoned=sum(
                d.reports_abandoned for d in self.detectors.values()
            ),
        )
        return stats
