"""Distributed chain replicas — Phase #3 with real replication.

The economics experiments use a logical shared chain (honest majority,
no partitions ⇒ all replicas converge, see
:mod:`repro.chain.consensus`).  This module implements the replication
itself: every provider is a :class:`ReplicaNode` holding its *own*
:class:`~repro.chain.chain.Blockchain` copy, mining on its own head,
validating every received block (structure + semantic record hook),
buffering out-of-order arrivals, and reorging when a heavier branch
shows up.  This is the machinery behind the paper's claim that "a small
amount of compromised IoT providers will not outplay the whole
SmartCrowd platform" (§V-C) — and the tests drive it through
partitions, byzantine miners, and fork races.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Set

from repro.chain.block import Block, BlockHeader, ChainRecord
from repro.chain.chain import Blockchain, ChainError
from repro.chain.consensus import make_genesis
from repro.chain.pow import MiningModel
from repro.chain.validation import BlockValidator
from repro.core.lightclient import HeaderChain
from repro.crypto.keys import KeyPair
from repro.network.config import NetworkConfig
from repro.network.gossip import GossipNetwork, build_topology
from repro.network.latency import DEFAULT_LATENCY, LatencyModel
from repro.network.messages import Message, MessageKind
from repro.network.node import Node
from repro.network.simulator import Simulator
from repro.store import ChainStore, HeaderStore

__all__ = ["DistributedChain", "LightReplicaNode", "ReplicaNode"]

#: Semantic record check a replica applies before accepting a block.
RecordCheck = Callable[[ChainRecord], bool]

#: Sentinel distinguishing "kwarg not passed" from an explicit value, so
#: the legacy fleet-shape kwargs can warn only when actually used.
_UNSET = object()


def _interleave(full_names: List[str], light_names: List[str]) -> List[str]:
    """Ring order for the fleet: light nodes spread between full nodes.

    Keeps ring-based topologies from forming long light-only arcs, and
    is deterministic (no rng draw) so adding ``light_count=0`` changes
    nothing for existing deployments.
    """
    if not light_names:
        return list(full_names)
    if not full_names:
        return list(light_names)
    per_full = max(1, len(light_names) // len(full_names))
    merged: List[str] = []
    cursor = 0
    for name in full_names:
        merged.append(name)
        take = light_names[cursor : cursor + per_full]
        merged.extend(take)
        cursor += len(take)
    merged.extend(light_names[cursor:])
    return merged


def _resolve_fleet_shape(
    engine: str,
    spec,
    shares: Optional[Mapping[str, float]],
    topology_kind,
    network,
    light_count,
    store_dir,
    store_snapshot_interval,
):
    """Reconcile ``spec=`` with the legacy per-kwarg fleet shape.

    Exactly one spelling may describe the fleet: a
    :class:`~repro.shard.spec.FleetSpec` (the canonical one, shared with
    the sharded engine) or the historical kwargs, which now warn once
    per process via :mod:`repro.compat`.  Returns the resolved
    ``(shares, config, light_count, store_dir, snapshot_interval)``.
    """
    from repro.compat import warn_deprecated
    from repro.shard.spec import FleetSpec

    legacy = {
        "topology_kind": topology_kind,
        "network": network,
        "light_count": light_count,
        "store_dir": store_dir,
        "store_snapshot_interval": store_snapshot_interval,
    }
    passed = [name for name, value in legacy.items() if value is not _UNSET]
    if spec is not None:
        if not isinstance(spec, FleetSpec):
            raise TypeError(
                f"spec must be a FleetSpec, got {type(spec).__name__}"
            )
        if passed:
            raise ValueError(
                f"{engine} got both spec= and legacy fleet kwargs "
                f"({', '.join(passed)}); describe the fleet once"
            )
        if spec.shards != 1:
            raise ValueError(
                f"{engine} is single-process; run spec.shards={spec.shards} "
                "through repro.shard.ShardedSimulator, or pass "
                "spec.unsharded()"
            )
        if shares is None:
            shares = spec.equal_shares()
        elif set(shares) != set(spec.full_names()):
            raise ValueError(
                "shares must cover exactly spec.full_names() "
                f"({spec.full_nodes} providers)"
            )
        return (
            shares,
            spec.network,
            spec.light_nodes,
            spec.store_dir,
            spec.store_snapshot_interval,
        )
    if shares is None:
        raise TypeError(f"{engine} needs shares= or spec=")
    for name in passed:
        warn_deprecated(
            f"{engine}({name}=)",
            f"{engine}(spec=FleetSpec(...))",
            extra="FleetSpec carries the whole fleet shape in one object.",
        )
    if network is not _UNSET and network is not None:
        config = network
    else:
        kind = topology_kind if topology_kind is not _UNSET else "complete"
        config = NetworkConfig(topology=kind)
    return (
        shares,
        config,
        light_count if light_count is not _UNSET else 0,
        store_dir if store_dir is not _UNSET else None,
        store_snapshot_interval if store_snapshot_interval is not _UNSET else 512,
    )


class ReplicaNode(Node):
    """A provider node holding a full chain replica.

    Receives blocks over gossip, validates them against its own copy,
    buffers orphans whose parent has not arrived yet, and serves as the
    mining context (new blocks extend *this* replica's head — two
    replicas with divergent views naturally produce forks).

    The replica also supports the crash/restart lifecycle: the chain is
    durable (it survives a crash, like a database on disk), and on
    restart the node performs a headers-first resync from its best
    reachable peer — the chain-is-the-reference recovery the paper's
    fault-tolerance claim rests on (§V-C).
    """

    def __init__(
        self,
        name: str,
        genesis: Block,
        record_check: Optional[RecordCheck] = None,
        confirmation_depth: int = 6,
        keys: Optional[KeyPair] = None,
        store: Optional[ChainStore] = None,
    ) -> None:
        super().__init__(name, keys)
        self.chain = Blockchain(genesis, confirmation_depth=confirmation_depth)
        self.validator = BlockValidator(
            record_validator=record_check, require_pow=False
        )
        #: Orphans keyed by the missing parent id.
        self._orphans: Dict[bytes, List[Block]] = {}
        self.blocks_accepted = 0
        self.blocks_rejected = 0
        self.resyncs_performed = 0
        self.blocks_resynced = 0
        self._resyncing = False
        #: Optional durable block log.  With a store attached, every
        #: accepted block is logged and a restart rebuilds the chain
        #: from disk before resyncing only the missing suffix (RAM is
        #: assumed lost; without a store the in-memory chain plays the
        #: durable-database role it always did).
        self.store = store
        self._genesis = genesis
        self.store_recoveries = 0
        if store is not None:
            store.ensure_genesis(genesis)
        self.on(MessageKind.BLOCK_ANNOUNCE, self._on_block_message)

    # -- receive path -----------------------------------------------------

    def _on_block_message(self, _node: Node, message: Message) -> None:
        if isinstance(message.payload, Block):
            self.receive_block(message.payload)

    def receive_block(self, block: Block) -> None:
        """Validate and adopt a block; buffer it if the parent is unknown."""
        if block.block_id in self.chain:
            return
        if block.header.prev_block_id not in self.chain:
            self._orphans.setdefault(block.header.prev_block_id, []).append(block)
            # A block more than one ahead of our head means we missed
            # at least one announcement for good (burst loss, crash of
            # every relayer).  Waiting would strand us forever, so pull
            # the gap from the heaviest reachable peer instead — the
            # same headers-first walk used after a restart.
            if block.height > self.chain.height + 1 and not self._resyncing:
                peer = self._best_peer()
                if (
                    peer is not None
                    and peer.chain.total_difficulty() > self.chain.total_difficulty()
                ):
                    self._resyncing = True
                    try:
                        self.resync_from(peer)
                    finally:
                        self._resyncing = False
            return
        result = self.validator.validate(block, self.chain)
        if not result.ok:
            self.blocks_rejected += 1
            return
        old_head_id = self.chain.head.block_id
        try:
            head_moved = self.chain.add_block(block)
        except ChainError:
            self.blocks_rejected += 1
            return
        self.blocks_accepted += 1
        if self.store is not None:
            self.store.append(block)
            self.store.maybe_snapshot(self.chain)
        if head_moved and block.header.prev_block_id != old_head_id:
            # Reorg: the old branch was abandoned.  Records that only
            # existed there must go back to the mempool (subclasses that
            # mine hook this to resubmit).
            stranded = self.chain.orphaned_records(old_head_id)
            if stranded:
                self._on_records_orphaned(stranded)
        self._adopt_orphans(block.block_id)

    def _adopt_orphans(self, parent_id: bytes) -> None:
        """Recursively attach buffered children of a newly known parent."""
        children = self._orphans.pop(parent_id, [])
        for child in children:
            self.receive_block(child)

    def _on_records_orphaned(self, records: List[ChainRecord]) -> None:
        """Hook: records fell off the canonical chain in a reorg."""

    # -- crash recovery ----------------------------------------------------

    def on_restarted(self) -> None:
        """Recover the chain, then resync the missing suffix from peers.

        With a store attached, the process's RAM is assumed gone: the
        store is reopened (running checksum verification and torn-tail
        truncation against whatever happened on disk while the node was
        down) and the chain is rebuilt purely from the log.  The peer
        resync then fetches only the suffix the store lost — headers
        walked back from the peer's tip stop at the first block the
        recovered chain already holds.
        """
        if self.store is not None:
            self._recover_from_store()
        peer = self._best_peer()
        if peer is not None:
            self.resync_from(peer)

    def _recover_from_store(self) -> None:
        """Reopen the store and swap in the chain it can vouch for."""
        assert self.store is not None
        self.store.reopen()
        chain = self.store.load_chain(
            confirmation_depth=self.chain.confirmation_depth
        )
        if chain is None:
            # Store emptied entirely (e.g. log lost): restart from
            # genesis and re-seed the log; peers refill the rest.
            chain = Blockchain(
                self._genesis,
                confirmation_depth=self.chain.confirmation_depth,
            )
            self.store.ensure_genesis(self._genesis)
        self.chain = chain
        self._orphans = {}
        self.store_recoveries += 1

    def _best_peer(self) -> Optional["ReplicaNode"]:
        """The reachable, alive neighbor with the heaviest chain."""
        network = self.network
        if network is None or not hasattr(network, "neighbors"):
            return None
        best: Optional[ReplicaNode] = None
        for peer_name in network.neighbors(self.name):
            try:
                peer = network.node(peer_name)
            except KeyError:
                continue
            if getattr(peer, "crashed", False):
                continue
            peer_chain = getattr(peer, "chain", None)
            if peer_chain is None:
                continue
            if best is None or peer_chain.total_difficulty() > best.chain.total_difficulty():
                best = peer
        return best

    def resync_from(self, peer: "ReplicaNode") -> int:
        """Adopt the peer's canonical chain, headers first.

        Walks the peer's headers back from its tip until hitting a
        block this replica already stores (the sync locator), then
        fetches and validates the missing bodies oldest-first.  A
        heavier adopted branch triggers the normal reorg path, so
        stranded records are resubmitted via
        :meth:`_on_records_orphaned`.  Returns the number of blocks
        fetched.
        """
        peer_chain = peer.chain
        if peer_chain.head.block_id in self.chain:
            return 0  # already have the peer's tip: nothing to fetch
        missing: List[Block] = []
        cursor: Optional[Block] = peer_chain.head
        while cursor is not None and cursor.block_id not in self.chain:
            missing.append(cursor)
            cursor = peer_chain.get_block(cursor.header.prev_block_id)
        fetched = 0
        for block in reversed(missing):
            self.receive_block(block)
            fetched += 1
        self.resyncs_performed += 1
        self.blocks_resynced += fetched
        return fetched

    # -- mine path ---------------------------------------------------------

    def assemble_block(
        self,
        timestamp: float,
        records: tuple = (),
        difficulty: Optional[int] = None,
    ) -> Block:
        """Assemble a block on this replica's current head."""
        head = self.chain.head
        return Block.assemble(
            prev_block_id=head.block_id,
            height=head.height + 1,
            records=records,
            timestamp=max(timestamp, head.header.timestamp),
            difficulty=difficulty if difficulty is not None else head.header.difficulty,
            miner=self.address,
        )

    def head_id(self) -> bytes:
        """This replica's canonical head id."""
        return self.chain.head.block_id



class LightReplicaNode(Node):
    """A headers-only fleet participant (§V-B's lightweight detector).

    Stores a :class:`~repro.core.lightclient.HeaderChain` instead of a
    full replica: block announcements arrive over gossip (inv-pull
    serves it just the 120-byte header; flooding delivers the full
    block, of which only the header is kept).  A header that does not
    extend the tip — a gap from loss, a fork, or a full-node reorg —
    triggers a headers-first resync from its configured full-node
    servers, the SPV-wallet recovery path.
    """

    wants_headers_only = True

    def __init__(
        self,
        name: str,
        genesis: Block,
        keys: Optional[KeyPair] = None,
        store: Optional[HeaderStore] = None,
    ) -> None:
        super().__init__(name, keys)
        self.headers = HeaderChain()
        self.headers.accept(genesis.header)
        self.headers_accepted = 0
        self.header_resyncs = 0
        #: Full nodes this light client can pull headers from (SPV
        #: servers); the heaviest alive one is used on each resync.
        self._servers: List[ReplicaNode] = []
        #: Optional durable header log; mirrors the in-memory header
        #: chain through its accept/truncate hooks.
        self.store = store
        self._genesis_header = genesis.header
        self.store_recoveries = 0
        if store is not None:
            store.ensure_genesis(genesis.header)
            if len(store) > 1:
                # Adopting a pre-populated store: trust the log.
                self.headers = store.load_headers()
            self._attach_store_hooks()
        self.on(MessageKind.BLOCK_ANNOUNCE, self._on_block_message)

    def _attach_store_hooks(self) -> None:
        assert self.store is not None
        self.headers.on_accept = self.store.append
        self.headers.on_truncate = self.store.truncate

    def set_servers(self, servers: List[ReplicaNode]) -> None:
        """Configure the full nodes this client may resync from."""
        self._servers = list(servers)

    def _on_block_message(self, _node: Node, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, BlockHeader):
            header = payload
        else:
            header = getattr(payload, "header", None)
            if not isinstance(header, BlockHeader):
                return
        self.receive_header(header)

    def receive_header(self, header: BlockHeader) -> None:
        """Accept a gossiped header; resync on any gap or divergence."""
        if self.headers.accept(header):
            self.headers_accepted += 1
            return
        if self.headers.header(header.header_hash()) is not None:
            return  # duplicate of something already stored
        self.resync()

    def resync(self) -> int:
        """Headers-first pull from the heaviest alive server."""
        server = self._best_server()
        if server is None:
            return 0
        self.header_resyncs += 1
        return self.headers.sync_from(server.chain)

    def _best_server(self) -> Optional[ReplicaNode]:
        best: Optional[ReplicaNode] = None
        for server in self._servers:
            if server.crashed:
                continue
            if (
                best is None
                or server.chain.total_difficulty() > best.chain.total_difficulty()
            ):
                best = server
        return best

    def on_restarted(self) -> None:
        """Recover after a crash: local header log first, then servers."""
        if self.store is not None:
            self.store.reopen()
            self.headers = self.store.load_headers()
            if len(self.headers) == 0:
                self.headers.accept(self._genesis_header)
                self.store.ensure_genesis(self._genesis_header)
            self._attach_store_hooks()
            self.store_recoveries += 1
        self.resync()

    def tip_id(self) -> bytes:
        """The id of this client's best header (genesis-rooted)."""
        tip = self.headers.tip
        assert tip is not None  # genesis is accepted in __init__
        return tip.header_hash()


@dataclass
class _PendingRecords:
    """Records a byzantine miner wants to sneak into its blocks."""

    records: List[ChainRecord]


class DistributedChain:
    """A network of chain replicas driven by the PoW competition.

    Each sampled mining round: the simulator advances by the block
    interval (delivering in-flight gossip), the winner assembles a
    block on *its own* head, and broadcasts it.  Byzantine winners
    inject their queued records regardless of validity; honest replicas
    with a semantic record check reject such blocks and keep mining the
    clean branch.
    """

    def __init__(
        self,
        shares: Optional[Mapping[str, float]] = None,
        record_check: Optional[RecordCheck] = None,
        byzantine: Optional[Set[str]] = None,
        difficulty: int = 1000,
        mean_block_time: float = 15.35,
        topology_kind: str = _UNSET,  # deprecated: pass spec=
        latency: LatencyModel = DEFAULT_LATENCY,
        confirmation_depth: int = 6,
        seed: int = 0,
        network: Optional[NetworkConfig] = _UNSET,  # deprecated: pass spec=
        light_count: int = _UNSET,  # deprecated: pass spec=
        store_dir: Optional[str] = _UNSET,  # deprecated: pass spec=
        store_snapshot_interval: int = _UNSET,  # deprecated: pass spec=
        spec: Optional["FleetSpec"] = None,
    ) -> None:
        shares, config, light_count, store_dir, store_snapshot_interval = (
            _resolve_fleet_shape(
                "DistributedChain", spec, shares, topology_kind, network,
                light_count, store_dir, store_snapshot_interval,
            )
        )
        #: The :class:`~repro.shard.spec.FleetSpec` this fleet was built
        #: from, when one was given (legacy kwarg construction leaves it
        #: None — those shapes may use arbitrary provider names).
        self.spec = spec
        rng = random.Random(seed)
        self.simulator = Simulator()
        names = list(shares)
        light_names = [f"light-{i}" for i in range(light_count)]
        self.network = GossipNetwork(
            self.simulator,
            build_topology(
                _interleave(names, light_names),
                config.topology,
                degree=config.degree,
                rng=random.Random(rng.randrange(2**31)),
            ),
            latency=latency,
            rng=random.Random(rng.randrange(2**31)),
            config=config,
        )
        genesis = make_genesis(difficulty=difficulty)
        self.byzantine = set(byzantine or ())
        #: With ``store_dir`` set, every replica persists to its own
        #: subdirectory and restarts recover from disk.  Persistence
        #: draws no randomness and schedules no events, so the fleet's
        #: trajectory is bit-identical with or without it.
        self.store_dir = Path(store_dir) if store_dir is not None else None
        self.replicas: Dict[str, ReplicaNode] = {}
        for name in names:
            # Byzantine replicas skip the semantic check on their own
            # copy (they will happily build on forged records).
            check = None if name in self.byzantine else record_check
            store = (
                ChainStore(
                    self.store_dir / name,
                    snapshot_interval=store_snapshot_interval,
                )
                if self.store_dir is not None
                else None
            )
            replica = ReplicaNode(
                name, genesis, record_check=check,
                confirmation_depth=confirmation_depth,
                store=store,
            )
            self.replicas[name] = replica
            self.network.attach(replica)
        self.light_replicas: Dict[str, LightReplicaNode] = {}
        for name in light_names:
            header_store = (
                HeaderStore(self.store_dir / name)
                if self.store_dir is not None
                else None
            )
            light = LightReplicaNode(name, genesis, store=header_store)
            light.set_servers(list(self.replicas.values()))
            self.light_replicas[name] = light
            self.network.attach(light)
        self.model = MiningModel.from_shares(
            shares, difficulty=difficulty, mean_block_time=mean_block_time,
            rng=random.Random(rng.randrange(2**31)),
        )
        self._difficulty = difficulty
        self._byzantine_queue: Dict[str, _PendingRecords] = {
            name: _PendingRecords([]) for name in self.byzantine
        }
        self._honest_mempool: List[ChainRecord] = []
        self.blocks_mined = 0

    # -- record feeds -------------------------------------------------------

    def submit_record(self, record: ChainRecord) -> None:
        """Queue an honest record for inclusion by the next honest miner."""
        self._honest_mempool.append(record)

    def inject_byzantine_record(self, miner: str, record: ChainRecord) -> None:
        """Queue a (typically invalid) record for a byzantine miner."""
        if miner not in self.byzantine:
            raise ValueError(f"{miner} is not byzantine")
        self._byzantine_queue[miner].records.append(record)

    # -- drive ---------------------------------------------------------------

    def crash(self, name: str) -> None:
        """Crash a replica: it stops receiving blocks and cannot mine."""
        self.replicas[name].crash()

    def restart(self, name: str) -> None:
        """Restart a replica; it resyncs its chain from reachable peers."""
        self.replicas[name].restart()

    def step(self) -> Optional[Block]:
        """One mining round: advance time, mine on the winner's head.

        Returns None when the sampled winner is crashed — its hashpower
        is offline, so that round produces no block (time still
        advances and in-flight gossip still settles).
        """
        outcome = self.model.next_block()
        self.simulator.advance_until(self.simulator.now + outcome.interval)
        winner = self.replicas[outcome.winner]
        if winner.crashed:
            return None
        if outcome.winner in self.byzantine:
            queued = self._byzantine_queue[outcome.winner]
            records = tuple(queued.records)
            queued.records = []
        else:
            records = tuple(self._honest_mempool)
            self._honest_mempool = []
        block = winner.assemble_block(
            timestamp=self.simulator.now, records=records,
            difficulty=self._difficulty,
        )
        winner.receive_block(block)
        winner.broadcast(MessageKind.BLOCK_ANNOUNCE, block)
        self.blocks_mined += 1
        return block

    def run_blocks(self, count: int) -> List[Optional[Block]]:
        """Mine ``count`` rounds (entries are None for crashed winners)."""
        return [self.step() for _ in range(count)]

    def settle(self) -> None:
        """Deliver all in-flight gossip."""
        self.simulator.advance()

    # -- inspection ------------------------------------------------------------

    def heads(self) -> Dict[str, bytes]:
        """Each replica's canonical head id."""
        return {name: replica.head_id() for name, replica in self.replicas.items()}

    def converged(self, among: Optional[Set[str]] = None) -> bool:
        """True if (the given) replicas agree on the canonical head."""
        names = among if among is not None else set(self.replicas)
        head_ids = {self.replicas[name].head_id() for name in names}
        return len(head_ids) == 1

    def light_heads(self) -> Dict[str, bytes]:
        """Each light client's best header id."""
        return {name: light.tip_id() for name, light in self.light_replicas.items()}

    def light_converged(self) -> bool:
        """True if all light clients agree with the heaviest full head."""
        if not self.light_replicas:
            return True
        tips = {light.tip_id() for light in self.light_replicas.values()}
        if len(tips) != 1:
            return False
        heaviest = self._heaviest_replica()
        return heaviest is None or tips == {heaviest.head_id()}

    def query_service(self, name: str, **kwargs):
        """A :class:`~repro.query.service.QueryService` over one replica.

        ``name`` may be a full replica (whole query surface, index
        persisted into its durable store when it has one) or a light
        replica (header-backed subset).  The staleness reference
        defaults to the fleet's heaviest alive replica, so responses
        report how far this node lags the canonical chain — e.g. mid
        resync after a restart — and the batch scheduler defaults to
        the fleet simulator.
        """
        from repro.query.service import QueryService  # noqa: PLC0415 - cycle

        if name in self.replicas:
            node = self.replicas[name]
        elif name in self.light_replicas:
            node = self.light_replicas[name]
        else:
            raise KeyError(f"{name!r} names no replica in this fleet")
        kwargs.setdefault("canonical", self._heaviest_replica)
        kwargs.setdefault("simulator", self.simulator)
        return QueryService.connect_node(node, **kwargs)

    def _heaviest_replica(self) -> Optional[ReplicaNode]:
        """The alive replica with the heaviest chain (name-ordered ties)."""
        best: Optional[ReplicaNode] = None
        for name in sorted(self.replicas):
            replica = self.replicas[name]
            if replica.crashed:
                continue
            if (
                best is None
                or replica.chain.total_difficulty() > best.chain.total_difficulty()
            ):
                best = replica
        return best

    def finalize(self) -> None:
        """Settle gossip, then close residual gaps by direct resync.

        Bounded-fanout relays do not guarantee every broadcast reaches
        every node; convergence is restored the way real networks do it
        — each straggler pulls the heaviest chain from a peer.  After
        full nodes agree, light clients resync their header chains.
        """
        self.settle()
        heaviest = self._heaviest_replica()
        if heaviest is None:
            return
        for name in sorted(self.replicas):
            replica = self.replicas[name]
            if replica is heaviest or replica.crashed:
                continue
            if replica.head_id() != heaviest.head_id():
                replica.resync_from(heaviest)
        for name in sorted(self.light_replicas):
            light = self.light_replicas[name]
            if not light.crashed:
                light.resync()

    def honest_names(self) -> Set[str]:
        """Replicas not marked byzantine."""
        return set(self.replicas) - self.byzantine

    def record_on_honest_chains(self, record_id: bytes) -> bool:
        """True if any honest replica has the record on its canonical chain."""
        return any(
            self.replicas[name].chain.locate_record(record_id) is not None
            for name in self.honest_names()
        )
