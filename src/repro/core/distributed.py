"""Distributed chain replicas — Phase #3 with real replication.

The economics experiments use a logical shared chain (honest majority,
no partitions ⇒ all replicas converge, see
:mod:`repro.chain.consensus`).  This module implements the replication
itself: every provider is a :class:`ReplicaNode` holding its *own*
:class:`~repro.chain.chain.Blockchain` copy, mining on its own head,
validating every received block (structure + semantic record hook),
buffering out-of-order arrivals, and reorging when a heavier branch
shows up.  This is the machinery behind the paper's claim that "a small
amount of compromised IoT providers will not outplay the whole
SmartCrowd platform" (§V-C) — and the tests drive it through
partitions, byzantine miners, and fork races.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Set

from repro.chain.block import Block, ChainRecord
from repro.chain.chain import Blockchain, ChainError
from repro.chain.consensus import make_genesis
from repro.chain.pow import MiningModel
from repro.chain.validation import BlockValidator
from repro.crypto.keys import KeyPair
from repro.network.gossip import GossipNetwork, build_topology
from repro.network.latency import DEFAULT_LATENCY, LatencyModel
from repro.network.messages import Message, MessageKind
from repro.network.node import Node
from repro.network.simulator import Simulator

__all__ = ["ReplicaNode", "DistributedChain"]

#: Semantic record check a replica applies before accepting a block.
RecordCheck = Callable[[ChainRecord], bool]


class ReplicaNode(Node):
    """A provider node holding a full chain replica.

    Receives blocks over gossip, validates them against its own copy,
    buffers orphans whose parent has not arrived yet, and serves as the
    mining context (new blocks extend *this* replica's head — two
    replicas with divergent views naturally produce forks).
    """

    def __init__(
        self,
        name: str,
        genesis: Block,
        record_check: Optional[RecordCheck] = None,
        confirmation_depth: int = 6,
        keys: Optional[KeyPair] = None,
    ) -> None:
        super().__init__(name, keys)
        self.chain = Blockchain(genesis, confirmation_depth=confirmation_depth)
        self.validator = BlockValidator(
            record_validator=record_check, require_pow=False
        )
        #: Orphans keyed by the missing parent id.
        self._orphans: Dict[bytes, List[Block]] = {}
        self.blocks_accepted = 0
        self.blocks_rejected = 0
        self.on(MessageKind.BLOCK_ANNOUNCE, self._on_block_message)

    # -- receive path -----------------------------------------------------

    def _on_block_message(self, _node: Node, message: Message) -> None:
        self.receive_block(message.payload)

    def receive_block(self, block: Block) -> None:
        """Validate and adopt a block; buffer it if the parent is unknown."""
        if block.block_id in self.chain:
            return
        if block.header.prev_block_id not in self.chain:
            self._orphans.setdefault(block.header.prev_block_id, []).append(block)
            return
        result = self.validator.validate(block, self.chain)
        if not result.ok:
            self.blocks_rejected += 1
            return
        try:
            self.chain.add_block(block)
        except ChainError:
            self.blocks_rejected += 1
            return
        self.blocks_accepted += 1
        self._adopt_orphans(block.block_id)

    def _adopt_orphans(self, parent_id: bytes) -> None:
        """Recursively attach buffered children of a newly known parent."""
        children = self._orphans.pop(parent_id, [])
        for child in children:
            self.receive_block(child)

    # -- mine path ---------------------------------------------------------

    def assemble_block(
        self,
        timestamp: float,
        records: tuple = (),
        difficulty: Optional[int] = None,
    ) -> Block:
        """Assemble a block on this replica's current head."""
        head = self.chain.head
        return Block.assemble(
            prev_block_id=head.block_id,
            height=head.height + 1,
            records=records,
            timestamp=max(timestamp, head.header.timestamp),
            difficulty=difficulty if difficulty is not None else head.header.difficulty,
            miner=self.address,
        )

    def head_id(self) -> bytes:
        """This replica's canonical head id."""
        return self.chain.head.block_id


@dataclass
class _PendingRecords:
    """Records a byzantine miner wants to sneak into its blocks."""

    records: List[ChainRecord]


class DistributedChain:
    """A network of chain replicas driven by the PoW competition.

    Each sampled mining round: the simulator advances by the block
    interval (delivering in-flight gossip), the winner assembles a
    block on *its own* head, and broadcasts it.  Byzantine winners
    inject their queued records regardless of validity; honest replicas
    with a semantic record check reject such blocks and keep mining the
    clean branch.
    """

    def __init__(
        self,
        shares: Mapping[str, float],
        record_check: Optional[RecordCheck] = None,
        byzantine: Optional[Set[str]] = None,
        difficulty: int = 1000,
        mean_block_time: float = 15.35,
        topology_kind: str = "complete",
        latency: LatencyModel = DEFAULT_LATENCY,
        confirmation_depth: int = 6,
        seed: int = 0,
    ) -> None:
        rng = random.Random(seed)
        self.simulator = Simulator()
        names = list(shares)
        self.network = GossipNetwork(
            self.simulator,
            build_topology(names, topology_kind, rng=random.Random(rng.randrange(2**31))),
            latency=latency,
            rng=random.Random(rng.randrange(2**31)),
        )
        genesis = make_genesis(difficulty=difficulty)
        self.byzantine = set(byzantine or ())
        self.replicas: Dict[str, ReplicaNode] = {}
        for name in names:
            # Byzantine replicas skip the semantic check on their own
            # copy (they will happily build on forged records).
            check = None if name in self.byzantine else record_check
            replica = ReplicaNode(
                name, genesis, record_check=check,
                confirmation_depth=confirmation_depth,
            )
            self.replicas[name] = replica
            self.network.attach(replica)
        self.model = MiningModel.from_shares(
            shares, difficulty=difficulty, mean_block_time=mean_block_time,
            rng=random.Random(rng.randrange(2**31)),
        )
        self._difficulty = difficulty
        self._byzantine_queue: Dict[str, _PendingRecords] = {
            name: _PendingRecords([]) for name in self.byzantine
        }
        self._honest_mempool: List[ChainRecord] = []
        self.blocks_mined = 0

    # -- record feeds -------------------------------------------------------

    def submit_record(self, record: ChainRecord) -> None:
        """Queue an honest record for inclusion by the next honest miner."""
        self._honest_mempool.append(record)

    def inject_byzantine_record(self, miner: str, record: ChainRecord) -> None:
        """Queue a (typically invalid) record for a byzantine miner."""
        if miner not in self.byzantine:
            raise ValueError(f"{miner} is not byzantine")
        self._byzantine_queue[miner].records.append(record)

    # -- drive ---------------------------------------------------------------

    def step(self) -> Block:
        """One mining round: advance time, mine on the winner's head."""
        outcome = self.model.next_block()
        self.simulator.run_until(self.simulator.now + outcome.interval)
        winner = self.replicas[outcome.winner]
        if outcome.winner in self.byzantine:
            queued = self._byzantine_queue[outcome.winner]
            records = tuple(queued.records)
            queued.records = []
        else:
            records = tuple(self._honest_mempool)
            self._honest_mempool = []
        block = winner.assemble_block(
            timestamp=self.simulator.now, records=records,
            difficulty=self._difficulty,
        )
        winner.receive_block(block)
        winner.broadcast(MessageKind.BLOCK_ANNOUNCE, block)
        self.blocks_mined += 1
        return block

    def run_blocks(self, count: int) -> List[Block]:
        """Mine ``count`` rounds."""
        return [self.step() for _ in range(count)]

    def settle(self) -> None:
        """Deliver all in-flight gossip."""
        self.simulator.run()

    # -- inspection ------------------------------------------------------------

    def heads(self) -> Dict[str, bytes]:
        """Each replica's canonical head id."""
        return {name: replica.head_id() for name, replica in self.replicas.items()}

    def converged(self, among: Optional[Set[str]] = None) -> bool:
        """True if (the given) replicas agree on the canonical head."""
        names = among if among is not None else set(self.replicas)
        head_ids = {self.replicas[name].head_id() for name in names}
        return len(head_ids) == 1

    def honest_names(self) -> Set[str]:
        """Replicas not marked byzantine."""
        return set(self.replicas) - self.byzantine

    def record_on_honest_chains(self, record_id: bytes) -> bool:
        """True if any honest replica has the record on its canonical chain."""
        return any(
            self.replicas[name].chain.locate_record(record_id) is not None
            for name in self.honest_names()
        )
