"""Distributed chain replicas — Phase #3 with real replication.

The economics experiments use a logical shared chain (honest majority,
no partitions ⇒ all replicas converge, see
:mod:`repro.chain.consensus`).  This module implements the replication
itself: every provider is a :class:`ReplicaNode` holding its *own*
:class:`~repro.chain.chain.Blockchain` copy, mining on its own head,
validating every received block (structure + semantic record hook),
buffering out-of-order arrivals, and reorging when a heavier branch
shows up.  This is the machinery behind the paper's claim that "a small
amount of compromised IoT providers will not outplay the whole
SmartCrowd platform" (§V-C) — and the tests drive it through
partitions, byzantine miners, and fork races.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Set

from repro.chain.block import Block, ChainRecord
from repro.chain.chain import Blockchain, ChainError
from repro.chain.consensus import make_genesis
from repro.chain.pow import MiningModel
from repro.chain.validation import BlockValidator
from repro.crypto.keys import KeyPair
from repro.network.gossip import GossipNetwork, build_topology
from repro.network.latency import DEFAULT_LATENCY, LatencyModel
from repro.network.messages import Message, MessageKind
from repro.network.node import Node
from repro.network.simulator import Simulator

__all__ = ["ReplicaNode", "DistributedChain"]

#: Semantic record check a replica applies before accepting a block.
RecordCheck = Callable[[ChainRecord], bool]


class ReplicaNode(Node):
    """A provider node holding a full chain replica.

    Receives blocks over gossip, validates them against its own copy,
    buffers orphans whose parent has not arrived yet, and serves as the
    mining context (new blocks extend *this* replica's head — two
    replicas with divergent views naturally produce forks).

    The replica also supports the crash/restart lifecycle: the chain is
    durable (it survives a crash, like a database on disk), and on
    restart the node performs a headers-first resync from its best
    reachable peer — the chain-is-the-reference recovery the paper's
    fault-tolerance claim rests on (§V-C).
    """

    def __init__(
        self,
        name: str,
        genesis: Block,
        record_check: Optional[RecordCheck] = None,
        confirmation_depth: int = 6,
        keys: Optional[KeyPair] = None,
    ) -> None:
        super().__init__(name, keys)
        self.chain = Blockchain(genesis, confirmation_depth=confirmation_depth)
        self.validator = BlockValidator(
            record_validator=record_check, require_pow=False
        )
        #: Orphans keyed by the missing parent id.
        self._orphans: Dict[bytes, List[Block]] = {}
        self.blocks_accepted = 0
        self.blocks_rejected = 0
        self.resyncs_performed = 0
        self.blocks_resynced = 0
        self._resyncing = False
        self.on(MessageKind.BLOCK_ANNOUNCE, self._on_block_message)

    # -- receive path -----------------------------------------------------

    def _on_block_message(self, _node: Node, message: Message) -> None:
        self.receive_block(message.payload)

    def receive_block(self, block: Block) -> None:
        """Validate and adopt a block; buffer it if the parent is unknown."""
        if block.block_id in self.chain:
            return
        if block.header.prev_block_id not in self.chain:
            self._orphans.setdefault(block.header.prev_block_id, []).append(block)
            # A block more than one ahead of our head means we missed
            # at least one announcement for good (burst loss, crash of
            # every relayer).  Waiting would strand us forever, so pull
            # the gap from the heaviest reachable peer instead — the
            # same headers-first walk used after a restart.
            if block.height > self.chain.height + 1 and not self._resyncing:
                peer = self._best_peer()
                if (
                    peer is not None
                    and peer.chain.total_difficulty() > self.chain.total_difficulty()
                ):
                    self._resyncing = True
                    try:
                        self.resync_from(peer)
                    finally:
                        self._resyncing = False
            return
        result = self.validator.validate(block, self.chain)
        if not result.ok:
            self.blocks_rejected += 1
            return
        old_head_id = self.chain.head.block_id
        try:
            head_moved = self.chain.add_block(block)
        except ChainError:
            self.blocks_rejected += 1
            return
        self.blocks_accepted += 1
        if head_moved and block.header.prev_block_id != old_head_id:
            # Reorg: the old branch was abandoned.  Records that only
            # existed there must go back to the mempool (subclasses that
            # mine hook this to resubmit).
            stranded = self.chain.orphaned_records(old_head_id)
            if stranded:
                self._on_records_orphaned(stranded)
        self._adopt_orphans(block.block_id)

    def _adopt_orphans(self, parent_id: bytes) -> None:
        """Recursively attach buffered children of a newly known parent."""
        children = self._orphans.pop(parent_id, [])
        for child in children:
            self.receive_block(child)

    def _on_records_orphaned(self, records: List[ChainRecord]) -> None:
        """Hook: records fell off the canonical chain in a reorg."""

    # -- crash recovery ----------------------------------------------------

    def on_restarted(self) -> None:
        """Headers-first chain resync from the best reachable peer."""
        peer = self._best_peer()
        if peer is not None:
            self.resync_from(peer)

    def _best_peer(self) -> Optional["ReplicaNode"]:
        """The reachable, alive neighbor with the heaviest chain."""
        network = self.network
        if network is None or not hasattr(network, "neighbors"):
            return None
        best: Optional[ReplicaNode] = None
        for peer_name in network.neighbors(self.name):
            try:
                peer = network.node(peer_name)
            except KeyError:
                continue
            if getattr(peer, "crashed", False):
                continue
            peer_chain = getattr(peer, "chain", None)
            if peer_chain is None:
                continue
            if best is None or peer_chain.total_difficulty() > best.chain.total_difficulty():
                best = peer
        return best

    def resync_from(self, peer: "ReplicaNode") -> int:
        """Adopt the peer's canonical chain, headers first.

        Walks the peer's headers back from its tip until hitting a
        block this replica already stores (the sync locator), then
        fetches and validates the missing bodies oldest-first.  A
        heavier adopted branch triggers the normal reorg path, so
        stranded records are resubmitted via
        :meth:`_on_records_orphaned`.  Returns the number of blocks
        fetched.
        """
        peer_chain = peer.chain
        if peer_chain.head.block_id in self.chain:
            return 0  # already have the peer's tip: nothing to fetch
        missing: List[Block] = []
        cursor: Optional[Block] = peer_chain.head
        while cursor is not None and cursor.block_id not in self.chain:
            missing.append(cursor)
            cursor = peer_chain.get_block(cursor.header.prev_block_id)
        fetched = 0
        for block in reversed(missing):
            self.receive_block(block)
            fetched += 1
        self.resyncs_performed += 1
        self.blocks_resynced += fetched
        return fetched

    # -- mine path ---------------------------------------------------------

    def assemble_block(
        self,
        timestamp: float,
        records: tuple = (),
        difficulty: Optional[int] = None,
    ) -> Block:
        """Assemble a block on this replica's current head."""
        head = self.chain.head
        return Block.assemble(
            prev_block_id=head.block_id,
            height=head.height + 1,
            records=records,
            timestamp=max(timestamp, head.header.timestamp),
            difficulty=difficulty if difficulty is not None else head.header.difficulty,
            miner=self.address,
        )

    def head_id(self) -> bytes:
        """This replica's canonical head id."""
        return self.chain.head.block_id


@dataclass
class _PendingRecords:
    """Records a byzantine miner wants to sneak into its blocks."""

    records: List[ChainRecord]


class DistributedChain:
    """A network of chain replicas driven by the PoW competition.

    Each sampled mining round: the simulator advances by the block
    interval (delivering in-flight gossip), the winner assembles a
    block on *its own* head, and broadcasts it.  Byzantine winners
    inject their queued records regardless of validity; honest replicas
    with a semantic record check reject such blocks and keep mining the
    clean branch.
    """

    def __init__(
        self,
        shares: Mapping[str, float],
        record_check: Optional[RecordCheck] = None,
        byzantine: Optional[Set[str]] = None,
        difficulty: int = 1000,
        mean_block_time: float = 15.35,
        topology_kind: str = "complete",
        latency: LatencyModel = DEFAULT_LATENCY,
        confirmation_depth: int = 6,
        seed: int = 0,
    ) -> None:
        rng = random.Random(seed)
        self.simulator = Simulator()
        names = list(shares)
        self.network = GossipNetwork(
            self.simulator,
            build_topology(names, topology_kind, rng=random.Random(rng.randrange(2**31))),
            latency=latency,
            rng=random.Random(rng.randrange(2**31)),
        )
        genesis = make_genesis(difficulty=difficulty)
        self.byzantine = set(byzantine or ())
        self.replicas: Dict[str, ReplicaNode] = {}
        for name in names:
            # Byzantine replicas skip the semantic check on their own
            # copy (they will happily build on forged records).
            check = None if name in self.byzantine else record_check
            replica = ReplicaNode(
                name, genesis, record_check=check,
                confirmation_depth=confirmation_depth,
            )
            self.replicas[name] = replica
            self.network.attach(replica)
        self.model = MiningModel.from_shares(
            shares, difficulty=difficulty, mean_block_time=mean_block_time,
            rng=random.Random(rng.randrange(2**31)),
        )
        self._difficulty = difficulty
        self._byzantine_queue: Dict[str, _PendingRecords] = {
            name: _PendingRecords([]) for name in self.byzantine
        }
        self._honest_mempool: List[ChainRecord] = []
        self.blocks_mined = 0

    # -- record feeds -------------------------------------------------------

    def submit_record(self, record: ChainRecord) -> None:
        """Queue an honest record for inclusion by the next honest miner."""
        self._honest_mempool.append(record)

    def inject_byzantine_record(self, miner: str, record: ChainRecord) -> None:
        """Queue a (typically invalid) record for a byzantine miner."""
        if miner not in self.byzantine:
            raise ValueError(f"{miner} is not byzantine")
        self._byzantine_queue[miner].records.append(record)

    # -- drive ---------------------------------------------------------------

    def crash(self, name: str) -> None:
        """Crash a replica: it stops receiving blocks and cannot mine."""
        self.replicas[name].crash()

    def restart(self, name: str) -> None:
        """Restart a replica; it resyncs its chain from reachable peers."""
        self.replicas[name].restart()

    def step(self) -> Optional[Block]:
        """One mining round: advance time, mine on the winner's head.

        Returns None when the sampled winner is crashed — its hashpower
        is offline, so that round produces no block (time still
        advances and in-flight gossip still settles).
        """
        outcome = self.model.next_block()
        self.simulator.run_until(self.simulator.now + outcome.interval)
        winner = self.replicas[outcome.winner]
        if winner.crashed:
            return None
        if outcome.winner in self.byzantine:
            queued = self._byzantine_queue[outcome.winner]
            records = tuple(queued.records)
            queued.records = []
        else:
            records = tuple(self._honest_mempool)
            self._honest_mempool = []
        block = winner.assemble_block(
            timestamp=self.simulator.now, records=records,
            difficulty=self._difficulty,
        )
        winner.receive_block(block)
        winner.broadcast(MessageKind.BLOCK_ANNOUNCE, block)
        self.blocks_mined += 1
        return block

    def run_blocks(self, count: int) -> List[Optional[Block]]:
        """Mine ``count`` rounds (entries are None for crashed winners)."""
        return [self.step() for _ in range(count)]

    def settle(self) -> None:
        """Deliver all in-flight gossip."""
        self.simulator.run()

    # -- inspection ------------------------------------------------------------

    def heads(self) -> Dict[str, bytes]:
        """Each replica's canonical head id."""
        return {name: replica.head_id() for name, replica in self.replicas.items()}

    def converged(self, among: Optional[Set[str]] = None) -> bool:
        """True if (the given) replicas agree on the canonical head."""
        names = among if among is not None else set(self.replicas)
        head_ids = {self.replicas[name].head_id() for name in names}
        return len(head_ids) == 1

    def honest_names(self) -> Set[str]:
        """Replicas not marked byzantine."""
        return set(self.replicas) - self.byzantine

    def record_on_honest_chains(self, record_id: bytes) -> bool:
        """True if any honest replica has the record on its canonical chain."""
        return any(
            self.replicas[name].chain.locate_record(record_id) is not None
            for name in self.honest_names()
        )
