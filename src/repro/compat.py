"""Deprecation plumbing for public-API renames.

The time-control unification (``schedule_at`` / ``advance_until`` /
``advance_for`` across the simulator, the platform, and the chaos
deployment) keeps every old spelling working through thin shims that
warn **once per process per spelling** — loud enough to drive
migration, quiet enough not to flood a long experiment log.
"""

from __future__ import annotations

import warnings
from typing import Set

__all__ = ["warn_deprecated"]

#: Spellings that have already warned this process.
_WARNED: Set[str] = set()


def warn_deprecated(old: str, new: str, extra: str = "") -> None:
    """Emit a one-time :class:`DeprecationWarning` for a renamed API.

    ``old`` identifies the deprecated spelling (e.g.
    ``"SmartCrowdPlatform.schedule"``); the first call warns, later
    calls are silent.  ``extra`` is appended to the message verbatim.
    """
    if old in _WARNED:
        return
    _WARNED.add(old)
    message = f"{old} is deprecated; use {new} instead."
    if extra:
        message += f" {extra}"
    warnings.warn(message, DeprecationWarning, stacklevel=3)


def _reset_warned() -> None:
    """Test hook: forget which spellings have warned."""
    _WARNED.clear()
