"""Command-line demo: ``python -m repro [options]``.

Runs a configurable SmartCrowd campaign — providers releasing systems
at a chosen vulnerability proportion, the detector fleet racing, the
contracts paying — and prints the economic summary plus the consumer
view.  The quickest way to see the whole system move.
"""

from __future__ import annotations

import argparse
import random
import sys

from repro import ConsumerClient, PlatformConfig, SmartCrowdPlatform, from_wei, to_wei
from repro.chain.pow import PAPER_HASHPOWER_SHARES
from repro.contracts.explorer import Explorer
from repro.detection import build_detector_fleet
from repro.detection.corpus import ReleaseCorpus, ReleaseCorpusConfig


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run a SmartCrowd campaign (ICDCS 2019 reproduction).",
    )
    parser.add_argument("--releases", type=int, default=6, help="SRAs to announce")
    parser.add_argument("--vp", type=float, default=0.4,
                        help="vulnerability proportion of releases")
    parser.add_argument("--insurance", type=int, default=1000,
                        help="insurance per release, ether")
    parser.add_argument("--window", type=float, default=600.0,
                        help="detection window, seconds")
    parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    platform = SmartCrowdPlatform(
        PAPER_HASHPOWER_SHARES,
        build_detector_fleet(seed=args.seed),
        PlatformConfig(seed=args.seed, detection_window=args.window),
    )
    corpus = ReleaseCorpus(
        ReleaseCorpusConfig(
            vulnerability_proportion=args.vp,
            mean_vulnerabilities=3.0,
            release_period=args.window,
        ),
        seed=args.seed,
    )
    rng = random.Random(args.seed)
    providers = sorted(PAPER_HASHPOWER_SHARES)
    systems = []
    for index in range(args.releases):
        system = corpus.next_release()
        systems.append(system)
        platform.announce_release(
            rng.choice(providers), system,
            insurance_wei=to_wei(args.insurance), at_time=index * args.window,
        )
    platform.advance_until(args.releases * args.window + args.window)
    platform.finish_pending()

    explorer = Explorer(platform.runtime)
    consumer = ConsumerClient(platform.mining.chain)

    print(f"campaign: {args.releases} releases, VP={args.vp}, "
          f"insurance={args.insurance} ETH, seed={args.seed}")
    print(f"simulated time: {platform.now / 60:.0f} min, "
          f"blocks mined: {sum(platform.blocks_mined.values())}")
    print(f"observed vulnerable fraction: "
          f"{explorer.vulnerable_release_fraction():.2f}\n")

    print("providers (mined income vs punishments, ETH):")
    for name in providers:
        print(f"  {name:<12} +{from_wei(platform.provider_incentives_wei(name)):>8.1f}"
              f"  -{from_wei(platform.punishments_wei[name]):>8.1f}")

    print("\ndetector leaderboard (ETH):")
    for detector_id, earned in explorer.top_detectors():
        print(f"  {detector_id:<12} {from_wei(earned):>8.0f}")

    print("\nconsumer decisions:")
    for system in systems:
        deploy = consumer.should_deploy(system.name, system.version)
        truth = "vulnerable" if system.is_vulnerable else "clean"
        print(f"  {system.name:<14} ground truth: {truth:<11} "
              f"deploy? {'yes' if deploy else 'NO'}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
