"""Strict hex-argument parsing shared by the RPC and query layers.

Before this module, every call site parsed hex identifiers its own way
(``bytes.fromhex(text.removeprefix("0x"))`` and friends), and the edge
cases disagreed: ``"0x"`` decoded to the *empty* id and came back as a
polite "not found" instead of a malformed-input error, whitespace-laced
strings slipped through (``bytes.fromhex`` ignores spaces), an ``"0X"``
prefix was treated as two hex digits, and odd-length input surfaced a
bare ``ValueError`` in some paths and a typed error in others.

:func:`parse_hex` is the one validator: optional ``0x``/``0X`` prefix,
at least one digit, even length, hex digits only (mixed case fine), and
an optional exact byte length.  Callers pass their own error type so
the RPC layer raises :class:`~repro.rpc.RpcError` and the query layer
:class:`~repro.query.service.QueryError`, both carrying the offending
value verbatim.
"""

from __future__ import annotations

from typing import Optional, Type, Union

__all__ = ["parse_hex"]

_HEX_DIGITS = frozenset("0123456789abcdefABCDEF")


def parse_hex(
    value: Union[str, bytes, bytearray],
    what: str = "value",
    length: Optional[int] = None,
    error: Type[Exception] = ValueError,
) -> bytes:
    """Parse a hex identifier into bytes, rejecting malformed input.

    ``what`` names the argument in error messages ("transaction id",
    "address", ...); ``length``, when given, is the exact byte length
    the decoded value must have; ``error`` is the exception type raised
    — always with the offending value in the message.
    """
    if isinstance(value, (bytes, bytearray)):
        raw = bytes(value)
        if length is not None and len(raw) != length:
            raise error(
                f"malformed {what} {value!r}: expected {length} bytes, "
                f"got {len(raw)}"
            )
        return raw
    if not isinstance(value, str):
        raise error(
            f"{what} must be bytes or 0x hex, got {type(value).__name__}"
        )
    digits = value[2:] if value[:2] in ("0x", "0X") else value
    if not digits:
        detail = (
            "no digits after the 0x prefix" if value else "empty string"
        )
        raise error(f"malformed {what} {value!r}: not valid hex ({detail})")
    if len(digits) % 2:
        raise error(
            f"malformed {what} {value!r}: not valid hex "
            f"(odd length: {len(digits)} digit(s))"
        )
    for char in digits:
        # bytes.fromhex silently skips whitespace; checking characters
        # first keeps "0x00 11" malformed instead of quietly decoded.
        if char not in _HEX_DIGITS:
            raise error(
                f"malformed {what} {value!r}: not valid hex "
                f"({char!r} is not a hex digit)"
            )
    raw = bytes.fromhex(digits)
    if length is not None and len(raw) != length:
        raise error(
            f"malformed {what} {value!r}: expected {length} bytes, "
            f"got {len(raw)}"
        )
    return raw
