"""One frozen description of a whole fleet: :class:`FleetSpec`.

Fleet-shaped experiments kept re-spelling the same knobs — how many
full nodes, how many header-only light replicas, which topology and
relay mode, where (if anywhere) replicas persist, and now how many
shards the fleet is partitioned into.  :class:`FleetSpec` is the one
object every engine consumes:

* :class:`~repro.core.distributed.DistributedChain` (``spec=``),
* :class:`~repro.core.stakeholders.DecentralizedDeployment` (``spec=``),
* :class:`~repro.shard.engine.ShardedSimulator` (its only required
  argument).

The old per-engine kwarg spellings (``topology_kind=``, ``network=``,
``light_count=``, ``store_dir=``, ``store_snapshot_interval=``) keep
working through warn-once deprecation shims (:mod:`repro.compat`),
mirroring the ``advance``/``advance_until`` unification.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.network.config import NetworkConfig

__all__ = ["FleetSpec"]

#: Shard-assignment strategies understood by :mod:`repro.shard.plan`.
_STRATEGIES = ("topology", "consistent_hash")


@dataclass(frozen=True)
class FleetSpec:
    """A fleet's shape: node counts, overlay, persistence, sharding.

    ``full_nodes``/``light_nodes`` size the two participation planes
    (§V-B: full replicas vs lightweight header-only detectors);
    ``network`` carries the overlay topology and relay mode; a set
    ``store_dir`` makes every node persist under ``store_dir/<name>``;
    ``shards`` partitions the fleet for the sharded engine (``1`` means
    unsharded — the value every single-process engine requires);
    ``shard_strategy`` picks how nodes map to shards (``"topology"``
    keeps ring neighbours together, ``"consistent_hash"`` spreads names
    over a hash ring).
    """

    full_nodes: int
    light_nodes: int = 0
    network: NetworkConfig = field(default_factory=NetworkConfig)
    store_dir: Optional[str] = None
    store_snapshot_interval: int = 512
    shards: int = 1
    shard_strategy: str = "topology"

    def __post_init__(self) -> None:
        if self.full_nodes < 1:
            raise ValueError("a fleet needs at least one full node")
        if self.light_nodes < 0:
            raise ValueError("light_nodes must be >= 0")
        if not isinstance(self.network, NetworkConfig):
            raise TypeError(
                f"network must be a NetworkConfig, got {type(self.network).__name__}"
            )
        if self.store_snapshot_interval < 1:
            raise ValueError("store_snapshot_interval must be >= 1")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.shards > self.full_nodes:
            raise ValueError(
                f"cannot split {self.full_nodes} full nodes over "
                f"{self.shards} shards (every shard needs a full node "
                "to mine on and serve its light replicas)"
            )
        if self.shard_strategy not in _STRATEGIES:
            raise ValueError(
                f"unknown shard strategy {self.shard_strategy!r} "
                f"(use one of {_STRATEGIES})"
            )

    # -- derived shape -----------------------------------------------------

    @property
    def nodes(self) -> int:
        """Total fleet size (full + light)."""
        return self.full_nodes + self.light_nodes

    @property
    def light_fraction(self) -> float:
        """Fraction of the fleet participating header-only."""
        return self.light_nodes / self.nodes

    def full_names(self) -> List[str]:
        """The canonical full-node names (``provider-i``)."""
        return [f"provider-{i}" for i in range(self.full_nodes)]

    def light_names(self) -> List[str]:
        """The canonical light-replica names (``light-i``)."""
        return [f"light-{i}" for i in range(self.light_nodes)]

    def equal_shares(self) -> Dict[str, float]:
        """Uniform hashpower over the canonical full-node names."""
        return {name: 1.0 for name in self.full_names()}

    # -- construction helpers ---------------------------------------------

    @classmethod
    def for_fleet(
        cls,
        node_count: int,
        network: Optional[NetworkConfig] = None,
        shards: int = 1,
        store_dir: Optional[str] = None,
        **extra,
    ) -> "FleetSpec":
        """The scale-out split for a fleet of ``node_count`` nodes.

        Mirrors :func:`~repro.experiments.fleet_scale.fleet_split`:
        small fleets (the paper's regime) are all full nodes, large
        fleets keep a 2% full-node backbone (floor 10) and let the rest
        participate header-only.  ``network`` defaults to
        :meth:`NetworkConfig.large_fleet` once the fleet outgrows the
        paper's LAN.
        """
        full, light = _fleet_split(node_count)
        if network is None:
            network = (
                NetworkConfig.large_fleet() if light else NetworkConfig()
            )
        return cls(
            full_nodes=full,
            light_nodes=light,
            network=network,
            shards=shards,
            store_dir=store_dir,
            **extra,
        )

    def with_shards(self, shards: int, strategy: Optional[str] = None) -> "FleetSpec":
        """This spec re-partitioned over ``shards`` shards."""
        if strategy is None:
            return replace(self, shards=shards)
        return replace(self, shards=shards, shard_strategy=strategy)

    def unsharded(self) -> "FleetSpec":
        """This spec with sharding stripped (for single-process engines)."""
        return replace(self, shards=1)


def _fleet_split(node_count: int) -> Tuple[int, int]:
    """(full, light) split — the 2%-backbone heuristic from fleet_scale."""
    if node_count < 1:
        raise ValueError("a fleet needs at least one node")
    if node_count <= 25:
        return node_count, 0
    full = max(10, node_count // 50)
    return full, node_count - full
