"""The sharded fleet engine: partitioned simulation, bit-identical results.

:class:`ShardedSimulator` runs a :class:`~repro.shard.spec.FleetSpec`
fleet partitioned over shards (:mod:`repro.shard.plan`), each shard a
fully independent world — its own :class:`~repro.network.simulator.
Simulator`, :class:`~repro.network.gossip.GossipNetwork` over the full
overlay graph, and replica/light-replica nodes for the members it owns.
Shards advance in lock-step *epochs*: all shards run to the same
deadline, then cross-shard inv/getdata/payload traffic — flattened to
length-prefixed frames (:mod:`repro.shard.frames`) — is exchanged at
the barrier and scheduled into its destination shard.  The control
plane (PoW winner sampling, the honest mempool, crash/restart and disk
faults, scheduled callbacks) stays on the coordinator, exactly where
:class:`~repro.core.distributed.DistributedChain` keeps it.

Determinism contract, in decreasing strength:

1. ``jobs`` is pure parallelism.  ``ShardedSimulator(spec, jobs=N)``
   is seed-for-seed **bit-identical** to ``jobs=1`` for the same spec —
   heads, chain bytes, ledger state, light tips, gossip counters, and
   per-replica counters all match, because workers run the exact code
   the serial path runs and the serial path round-trips every boundary
   frame through the same wire codec.  The ``jobs=1`` run is the
   *parity oracle* the test suite holds every parallel run against.
2. A one-shard fleet is bit-identical to the unsharded engine:
   ``ShardedSimulator(spec.unsharded())`` reproduces
   ``DistributedChain`` draw-for-draw (same rng consumption order,
   same construction order, same mining loop).
3. The shard *count* is part of the experiment configuration, like the
   topology: runs with different shard counts are each internally
   deterministic but not bit-identical to each other, because barrier
   batching quantizes cross-shard arrival times.

Worker processes are persistent (one round-trip per epoch, not per
event) and rebuild their shards from a small picklable blueprint — no
topology graphs or node objects ever cross the process boundary, only
command tuples and frame bytes.
"""

from __future__ import annotations

import heapq
import itertools
import multiprocessing
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

from repro.chain.block import Block, ChainRecord
from repro.chain.chain import Blockchain
from repro.chain.consensus import make_genesis
from repro.chain.pow import MiningModel
from repro.chain.serialization import decode_block, encode_block, export_chain, import_chain
from repro.core.distributed import (
    LightReplicaNode,
    RecordCheck,
    ReplicaNode,
    _interleave,
)
from repro.faults.invariants import confirmed_chain_bytes
from repro.network.gossip import GossipNetwork, build_topology
from repro.network.latency import DEFAULT_LATENCY, LatencyModel
from repro.network.messages import Message, MessageKind
from repro.network.simulator import Simulator
from repro.shard.frames import (
    CrossShardFrame,
    FrameKind,
    decode_frames,
    encode_frames,
)
from repro.shard.plan import ShardPlan, build_plan, derive_shard_seeds
from repro.shard.spec import FleetSpec
from repro.store import ChainStore, HeaderStore
from repro.store.faultinject import (
    drop_index_file,
    drop_snapshots,
    flip_bit,
    tear_frame,
)
from repro.telemetry import Telemetry

__all__ = ["ShardGateway", "ShardState", "ShardedSimulator"]

#: Disk-fault kinds :meth:`ShardedSimulator.inject_store_fault` accepts,
#: mirroring :class:`repro.faults.plan.FaultKind`'s disk faults.
_STORE_FAULTS = ("torn_write", "bit_flip", "drop_snapshot", "drop_index")

#: Settle rounds before declaring the boundary traffic non-quiescent.
#: Dedup guarantees each content item crosses each link at most once,
#: so real runs drain in a handful of rounds; this is a loud backstop.
_MAX_SETTLE_ROUNDS = 100_000


class ShardGateway:
    """A shard's door to the rest of the fleet.

    Installed as :attr:`GossipNetwork.remote_gateway`; collects outbound
    boundary traffic as :class:`~repro.shard.frames.CrossShardFrame`
    records (drained at each barrier) and keeps the content this shard
    has announced across the boundary so returning ``getdata`` pulls can
    be served without re-shipping state.
    """

    __slots__ = ("index", "_owners", "outbox", "content", "_seq")

    def __init__(self, index: int, owners: Mapping[str, int]) -> None:
        self.index = index
        self._owners = owners
        self.outbox: List[CrossShardFrame] = []
        self.content: Dict[bytes, Message] = {}
        self._seq = itertools.count()

    def is_remote(self, name: str) -> bool:
        """True if ``name`` is a fleet member another shard owns."""
        owner = self._owners.get(name)
        return owner is not None and owner != self.index

    def owner_of(self, name: str) -> int:
        """The shard index owning ``name``."""
        return self._owners[name]

    def send_payload(
        self,
        src: str,
        dst: str,
        message: Message,
        arrival: float,
        reduce_for_delivery: bool = False,
    ) -> None:
        """Queue a payload frame (flood push or a served pull)."""
        self.outbox.append(
            CrossShardFrame(
                kind=FrameKind.PAYLOAD,
                src=src,
                dst=dst,
                message_kind=message.kind,
                origin=message.origin,
                dedup_key=message.dedup_key,
                arrival=arrival,
                seq=next(self._seq),
                wants_headers=reduce_for_delivery,
                payload=message.payload,
            )
        )

    def send_inv(self, src: str, dst: str, message: Message, arrival: float) -> None:
        """Queue an inventory frame; cache the content for the pull back."""
        self.content[message.dedup_key] = message
        self.outbox.append(
            CrossShardFrame(
                kind=FrameKind.INV,
                src=src,
                dst=dst,
                message_kind=message.kind,
                origin=message.origin,
                dedup_key=message.dedup_key,
                arrival=arrival,
                seq=next(self._seq),
            )
        )

    def send_getdata(
        self,
        src: str,
        dst: str,
        message_kind: MessageKind,
        origin: str,
        dedup_key: bytes,
        wants_headers: bool,
        arrival: float,
    ) -> None:
        """Queue the pull back to an announcing shard."""
        self.outbox.append(
            CrossShardFrame(
                kind=FrameKind.GETDATA,
                src=src,
                dst=dst,
                message_kind=message_kind,
                origin=origin,
                dedup_key=dedup_key,
                arrival=arrival,
                seq=next(self._seq),
                wants_headers=wants_headers,
            )
        )

    def drain(self) -> Dict[int, bytes]:
        """This epoch's boundary traffic, framed, grouped by destination shard."""
        if not self.outbox:
            return {}
        grouped: Dict[int, List[CrossShardFrame]] = {}
        for frame in self.outbox:
            grouped.setdefault(self._owners[frame.dst], []).append(frame)
        self.outbox = []
        return {dst: encode_frames(frames) for dst, frames in grouped.items()}


class _ChainDonor:
    """The minimal peer shape :meth:`ReplicaNode.resync_from` reads."""

    __slots__ = ("chain",)

    def __init__(self, chain: Blockchain) -> None:
        self.chain = chain


@dataclass(frozen=True)
class _Blueprint:
    """Everything a worker needs to rebuild its shards, picklably.

    Topology graphs and node objects never cross the process boundary:
    each worker re-derives them from the spec and the seeds, which is
    both cheap (topology build is the only real cost) and exact (the
    build is a pure function of the seed).
    """

    spec: FleetSpec
    assignments: Tuple[Tuple[str, ...], ...]
    topo_seed: int
    shard_seeds: Tuple[int, ...]
    difficulty: int
    confirmation_depth: int
    latency: LatencyModel
    record_check: Optional[RecordCheck]
    byzantine: FrozenSet[str]
    telemetry_enabled: bool


class ShardState:
    """One shard's complete world: simulator, overlay, replicas.

    Construction mirrors :class:`~repro.core.distributed.
    DistributedChain` exactly — full replicas first (fleet order), then
    light replicas — so a one-shard fleet is the unsharded engine,
    object for object and rng draw for rng draw.
    """

    def __init__(self, blueprint: _Blueprint, index: int) -> None:
        spec = blueprint.spec
        self.index = index
        self.confirmation_depth = blueprint.confirmation_depth
        self.telemetry = Telemetry() if blueprint.telemetry_enabled else None
        self.simulator = Simulator(telemetry=self.telemetry)
        ring_order = _interleave(spec.full_names(), spec.light_names())
        config = spec.network
        # Every shard builds the same full overlay graph from the same
        # seed; edges whose far end lives elsewhere route through the
        # gateway instead of the local event queue.
        topology = build_topology(
            ring_order,
            config.topology,
            degree=config.degree,
            rng=random.Random(blueprint.topo_seed),
        )
        self.network = GossipNetwork(
            self.simulator,
            topology,
            latency=blueprint.latency,
            rng=random.Random(blueprint.shard_seeds[index]),
            config=config,
            telemetry=self.telemetry,
        )
        plan = ShardPlan(assignments=blueprint.assignments)
        owners = {
            name: shard
            for shard in range(plan.shards)
            for name in plan.members(shard)
        }
        self.gateway = ShardGateway(index, owners)
        if plan.shards > 1:
            self.network.remote_gateway = self.gateway
        genesis = make_genesis(difficulty=blueprint.difficulty)
        self._genesis = genesis
        store_dir = Path(spec.store_dir) if spec.store_dir is not None else None
        full_set = frozenset(spec.full_names())
        members = plan.members(index)
        self.replicas: Dict[str, ReplicaNode] = {}
        for name in (n for n in members if n in full_set):
            check = None if name in blueprint.byzantine else blueprint.record_check
            store = (
                ChainStore(
                    store_dir / name,
                    snapshot_interval=spec.store_snapshot_interval,
                )
                if store_dir is not None
                else None
            )
            replica = ReplicaNode(
                name,
                genesis,
                record_check=check,
                confirmation_depth=blueprint.confirmation_depth,
                store=store,
            )
            self.replicas[name] = replica
            self.network.attach(replica)
        self.light_replicas: Dict[str, LightReplicaNode] = {}
        for name in (n for n in members if n not in full_set):
            header_store = (
                HeaderStore(store_dir / name) if store_dir is not None else None
            )
            light = LightReplicaNode(name, genesis, store=header_store)
            light.set_servers(list(self.replicas.values()))
            self.light_replicas[name] = light
            self.network.attach(light)

    # -- epoch protocol ----------------------------------------------------

    def run_epoch(self, target: float) -> Tuple[int, Dict[int, bytes]]:
        """Advance to the barrier; return (events fired, outbound frames)."""
        fired = self.simulator.advance_until(target)
        return fired, self.gateway.drain()

    def settle_round(self) -> Tuple[int, float, Dict[int, bytes]]:
        """Drain the local queue completely (finalize's settle loop).

        Returns this shard's clock too, so the coordinator can advance
        the fleet clock to the quiescence point, the way an unsharded
        ``settle()`` leaves ``now`` at the last delivered event.
        """
        fired = self.simulator.advance()
        return fired, self.simulator.now, self.gateway.drain()

    def inject(self, blob: bytes, barrier_time: Optional[float]) -> None:
        """Schedule a barrier's worth of inbound frames.

        Arrivals are clamped forward to the barrier (frames produced in
        epoch *k* cannot act before epoch *k*'s end — that quantization
        is exactly why the shard count is part of the configuration);
        during settle, where shard clocks have diverged, the clamp is to
        this shard's own ``now``.
        """
        floor = barrier_time if barrier_time is not None else self.simulator.now
        net = self.network
        for frame in decode_frames(blob):
            when = max(frame.arrival, floor)
            if frame.kind is FrameKind.PAYLOAD:
                self.simulator.schedule_at(
                    when,
                    net.deliver_remote_payload,
                    frame.dst,
                    frame.to_message(),
                    frame.wants_headers,
                )
            elif frame.kind is FrameKind.INV:
                self.simulator.schedule_at(
                    when,
                    net.receive_remote_inv,
                    frame.dst,
                    frame.src,
                    frame.message_kind,
                    frame.origin,
                    frame.dedup_key,
                )
            else:  # GETDATA: dst is the local announcer serving the pull
                message = self.gateway.content.get(frame.dedup_key)
                if message is None:
                    # Content this shard never announced (or a fleet
                    # restart dropped): the pull dies; finalize's direct
                    # resync closes any gap this leaves.
                    continue
                self.simulator.schedule_at(
                    when,
                    net.serve_remote_getdata,
                    frame.dst,
                    frame.src,
                    message,
                    frame.wants_headers,
                )

    # -- control plane -----------------------------------------------------

    def mine(
        self, winner: str, records: Tuple[ChainRecord, ...], difficulty: int
    ) -> Optional[bytes]:
        """The sampled winner extends its own head and announces."""
        replica = self.replicas[winner]
        if replica.crashed:
            return None
        block = replica.assemble_block(
            timestamp=self.simulator.now, records=records, difficulty=difficulty
        )
        replica.receive_block(block)
        replica.broadcast(MessageKind.BLOCK_ANNOUNCE, block)
        return encode_block(block)

    def _node(self, name: str):
        node = self.replicas.get(name) or self.light_replicas.get(name)
        if node is None:
            raise KeyError(f"shard {self.index} does not own {name!r}")
        return node

    def crash(self, name: str) -> None:
        self._node(name).crash()

    def restart(self, name: str) -> None:
        self._node(name).restart()

    def store_fault(self, name: str, kind: str, params: Dict[str, Any]) -> None:
        """Corrupt a (crashed) member's durable store in place."""
        node = self._node(name)
        store = getattr(node, "store", None)
        if store is None:
            raise ValueError(f"{name!r} has no durable store attached")
        if kind == "torn_write":
            tear_frame(store, **params)
        elif kind == "bit_flip":
            flip_bit(store, **params)
        elif kind == "drop_snapshot":
            drop_snapshots(store, **params)
        elif kind == "drop_index":
            drop_index_file(store)
        else:
            raise ValueError(f"unknown store fault {kind!r} (use {_STORE_FAULTS})")

    # -- reconciliation ----------------------------------------------------

    def heaviest_candidate(self) -> Optional[Tuple[int, str, bytes]]:
        """(total difficulty, name, head id) of the best alive replica.

        Name-sorted with strictly-heavier replacement — the same
        tie-break :meth:`DistributedChain._heaviest_replica` applies, so
        the coordinator's global pick over per-shard candidates matches
        what the unsharded engine would have picked over the whole fleet.
        """
        best: Optional[ReplicaNode] = None
        for name in sorted(self.replicas):
            replica = self.replicas[name]
            if replica.crashed:
                continue
            if (
                best is None
                or replica.chain.total_difficulty() > best.chain.total_difficulty()
            ):
                best = replica
        if best is None:
            return None
        return best.chain.total_difficulty(), best.name, best.head_id()

    def export_replica_chain(self, name: str) -> bytes:
        """The named replica's canonical chain, serialized."""
        return export_chain(self.replicas[name].chain)

    def adopt(self, chain_blob: bytes, winner: str) -> None:
        """Close residual gaps against the fleet-wide heaviest chain.

        Mirrors :meth:`DistributedChain.finalize`'s resync pass, with
        the donor being the *imported* winner chain rather than a live
        peer object — byte-identical content, so the walk, the adopted
        blocks, and the resync counters all come out the same.
        """
        donor = _ChainDonor(
            import_chain(chain_blob, confirmation_depth=self.confirmation_depth)
        )
        winner_head = donor.chain.head.block_id
        for name in sorted(self.replicas):
            replica = self.replicas[name]
            if name == winner or replica.crashed:
                continue
            if replica.head_id() != winner_head:
                replica.resync_from(donor)
        for name in sorted(self.light_replicas):
            light = self.light_replicas[name]
            if not light.crashed:
                light.resync()

    # -- inspection --------------------------------------------------------

    def snapshot(self, fields: Tuple[str, ...]) -> Dict[str, Any]:
        """The requested views only, as picklable primitives.

        Field-selective because the views differ wildly in cost: heads
        are one dict lookup per replica, ``chain_bytes`` serializes
        every replica's confirmed chain — a 100k-node bench run must be
        able to poll heads without paying for the latter.
        """
        result: Dict[str, Any] = {}
        for field in fields:
            if field == "heads":
                result[field] = {
                    name: replica.head_id()
                    for name, replica in self.replicas.items()
                }
            elif field == "light_heads":
                result[field] = {
                    name: light.tip_id()
                    for name, light in self.light_replicas.items()
                }
            elif field == "chain_bytes":
                result[field] = {
                    name: confirmed_chain_bytes(replica.chain)
                    for name, replica in self.replicas.items()
                }
            elif field == "candidate":
                result[field] = self.heaviest_candidate()
            elif field == "summary":
                result[field] = self.network.summary()
            elif field == "counters":
                counters: Dict[str, Dict[str, int]] = {}
                for name, replica in self.replicas.items():
                    counters[name] = {
                        "blocks_accepted": replica.blocks_accepted,
                        "blocks_rejected": replica.blocks_rejected,
                        "resyncs_performed": replica.resyncs_performed,
                        "blocks_resynced": replica.blocks_resynced,
                        "crash_count": replica.crash_count,
                        "restart_count": replica.restart_count,
                        "store_recoveries": replica.store_recoveries,
                    }
                for name, light in self.light_replicas.items():
                    counters[name] = {
                        "headers_accepted": light.headers_accepted,
                        "header_resyncs": light.header_resyncs,
                        "crash_count": light.crash_count,
                        "restart_count": light.restart_count,
                        "store_recoveries": light.store_recoveries,
                    }
                result[field] = counters
            else:
                raise ValueError(f"unknown snapshot field {field!r}")
        return result

    def telemetry_payload(self) -> Optional[Dict[str, Any]]:
        return self.telemetry.snapshot_payload() if self.telemetry else None

    def close(self) -> None:
        for node in (*self.replicas.values(), *self.light_replicas.values()):
            store = getattr(node, "store", None)
            if store is not None:
                close = getattr(store, "close", None)
                if close is not None:
                    close()


def _build_states(blueprint: _Blueprint, owned: Tuple[int, ...]) -> Dict[int, ShardState]:
    return {index: ShardState(blueprint, index) for index in owned}


def _shard_worker(conn, blueprint: _Blueprint, owned: Tuple[int, ...]) -> None:
    """Persistent worker: owns a set of shards, serves command tuples."""
    states = _build_states(blueprint, owned)
    try:
        while True:
            command = conn.recv()
            op = command[0]
            if op == "stop":
                for state in states.values():
                    state.close()
                conn.send(("ok", None))
                return
            try:
                if op == "epoch":
                    _, target = command
                    result = {
                        index: states[index].run_epoch(target)
                        for index in sorted(states)
                    }
                elif op == "settle":
                    result = {
                        index: states[index].settle_round()
                        for index in sorted(states)
                    }
                elif op == "collect":
                    _, fields = command
                    result = {
                        index: states[index].snapshot(fields)
                        for index in sorted(states)
                    }
                elif op == "inject":
                    _, barrier_time, per_shard = command
                    for index in sorted(per_shard):
                        states[index].inject(per_shard[index], barrier_time)
                    result = None
                elif op == "mine":
                    _, index, winner, records, difficulty = command
                    result = states[index].mine(winner, records, difficulty)
                elif op == "crash":
                    _, index, name = command
                    states[index].crash(name)
                    result = None
                elif op == "restart":
                    _, index, name = command
                    states[index].restart(name)
                    result = None
                elif op == "store_fault":
                    _, index, name, kind, params = command
                    states[index].store_fault(name, kind, params)
                    result = None
                elif op == "export":
                    _, index, name = command
                    result = states[index].export_replica_chain(name)
                elif op == "adopt":
                    _, blob, winner = command
                    for index in sorted(states):
                        states[index].adopt(blob, winner)
                    result = None
                elif op == "telemetry":
                    result = {
                        index: states[index].telemetry_payload()
                        for index in sorted(states)
                    }
                else:
                    raise ValueError(f"unknown worker command {op!r}")
                conn.send(("ok", result))
            except Exception as exc:  # ship the failure, keep serving
                conn.send(("error", f"{type(exc).__name__}: {exc}"))
    except (EOFError, KeyboardInterrupt):
        pass


class _SerialExecutor:
    """All shards in this process — the parity oracle.

    Frames still round-trip through the wire codec on every exchange, so
    the serial run exercises the exact bytes a worker pipe would carry.
    """

    def __init__(self, blueprint: _Blueprint) -> None:
        self.states = _build_states(
            blueprint, tuple(range(blueprint.spec.shards))
        )

    def run_epoch(self, target: float) -> Tuple[int, Dict[int, Dict[int, bytes]]]:
        fired = 0
        outboxes: Dict[int, Dict[int, bytes]] = {}
        for index in sorted(self.states):
            count, frames = self.states[index].run_epoch(target)
            fired += count
            if frames:
                outboxes[index] = frames
        return fired, outboxes

    def settle_round(self) -> Tuple[int, float, Dict[int, Dict[int, bytes]]]:
        fired = 0
        latest = 0.0
        outboxes: Dict[int, Dict[int, bytes]] = {}
        for index in sorted(self.states):
            count, now, frames = self.states[index].settle_round()
            fired += count
            latest = max(latest, now)
            if frames:
                outboxes[index] = frames
        return fired, latest, outboxes

    def inject(self, routed: Dict[int, bytes], barrier_time: Optional[float]) -> None:
        for index in sorted(routed):
            self.states[index].inject(routed[index], barrier_time)

    def mine(
        self, index: int, winner: str, records: Tuple[ChainRecord, ...], difficulty: int
    ) -> Optional[bytes]:
        return self.states[index].mine(winner, records, difficulty)

    def crash(self, index: int, name: str) -> None:
        self.states[index].crash(name)

    def restart(self, index: int, name: str) -> None:
        self.states[index].restart(name)

    def store_fault(
        self, index: int, name: str, kind: str, params: Dict[str, Any]
    ) -> None:
        self.states[index].store_fault(name, kind, params)

    def export_chain(self, index: int, name: str) -> bytes:
        return self.states[index].export_replica_chain(name)

    def adopt(self, blob: bytes, winner: str) -> None:
        for index in sorted(self.states):
            self.states[index].adopt(blob, winner)

    def collect(self, fields: Tuple[str, ...]) -> Dict[int, Dict[str, Any]]:
        return {
            index: self.states[index].snapshot(fields)
            for index in sorted(self.states)
        }

    def telemetry_payloads(self) -> Dict[int, Optional[Dict[str, Any]]]:
        return {
            index: self.states[index].telemetry_payload()
            for index in sorted(self.states)
        }

    def close(self) -> None:
        for state in self.states.values():
            state.close()


class _ProcessExecutor:
    """Shards spread over persistent worker processes, round-robin."""

    def __init__(self, blueprint: _Blueprint, workers: int) -> None:
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            context = multiprocessing.get_context()
        shards = blueprint.spec.shards
        self._owner: Dict[int, int] = {
            shard: shard % workers for shard in range(shards)
        }
        self._pipes = []
        self._procs = []
        for worker in range(workers):
            owned = tuple(s for s in range(shards) if s % workers == worker)
            parent_conn, child_conn = context.Pipe()
            proc = context.Process(
                target=_shard_worker,
                args=(child_conn, blueprint, owned),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._pipes.append(parent_conn)
            self._procs.append(proc)

    def _gather(self, results: List[Any]) -> List[Any]:
        unwrapped = []
        for status, value in results:
            if status != "ok":
                raise RuntimeError(f"shard worker failed: {value}")
            unwrapped.append(value)
        return unwrapped

    def _broadcast(self, command: Tuple) -> List[Any]:
        for pipe in self._pipes:
            pipe.send(command)
        return self._gather([pipe.recv() for pipe in self._pipes])

    def _send_owner(self, shard: int, command: Tuple) -> Any:
        pipe = self._pipes[self._owner[shard]]
        pipe.send(command)
        return self._gather([pipe.recv()])[0]

    def _merge_shard_maps(self, per_worker: List[Dict[int, Any]]) -> Dict[int, Any]:
        merged: Dict[int, Any] = {}
        for mapping in per_worker:
            merged.update(mapping)
        return merged

    def run_epoch(self, target: float) -> Tuple[int, Dict[int, Dict[int, bytes]]]:
        merged = self._merge_shard_maps(self._broadcast(("epoch", target)))
        fired = sum(count for count, _ in merged.values())
        outboxes = {
            index: frames for index, (count, frames) in merged.items() if frames
        }
        return fired, outboxes

    def settle_round(self) -> Tuple[int, float, Dict[int, Dict[int, bytes]]]:
        merged = self._merge_shard_maps(self._broadcast(("settle",)))
        fired = sum(count for count, _, _ in merged.values())
        latest = max(now for _, now, _ in merged.values())
        outboxes = {
            index: frames for index, (_, _, frames) in merged.items() if frames
        }
        return fired, latest, outboxes

    def inject(self, routed: Dict[int, bytes], barrier_time: Optional[float]) -> None:
        per_worker: Dict[int, Dict[int, bytes]] = {}
        for shard, blob in routed.items():
            per_worker.setdefault(self._owner[shard], {})[shard] = blob
        pending = []
        for worker, mapping in per_worker.items():
            self._pipes[worker].send(("inject", barrier_time, mapping))
            pending.append(self._pipes[worker])
        self._gather([pipe.recv() for pipe in pending])

    def mine(
        self, index: int, winner: str, records: Tuple[ChainRecord, ...], difficulty: int
    ) -> Optional[bytes]:
        return self._send_owner(index, ("mine", index, winner, records, difficulty))

    def crash(self, index: int, name: str) -> None:
        self._send_owner(index, ("crash", index, name))

    def restart(self, index: int, name: str) -> None:
        self._send_owner(index, ("restart", index, name))

    def store_fault(
        self, index: int, name: str, kind: str, params: Dict[str, Any]
    ) -> None:
        self._send_owner(index, ("store_fault", index, name, kind, params))

    def export_chain(self, index: int, name: str) -> bytes:
        return self._send_owner(index, ("export", index, name))

    def adopt(self, blob: bytes, winner: str) -> None:
        self._broadcast(("adopt", blob, winner))

    def collect(self, fields: Tuple[str, ...]) -> Dict[int, Dict[str, Any]]:
        return self._merge_shard_maps(self._broadcast(("collect", fields)))

    def telemetry_payloads(self) -> Dict[int, Optional[Dict[str, Any]]]:
        return self._merge_shard_maps(self._broadcast(("telemetry",)))

    def close(self) -> None:
        for pipe, proc in zip(self._pipes, self._procs):
            try:
                pipe.send(("stop",))
                pipe.recv()
            except (BrokenPipeError, EOFError, OSError):
                pass
            pipe.close()
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - hung worker backstop
                proc.terminate()


class _ControlEvent:
    """A coordinator-scheduled callback, fired at an epoch boundary."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, seq: int, callback, args) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Unschedule (idempotent)."""
        self.cancelled = True

    def __lt__(self, other: "_ControlEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


@dataclass
class _PendingRecords:
    records: List[ChainRecord]


class ShardedSimulator:
    """A partitioned fleet behind the canonical time-control surface.

    Drives a :class:`FleetSpec` fleet the way :class:`DistributedChain`
    drives an unsharded one — ``step``/``run_blocks`` for the mining
    loop, ``submit_record``/``inject_byzantine_record`` for the record
    feeds, ``crash``/``restart``/``inject_store_fault`` for the chaos
    plane, ``finalize`` for convergence — plus the unified clock verbs
    (``advance``/``advance_until``/``advance_for``, ``schedule``/
    ``schedule_at``) so experiments and chaos plans stay engine-agnostic.

    ``jobs`` picks the execution strategy only: 1 runs every shard in
    this process (the parity oracle), >1 spreads shards over that many
    persistent fork workers.  Results are bit-identical either way.

    Coordinator-scheduled callbacks fire *at epoch boundaries*: the
    engine cuts a barrier exactly at each callback's due time, so a
    crash scheduled for ``t`` lands when every shard's clock reads ``t``.
    """

    def __init__(
        self,
        spec: FleetSpec,
        shares: Optional[Mapping[str, float]] = None,
        record_check: Optional[RecordCheck] = None,
        byzantine: Optional[Set[str]] = None,
        difficulty: int = 1000,
        mean_block_time: float = 15.35,
        latency: LatencyModel = DEFAULT_LATENCY,
        confirmation_depth: int = 6,
        seed: int = 0,
        jobs: int = 1,
        barrier_interval: float = 0.25,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if not isinstance(spec, FleetSpec):
            raise TypeError(f"spec must be a FleetSpec, got {type(spec).__name__}")
        if barrier_interval <= 0:
            raise ValueError("barrier_interval must be > 0")
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.spec = spec
        full_names = spec.full_names()
        if shares is None:
            shares = spec.equal_shares()
        elif set(shares) != set(full_names):
            raise ValueError(
                "shares must name exactly the spec's full nodes "
                f"({len(full_names)} providers)"
            )
        self.byzantine = set(byzantine or ())
        unknown = self.byzantine - set(full_names)
        if unknown:
            raise ValueError(f"byzantine names not in the fleet: {sorted(unknown)}")
        # Master rng consumption order matches DistributedChain exactly:
        # topology seed, network seed, model seed.  With one shard the
        # network seed is used directly (derive_shard_seeds' k=1 case),
        # so the unsharded anchor holds draw for draw.
        rng = random.Random(seed)
        topo_seed = rng.randrange(2**31)
        net_base = rng.randrange(2**31)
        model_seed = rng.randrange(2**31)
        ring_order = _interleave(full_names, spec.light_names())
        self._plan = build_plan(spec, ring_order)
        blueprint = _Blueprint(
            spec=spec,
            assignments=self._plan.assignments,
            topo_seed=topo_seed,
            shard_seeds=tuple(derive_shard_seeds(net_base, spec.shards)),
            difficulty=difficulty,
            confirmation_depth=confirmation_depth,
            latency=latency,
            record_check=record_check,
            byzantine=frozenset(self.byzantine),
            telemetry_enabled=telemetry is not None and telemetry.enabled,
        )
        self.model = MiningModel.from_shares(
            shares,
            difficulty=difficulty,
            mean_block_time=mean_block_time,
            rng=random.Random(model_seed),
        )
        workers = min(jobs, spec.shards)
        self.jobs = workers
        if workers > 1:
            self._executor = _ProcessExecutor(blueprint, workers)
        else:
            self._executor = _SerialExecutor(blueprint)
        self.telemetry = telemetry
        self._telemetry_merged = False
        self._difficulty = difficulty
        self._barrier_interval = barrier_interval
        self._now = 0.0
        self._control_heap: List[_ControlEvent] = []
        self._control_seq = itertools.count()
        self._crashed: Set[str] = set()
        self._honest_mempool: List[ChainRecord] = []
        self._byzantine_queue: Dict[str, _PendingRecords] = {
            name: _PendingRecords([]) for name in self.byzantine
        }
        self.blocks_mined = 0
        self._closed = False

    # -- the canonical time-control surface --------------------------------

    @property
    def now(self) -> float:
        """The fleet clock (every shard agrees at barriers)."""
        return self._now

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> _ControlEvent:
        """Run ``callback(*args)`` after ``delay`` fleet seconds."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> _ControlEvent:
        """Run ``callback(*args)`` at an absolute fleet time.

        The callback fires on the coordinator at an epoch boundary cut
        exactly at ``time`` — typically to drive the control plane
        (``crash``/``restart``/``inject_store_fault``/``submit_record``).
        """
        if time < self._now:
            raise ValueError("cannot schedule into the past")
        event = _ControlEvent(time, next(self._control_seq), callback, args)
        heapq.heappush(self._control_heap, event)
        return event

    def _next_control_time(self) -> Optional[float]:
        heap = self._control_heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        return heap[0].time if heap else None

    def _fire_controls(self) -> None:
        heap = self._control_heap
        while heap and (heap[0].cancelled or heap[0].time <= self._now):
            event = heapq.heappop(heap)
            if not event.cancelled:
                event.callback(*event.args)

    def advance_until(self, deadline: float) -> int:
        """Run every shard to ``deadline`` in barrier-separated epochs."""
        fired = 0
        deadline = max(deadline, self._now)
        while True:
            target = min(deadline, self._now + self._barrier_interval)
            next_control = self._next_control_time()
            if next_control is not None and next_control < target:
                target = max(next_control, self._now)
            fired += self._epoch(target)
            self._now = target
            self._fire_controls()
            if self._now >= deadline:
                return fired

    def advance_for(self, duration: float) -> int:
        """Run every shard for the next ``duration`` fleet seconds."""
        return self.advance_until(self._now + duration)

    def advance(self, max_events: Optional[int] = None) -> int:
        """Run the whole fleet to quiescence (cross-shard included)."""
        if max_events is not None:
            raise ValueError(
                "the sharded engine always drains to quiescence; "
                "bound the run with advance_until/advance_for instead"
            )
        fired = self._settle()
        self._fire_controls()
        return fired

    def _epoch(self, target: float) -> int:
        fired, outboxes = self._executor.run_epoch(target)
        routed = self._route(outboxes)
        if routed:
            self._executor.inject(routed, target)
        return fired

    @staticmethod
    def _route(outboxes: Dict[int, Dict[int, bytes]]) -> Dict[int, bytes]:
        """Merge per-source frame blobs per destination, source-ordered.

        Framed blobs concatenate losslessly, and concatenating in shard
        index order makes barrier injection order independent of which
        worker answered first — the heart of the jobs-parity guarantee.
        """
        routed: Dict[int, List[bytes]] = {}
        for src in sorted(outboxes):
            for dst in sorted(outboxes[src]):
                routed.setdefault(dst, []).append(outboxes[src][dst])
        return {dst: b"".join(blobs) for dst, blobs in routed.items()}

    def _settle(self) -> int:
        fired = 0
        for _ in range(_MAX_SETTLE_ROUNDS):
            count, latest, outboxes = self._executor.settle_round()
            fired += count
            # Like an unsharded settle(), the fleet clock lands on the
            # last delivered event, so a subsequent step() advances
            # from quiescence, not from the pre-settle barrier.
            self._now = max(self._now, latest)
            routed = self._route(outboxes)
            if not routed:
                return fired
            self._executor.inject(routed, None)
        raise RuntimeError("cross-shard traffic failed to quiesce")

    # -- record feeds -------------------------------------------------------

    def submit_record(self, record: ChainRecord) -> None:
        """Queue an honest record for the next honest winner's block."""
        self._honest_mempool.append(record)

    def inject_byzantine_record(self, miner: str, record: ChainRecord) -> None:
        """Queue a (typically invalid) record for a byzantine miner."""
        if miner not in self.byzantine:
            raise ValueError(f"{miner} is not byzantine")
        self._byzantine_queue[miner].records.append(record)

    # -- mining drive --------------------------------------------------------

    def step(self) -> Optional[Block]:
        """One mining round, identical in shape to the unsharded engine:
        advance all shards by the sampled interval, then the winner
        (wherever it lives) extends its own head and announces."""
        outcome = self.model.next_block()
        self.advance_until(self._now + outcome.interval)
        if outcome.winner in self._crashed:
            return None
        if outcome.winner in self.byzantine:
            queued = self._byzantine_queue[outcome.winner]
            records = tuple(queued.records)
            queued.records = []
        else:
            records = tuple(self._honest_mempool)
            self._honest_mempool = []
        blob = self._executor.mine(
            self._plan.shard_of(outcome.winner), outcome.winner, records, self._difficulty
        )
        if blob is None:  # pragma: no cover - crash state is coordinator-owned
            return None
        self.blocks_mined += 1
        return decode_block(blob)

    def run_blocks(self, count: int) -> List[Optional[Block]]:
        """Mine ``count`` rounds (entries are None for crashed winners)."""
        return [self.step() for _ in range(count)]

    def settle(self) -> None:
        """Deliver all in-flight gossip, cross-shard frames included."""
        self._settle()

    # -- chaos plane ---------------------------------------------------------

    def crash(self, name: str) -> None:
        """Crash a fleet member (full or light) wherever it lives."""
        self._crashed.add(name)
        self._executor.crash(self._plan.shard_of(name), name)

    def restart(self, name: str) -> None:
        """Restart a crashed member; its in-shard recovery hooks run."""
        self._crashed.discard(name)
        self._executor.restart(self._plan.shard_of(name), name)

    def inject_store_fault(self, name: str, kind: str, **params: Any) -> None:
        """Corrupt a member's durable store (``torn_write``/``bit_flip``/
        ``drop_snapshot``/``drop_index``), as disk damage behind a dead
        process; the harm surfaces at the restart's store recovery."""
        if kind not in _STORE_FAULTS:
            raise ValueError(f"unknown store fault {kind!r} (use {_STORE_FAULTS})")
        self._executor.store_fault(self._plan.shard_of(name), name, kind, params)

    # -- convergence ---------------------------------------------------------

    def finalize(self) -> None:
        """Settle, then converge the fleet on its heaviest chain.

        Cross-shard frames are drained to quiescence; the globally
        heaviest alive replica (difficulty-then-name, the unsharded
        tie-break) exports its canonical chain once; every shard adopts
        it through the normal validated resync path; light replicas
        then resync from their in-shard servers.
        """
        self._settle()
        best = self._global_heaviest()
        if best is None:
            self._merge_telemetry()
            return
        _, winner, _ = best
        blob = self._executor.export_chain(self._plan.shard_of(winner), winner)
        self._executor.adopt(blob, winner)
        self._merge_telemetry()

    def _global_heaviest(self) -> Optional[Tuple[int, str, bytes]]:
        best: Optional[Tuple[int, str, bytes]] = None
        for _, snapshot in sorted(self._executor.collect(("candidate",)).items()):
            candidate = snapshot["candidate"]
            if candidate is None:
                continue
            if (
                best is None
                or candidate[0] > best[0]
                or (candidate[0] == best[0] and candidate[1] < best[1])
            ):
                best = tuple(candidate)
        return best

    def _merge_telemetry(self) -> None:
        if self.telemetry is None or not self.telemetry.enabled:
            return
        if self._telemetry_merged:
            return
        self._telemetry_merged = True
        for _, payload in sorted(self._executor.telemetry_payloads().items()):
            if payload is not None:
                self.telemetry.merge_payload(payload)

    # -- inspection ----------------------------------------------------------

    def _gather(self, field: str) -> Dict[str, Any]:
        """Merge one per-member view across shards, shard-ordered."""
        merged: Dict[str, Any] = {}
        for _, snapshot in sorted(self._executor.collect((field,)).items()):
            merged.update(snapshot[field])
        return merged

    def heads(self) -> Dict[str, bytes]:
        """Each full replica's canonical head id, fleet-wide."""
        return self._gather("heads")

    def light_heads(self) -> Dict[str, bytes]:
        """Each light replica's best header id, fleet-wide."""
        return self._gather("light_heads")

    def chain_bytes(self) -> Dict[str, bytes]:
        """Each full replica's confirmed chain, serialized — the
        bit-level parity artifact the 3-seed suite compares."""
        return self._gather("chain_bytes")

    def replica_counters(self) -> Dict[str, Dict[str, int]]:
        """Per-member accept/reject/resync/lifecycle counters."""
        return self._gather("counters")

    def converged(self, among: Optional[Set[str]] = None) -> bool:
        """True if (the given) full replicas agree on one head."""
        heads = self.heads()
        names = among if among is not None else set(heads)
        return len({heads[name] for name in names}) == 1

    def light_converged(self) -> bool:
        """True if all light tips match the heaviest full head."""
        tips = set(self.light_heads().values())
        if not tips:
            return True
        if len(tips) != 1:
            return False
        best = self._global_heaviest()
        return best is None or tips == {best[2]}

    def export_canonical(self) -> bytes:
        """The heaviest alive replica's canonical chain, serialized —
        feed to :func:`repro.chain.serialization.import_chain` or a
        :class:`~repro.chain.ledger.LedgerStateMachine` replay."""
        best = self._global_heaviest()
        if best is None:
            raise RuntimeError("no alive replica to export from")
        _, winner, _ = best
        return self._executor.export_chain(self._plan.shard_of(winner), winner)

    def summary(self) -> Dict[str, float]:
        """Fleet-wide transport counters (shard summaries merged)."""
        merged: Dict[str, float] = {}
        for summary in self.shard_summaries().values():
            for key, value in summary.items():
                if key == "time":
                    merged[key] = max(merged.get(key, 0.0), value)
                else:
                    merged[key] = merged.get(key, 0) + value
        return merged

    def shard_summaries(self) -> Dict[int, Dict[str, float]]:
        """Per-shard transport counters, for imbalance inspection."""
        return {
            index: snapshot["summary"]
            for index, snapshot in sorted(
                self._executor.collect(("summary",)).items()
            )
        }

    @property
    def shard_states(self) -> Optional[Dict[int, ShardState]]:
        """Direct shard access — serial mode only (None under workers)."""
        if isinstance(self._executor, _SerialExecutor):
            return self._executor.states
        return None

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Stop workers (flushing any stores); safe to call twice."""
        if self._closed:
            return
        self._closed = True
        self._merge_telemetry()
        self._executor.close()

    def __enter__(self) -> "ShardedSimulator":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
