"""Cross-shard traffic as length-prefixed wire frames.

Shards exchange gossip only at epoch barriers, and only as *bytes* —
worker processes share no Python objects — so every inv, getdata, and
payload crossing a shard boundary is flattened through the repo's
framed codec (:mod:`repro.codec`: 4-byte big-endian length prefixes,
delimiter-safe) and re-materialized on the far side.  The serial
``jobs=1`` oracle round-trips frames through the same codec, so the
bytes on the (virtual) wire are identical whether shards run in one
process or many.

Three frame types mirror the inv-pull relay's three wire exchanges:

``inv``
    A content digest announced across the boundary (best-effort, loss
    rolled by the *sending* shard).
``getdata``
    The pull back to the announcing shard; carries whether the
    requester is a light node so the announcer serves the 120-byte
    header instead of the body.
``payload``
    The content itself — a full block, a bare header, or raw bytes —
    also what flood-mode boundary links carry directly.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import Enum
from typing import Any, List, Tuple

from repro.codec import CodecError, pack, unpack
from repro.chain.block import Block, BlockHeader
from repro.chain.serialization import (
    decode_block,
    decode_header,
    encode_block,
    encode_header,
)
from repro.network.messages import Message, MessageKind

__all__ = [
    "CrossShardFrame",
    "FrameError",
    "FrameKind",
    "decode_frame",
    "decode_frames",
    "encode_frame",
    "encode_frames",
]


class FrameError(CodecError):
    """Raised for malformed or untransportable cross-shard frames."""


class FrameKind(Enum):
    """The three boundary exchanges."""

    INV = "inv"
    GETDATA = "getdata"
    PAYLOAD = "payload"


#: Payload body encodings (the frame's ``flags`` field).
_BODY_NONE = 0
_BODY_BLOCK = 1
_BODY_HEADER = 2
_BODY_BYTES = 3


@dataclass(frozen=True)
class CrossShardFrame:
    """One unit of boundary traffic, scheduled for a future arrival.

    ``src``/``dst`` are node names (the link's endpoints); ``arrival``
    is the absolute simulated arrival time (link latency was sampled by
    the sending shard, whose rng owns that edge's outbound draws);
    ``seq`` orders frames from one shard within an epoch so barrier
    injection is deterministic.
    """

    kind: FrameKind
    src: str
    dst: str
    message_kind: MessageKind
    origin: str
    dedup_key: bytes
    arrival: float
    seq: int
    wants_headers: bool = False
    payload: Any = None

    def to_message(self) -> Message:
        """Re-materialize the gossip envelope on the receiving shard."""
        if self.kind is not FrameKind.PAYLOAD:
            raise FrameError(f"{self.kind.value} frames carry no payload")
        return Message(
            kind=self.message_kind,
            payload=self.payload,
            origin=self.origin,
            dedup_key=self.dedup_key,
        )


def _encode_body(payload: Any) -> Tuple[int, bytes]:
    if payload is None:
        return _BODY_NONE, b""
    if isinstance(payload, Block):
        return _BODY_BLOCK, encode_block(payload)
    if isinstance(payload, BlockHeader):
        return _BODY_HEADER, encode_header(payload)
    if isinstance(payload, (bytes, bytearray)):
        return _BODY_BYTES, bytes(payload)
    raise FrameError(
        f"cannot transport a {type(payload).__name__} across shards "
        "(blocks, headers, and raw bytes only)"
    )


def _decode_body(flags: int, body: bytes) -> Any:
    if flags == _BODY_NONE:
        return None
    if flags == _BODY_BLOCK:
        return decode_block(body)
    if flags == _BODY_HEADER:
        return decode_header(body)
    if flags == _BODY_BYTES:
        return body
    raise FrameError(f"unknown payload encoding {flags}")


def encode_frame(frame: CrossShardFrame) -> bytes:
    """Flatten one frame to its framed wire form."""
    body_flags, body = _encode_body(frame.payload)
    return pack(
        [
            frame.kind.value.encode(),
            frame.src.encode(),
            frame.dst.encode(),
            frame.message_kind.value.encode(),
            frame.origin.encode(),
            frame.dedup_key,
            struct.pack(">d", frame.arrival),
            frame.seq.to_bytes(8, "big"),
            bytes([body_flags | (8 if frame.wants_headers else 0)]),
            body,
        ]
    )


def decode_frame(data: bytes) -> CrossShardFrame:
    """Parse one frame; payload identity is re-derived, never trusted."""
    (
        kind,
        src,
        dst,
        message_kind,
        origin,
        dedup_key,
        arrival,
        seq,
        flags,
        body,
    ) = unpack(data, 10)
    if len(flags) != 1:
        raise FrameError("malformed frame flags")
    return CrossShardFrame(
        kind=FrameKind(kind.decode()),
        src=src.decode(),
        dst=dst.decode(),
        message_kind=MessageKind(message_kind.decode()),
        origin=origin.decode(),
        dedup_key=dedup_key,
        arrival=struct.unpack(">d", arrival)[0],
        seq=int.from_bytes(seq, "big"),
        wants_headers=bool(flags[0] & 8),
        payload=_decode_body(flags[0] & 7, body),
    )


def encode_frames(frames: List[CrossShardFrame]) -> bytes:
    """One blob per (epoch, destination shard) — the barrier unit."""
    return pack([encode_frame(frame) for frame in frames])


def decode_frames(blob: bytes) -> List[CrossShardFrame]:
    """Parse a barrier blob back into frames (order preserved)."""
    frames: List[CrossShardFrame] = []
    offset = 0
    size = len(blob)
    while offset < size:
        if offset + 4 > size:
            raise FrameError("truncated frame length prefix")
        length = int.from_bytes(blob[offset : offset + 4], "big")
        offset += 4
        if offset + length > size:
            raise FrameError("frame overruns blob")
        frames.append(decode_frame(blob[offset : offset + length]))
        offset += length
    return frames
