"""Sharded fleet simulation: one spec, many worker processes, same bits.

``repro.shard`` scales the fleet plane past the single-process event
loop: a :class:`FleetSpec` describes the fleet once, a
:class:`ShardPlan` partitions it (topology-aware slices or consistent
hashing), and :class:`ShardedSimulator` runs each shard's simulator
independently between deterministic epoch barriers, exchanging
cross-shard inv/getdata/payload traffic as length-prefixed frames
(:mod:`repro.shard.frames`).  ``jobs=1`` is the always-live parity
oracle: parallel runs are seed-for-seed bit-identical to it, and a
one-shard fleet is bit-identical to
:class:`~repro.core.distributed.DistributedChain`.
"""

from repro.shard.engine import ShardGateway, ShardState, ShardedSimulator
from repro.shard.frames import (
    CrossShardFrame,
    FrameError,
    FrameKind,
    decode_frame,
    decode_frames,
    encode_frame,
    encode_frames,
)
from repro.shard.plan import ShardPlan, build_plan, derive_shard_seeds
from repro.shard.spec import FleetSpec

__all__ = [
    "CrossShardFrame",
    "FleetSpec",
    "FrameError",
    "FrameKind",
    "ShardGateway",
    "ShardPlan",
    "ShardState",
    "ShardedSimulator",
    "build_plan",
    "decode_frame",
    "decode_frames",
    "derive_shard_seeds",
    "encode_frame",
    "encode_frames",
]
