"""Deterministic fleet partitioning: which shard owns which node.

Two strategies, both pure functions of the spec (no rng, no state):

``topology``
    Contiguous slices of the fleet's interleaved ring order (full nodes
    with their light replicas spread between them — the same order the
    overlay topology is built over).  Ring edges overwhelmingly stay
    intra-shard, so ``ring``/``ring_random`` fleets cross shards only
    on the two seam edges plus random chords — the topology-aware
    choice for the large-fleet default.

``consistent_hash``
    Classic consistent hashing: shards project virtual points onto a
    hash ring, every node hashes to a position, and the next point
    clockwise owns it.  Placement is independent of fleet order, so
    adding nodes moves only a 1/shards fraction of assignments — the
    choice when fleet membership churns.

Either way every shard must own at least one full node: lights resync
headers from an in-shard SPV server, and the mining plane needs a
replica to extend wherever the sampled winner lives.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.crypto.hashing import sha3_256
from repro.shard.spec import FleetSpec

__all__ = ["ShardPlan", "build_plan", "derive_shard_seeds"]


@dataclass(frozen=True)
class ShardPlan:
    """A fixed assignment of every fleet node to exactly one shard."""

    #: Per-shard node-name tuples, in global fleet order within a shard.
    assignments: Tuple[Tuple[str, ...], ...]

    def __post_init__(self) -> None:
        owners: Dict[str, int] = {}
        for index, names in enumerate(self.assignments):
            if not names:
                raise ValueError(f"shard {index} owns no nodes")
            for name in names:
                if name in owners:
                    raise ValueError(f"{name!r} is assigned to two shards")
                owners[name] = index
        object.__setattr__(self, "_owners", owners)

    @property
    def shards(self) -> int:
        """Number of shards."""
        return len(self.assignments)

    def shard_of(self, name: str) -> int:
        """The shard index owning ``name`` (KeyError if unknown)."""
        return self._owners[name]

    def owns(self, shard_index: int, name: str) -> bool:
        """True if ``shard_index`` owns ``name``."""
        return self._owners.get(name) == shard_index

    def members(self, shard_index: int) -> Tuple[str, ...]:
        """The node names owned by one shard."""
        return self.assignments[shard_index]

    def __contains__(self, name: str) -> bool:
        return name in self._owners


def _hash_position(label: str) -> int:
    """A point on the 64-bit hash ring."""
    return int.from_bytes(sha3_256(label.encode())[:8], "big")


def build_plan(spec: FleetSpec, ring_order: Sequence[str]) -> ShardPlan:
    """Partition ``ring_order`` (the fleet's interleaved name order).

    Raises :class:`ValueError` if the strategy strands a shard without
    a full node — a plan the engine could not mine or serve lights on.
    """
    if spec.shards == 1:
        return ShardPlan(assignments=(tuple(ring_order),))
    if spec.shard_strategy == "consistent_hash":
        assignments = _consistent_hash_assignments(ring_order, spec.shards)
    else:
        assignments = _contiguous_assignments(ring_order, spec.shards)
    plan = ShardPlan(assignments=assignments)
    full_names = set(spec.full_names())
    for index in range(plan.shards):
        if not any(name in full_names for name in plan.members(index)):
            raise ValueError(
                f"{spec.shard_strategy!r} plan leaves shard {index} with no "
                "full node; lower the shard count or rebalance the fleet"
            )
    return plan


def _contiguous_assignments(
    ring_order: Sequence[str], shards: int
) -> Tuple[Tuple[str, ...], ...]:
    """Contiguous ring slices, sizes as even as the division allows."""
    count = len(ring_order)
    base, remainder = divmod(count, shards)
    pieces: List[Tuple[str, ...]] = []
    cursor = 0
    for index in range(shards):
        take = base + (1 if index < remainder else 0)
        pieces.append(tuple(ring_order[cursor : cursor + take]))
        cursor += take
    return tuple(pieces)


def _consistent_hash_assignments(
    ring_order: Sequence[str], shards: int, points_per_shard: int = 64
) -> Tuple[Tuple[str, ...], ...]:
    """Hash-ring ownership with ``points_per_shard`` virtual points."""
    ring: List[Tuple[int, int]] = []
    for shard in range(shards):
        for point in range(points_per_shard):
            ring.append((_hash_position(f"shard:{shard}:vnode:{point}"), shard))
    ring.sort()
    positions = [position for position, _ in ring]
    pieces: List[List[str]] = [[] for _ in range(shards)]
    for name in ring_order:
        spot = bisect.bisect_right(positions, _hash_position(f"node:{name}"))
        owner = ring[spot % len(ring)][1]
        pieces[owner].append(name)
    return tuple(tuple(piece) for piece in pieces)


def derive_shard_seeds(master_seed: int, count: int) -> List[int]:
    """``count`` independent per-shard rng seeds from one master draw.

    Hash-derived (not sequential) so shard k's stream never collides
    with shard k+1's regardless of how either consumes it — the same
    discipline :func:`repro.experiments.runner.derive_seeds` applies to
    trial fan-out.  ``count == 1`` returns the master seed itself, so a
    one-shard fleet draws the exact stream the unsharded engine draws.
    """
    if count == 1:
        return [master_seed]
    return [
        int.from_bytes(
            sha3_256(f"shard-seed:{master_seed}:{index}".encode())[:8], "big"
        )
        for index in range(count)
    ]
