"""Immutable chain/ledger snapshots keyed by head id.

A consumer batch should see one consistent view of the chain even while
blocks keep arriving.  :class:`ChainSnapshot` freezes the canonical
path and the ledger balances at a given head; :class:`SnapshotCache`
hands the same frozen object back for every read until the head moves,
and drops snapshots whose head is no longer canonical (reorg
invalidation), so ``get_block``/``get_balance``-shaped reads never
touch live objects mid-batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.chain.block import Block, BlockHeader
from repro.chain.chain import Blockchain, ChainError
from repro.contracts.state import WorldState
from repro.crypto.keys import Address

__all__ = ["ChainSnapshot", "SnapshotCache", "block_dict", "header_dict"]


def _hex(data: bytes) -> str:
    return "0x" + data.hex()


def block_dict(block: Block) -> Dict[str, Any]:
    """A block as the web3-shaped dict ``Eth.get_block`` serves.

    Shared by :mod:`repro.rpc` and the snapshot read path so the two
    can never drift apart (their parity is asserted in tests).
    """
    return {
        "number": block.height,
        "hash": _hex(block.block_id),
        "parentHash": _hex(block.header.prev_block_id),
        "timestamp": block.header.timestamp,
        "nonce": block.header.nonce,
        "difficulty": block.header.difficulty,
        "miner": block.header.miner.hex(),
        "merkleRoot": _hex(block.header.merkle_root),
        "transactions": [_hex(record.record_id) for record in block.records],
    }


def header_dict(header: BlockHeader) -> Dict[str, Any]:
    """A bare header as a web3-shaped dict — no ``transactions`` body.

    The light-replica read path serves these: same keys as
    :func:`block_dict` minus the record list a headers-only node does
    not hold.
    """
    return {
        "number": header.height,
        "hash": _hex(header.header_hash()),
        "parentHash": _hex(header.prev_block_id),
        "timestamp": header.timestamp,
        "nonce": header.nonce,
        "difficulty": header.difficulty,
        "miner": header.miner.hex(),
        "merkleRoot": _hex(header.merkle_root),
    }


@dataclass(frozen=True)
class ChainSnapshot:
    """A frozen view of the canonical chain and ledger at one head.

    Blocks themselves are frozen dataclasses, so holding references is
    safe; the canonical *path* and the balance map are copied because
    those are the parts the live objects mutate.
    """

    head_id: bytes
    height: int
    blocks: Tuple[Block, ...]
    balances: Dict[Address, int] = field(hash=False)

    @classmethod
    def capture(
        cls, chain: Blockchain, state: Optional[WorldState] = None
    ) -> "ChainSnapshot":
        """Freeze ``chain`` (and optionally ``state``) right now."""
        blocks = tuple(chain.iter_canonical())
        balances: Dict[Address, int] = {}
        if state is not None:
            balances = {account: balance for account, balance in state.accounts()}
        return cls(
            head_id=chain.head.block_id,
            height=chain.head.height,
            blocks=blocks,
            balances=balances,
        )

    def block_at_height(self, height: int) -> Optional[Block]:
        """The snapshotted block at ``height`` — O(1), rejects bools."""
        if isinstance(height, bool):
            raise ChainError(
                "block height must be an int, not a bool "
                "(True/False would silently read heights 1/0)"
            )
        if height < 0:
            raise ChainError(
                f"height {height} is negative: canonical heights are "
                "absolute, with no Python-list wraparound"
            )
        if height > self.height:
            return None
        return self.blocks[height]

    def block_dict_at_height(self, height: int) -> Optional[Dict[str, Any]]:
        """Web3-shaped dict for the snapshotted block at ``height``."""
        block = self.block_at_height(height)
        if block is None:
            return None
        return block_dict(block)

    def balance(self, account: Address) -> int:
        """Snapshotted balance in wei (0 for unknown accounts)."""
        return self.balances.get(account, 0)

    @property
    def head(self) -> Block:
        return self.blocks[-1]


class SnapshotCache:
    """Head-keyed cache of :class:`ChainSnapshot` objects.

    ``current`` returns the cached snapshot while the head stands
    still; a head move captures a fresh one, and any cached snapshot
    whose head fell off the canonical chain (reorg) is evicted rather
    than recycled.  Capacity is small by design — consumers only ever
    ask about the recent past.
    """

    def __init__(self, capacity: int = 4) -> None:
        if capacity < 1:
            raise ValueError("snapshot cache needs capacity >= 1")
        self.capacity = capacity
        self._snapshots: Dict[bytes, ChainSnapshot] = {}
        self._order: List[bytes] = []  # insertion order, oldest first
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._snapshots)

    def current(
        self, chain: Blockchain, state: Optional[WorldState] = None
    ) -> ChainSnapshot:
        """The snapshot for ``chain``'s current head, capturing on miss."""
        head_id = chain.head.block_id
        self._evict_noncanonical(chain)
        cached = self._snapshots.get(head_id)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        snapshot = ChainSnapshot.capture(chain, state)
        self._snapshots[head_id] = snapshot
        self._order.append(head_id)
        while len(self._order) > self.capacity:
            oldest = self._order.pop(0)
            self._snapshots.pop(oldest, None)
        return snapshot

    def _evict_noncanonical(self, chain: Blockchain) -> None:
        stale = [
            head_id
            for head_id in self._order
            if not chain.is_canonical(head_id)
        ]
        for head_id in stale:
            self._order.remove(head_id)
            self._snapshots.pop(head_id, None)
            self.invalidations += 1
