"""Batched + async query serving over the materialized indices.

:class:`QueryService` is the consumer-facing read path: requests are
plain :class:`QueryRequest` values (method + params, mirroring the
JSON-RPC surface the paper's consumers would hit), batches are served
against ONE refreshed index view and one chain snapshot per batch, and
``submit_batch`` defers execution onto the simulator clock so consumer
traffic interleaves deterministically with mining and gossip events.

Beyond one process, the service binds to *replicas*
(:meth:`QueryService.connect_node`): full :class:`ReplicaNode`\\ s get
the whole surface, headers-only :class:`LightReplicaNode`\\ s serve the
header-backed subset (``head``, ``get_block``), and every response
carries a :class:`StalenessBound` — how far the served head lags the
canonical chain in blocks and seconds — which a ``max_staleness``
request knob turns into an explicit rejection instead of a silently
stale answer.  With an ``index_dir`` binding the service persists its
:class:`ChainIndex` through :mod:`repro.store` and warm-starts across
restarts by replaying only the delta above the persisted tip.

Per-request failures (unknown block, malformed address) become
``ok=False`` responses carrying the error message — one bad request in
a batch never poisons its neighbours.  Multi-row reads
(``get_reports``/``get_sras``/``get_logs``) are paginated: a default
``limit`` bounds every response, truncation is explicit, and cursors
are reorg-safe (resume consistently or fail with a descriptive error,
never silently skip or duplicate rows).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.chain.chain import Blockchain, ChainError
from repro.contracts.vm import ContractRuntime
from repro.crypto.keys import Address
from repro.hexargs import parse_hex
from repro.network.simulator import Simulator
from repro.query.indices import ChainIndex, EventIndex
from repro.query.snapshots import (
    ChainSnapshot,
    SnapshotCache,
    block_dict,
    header_dict,
)
from repro.telemetry import NULL_TELEMETRY, Telemetry

__all__ = [
    "DEFAULT_PAGE_LIMIT",
    "MAX_PAGE_LIMIT",
    "PendingBatch",
    "QueryError",
    "QueryRequest",
    "QueryResponse",
    "QueryService",
    "StalenessBound",
]

#: Rows returned by a multi-row request that names no ``limit``.  A
#: filter matching the whole confirmed history must page, not
#: materialize everything in one response.
DEFAULT_PAGE_LIMIT = 256

#: Hard ceiling on an explicit ``limit`` — larger asks are rejected
#: (never silently clamped).
MAX_PAGE_LIMIT = 1024


class QueryError(ValueError):
    """Raised for malformed requests or an unusable service binding."""


@dataclass(frozen=True)
class QueryRequest:
    """One read request: a method name plus keyword params.

    The constructors below cover the supported surface; ``params`` is a
    tuple of (key, value) pairs so requests stay hashable.
    """

    method: str
    params: Tuple[Tuple[str, Any], ...] = ()

    def param_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    # -- constructors --------------------------------------------------------

    @classmethod
    def head(cls) -> "QueryRequest":
        """Canonical head height + id."""
        return cls("head")

    @classmethod
    def get_block(cls, identifier: Union[int, str, bytes]) -> "QueryRequest":
        """A block by height / ``"latest"`` / ``"earliest"`` / hash."""
        return cls("get_block", (("identifier", identifier),))

    @classmethod
    def get_balance(cls, account: Union[Address, str]) -> "QueryRequest":
        """Snapshot balance in wei, as of the batch's head."""
        return cls("get_balance", (("account", account),))

    @classmethod
    def get_transaction(cls, record_id: Union[str, bytes]) -> "QueryRequest":
        """A canonical record by id (web3's tx lookup)."""
        return cls("get_transaction", (("record_id", record_id),))

    @classmethod
    def get_transaction_count(
        cls, account: Union[Address, str]
    ) -> "QueryRequest":
        """Canonical records sent by ``account`` (the nonce query)."""
        return cls("get_transaction_count", (("account", account),))

    @classmethod
    def get_reports(
        cls,
        system: Optional[str] = None,
        provider: Optional[str] = None,
        severity: Optional[str] = None,
        detector: Optional[str] = None,
        limit: Optional[int] = None,
        after: Optional[str] = None,
    ) -> "QueryRequest":
        """Confirmed detailed reports matching every given filter.

        ``limit`` bounds the page (service default when omitted);
        ``after`` resumes from a cursor a previous response returned.
        """
        params = tuple(
            (key, value)
            for key, value in (
                ("system", system),
                ("provider", provider),
                ("severity", severity),
                ("detector", detector),
                ("limit", limit),
                ("after", after),
            )
            if value is not None
        )
        return cls("get_reports", params)

    @classmethod
    def get_sras(
        cls,
        provider: Optional[str] = None,
        system: Optional[str] = None,
        version: Optional[str] = None,
        limit: Optional[int] = None,
        after: Optional[str] = None,
    ) -> "QueryRequest":
        """Confirmed release announcements matching every given filter."""
        params = tuple(
            (key, value)
            for key, value in (
                ("provider", provider),
                ("system", system),
                ("version", version),
                ("limit", limit),
                ("after", after),
            )
            if value is not None
        )
        return cls("get_sras", params)

    @classmethod
    def get_logs(
        cls,
        event_name: str,
        limit: Optional[int] = None,
        after: Optional[str] = None,
    ) -> "QueryRequest":
        """Committed contract events by name (paged)."""
        params: Tuple[Tuple[str, Any], ...] = (("event_name", event_name),)
        if limit is not None:
            params += (("limit", limit),)
        if after is not None:
            params += (("after", after),)
        return cls("get_logs", params)


@dataclass(frozen=True)
class StalenessBound:
    """How far a served view lags the canonical chain.

    ``height_lag`` is in blocks, ``time_lag`` in simulated seconds
    (difference of the tip block timestamps); both are 0 when the
    service has no canonical reference distinct from what it serves.
    """

    served_height: int
    served_block_id: bytes
    canonical_height: int
    canonical_block_id: bytes
    height_lag: int
    time_lag: float

    @property
    def is_fresh(self) -> bool:
        return self.height_lag == 0


@dataclass(frozen=True)
class QueryResponse:
    """The outcome of one request: ``result`` if ``ok``, else ``error``.

    ``staleness`` is attached to every response a live service emits;
    it is None only on synthetic responses (e.g. a deferred batch that
    fired against a crashed node).
    """

    request: QueryRequest
    ok: bool
    result: Any = None
    error: Optional[str] = None
    staleness: Optional[StalenessBound] = None


@dataclass
class PendingBatch:
    """A batch deferred onto the simulator clock.

    ``responses`` stays None until the scheduled event fires; callers
    either poll it after ``advance`` or pass a ``callback`` to
    :meth:`QueryService.submit_batch`.
    """

    requests: Tuple[QueryRequest, ...]
    scheduled_time: float
    responses: Optional[List[QueryResponse]] = None
    callback: Optional[Callable[[List[QueryResponse]], None]] = field(
        default=None, repr=False
    )

    @property
    def done(self) -> bool:
        return self.responses is not None

    def _deliver(self, responses: List[QueryResponse]) -> None:
        self.responses = responses
        if self.callback is not None:
            self.callback(responses)


class QueryService:
    """The consumer read path: indices + snapshots + batch dispatch.

    Like :class:`~repro.rpc.Eth`, the binding may be *by node*: when
    ``node`` is set, every batch re-resolves ``node.chain`` so a
    restart-from-disk (which swaps the chain object wholesale) is
    followed — the index is rebuilt against the new object instead of
    serving the corpse.  With ``index_dir`` set, that rebuild (and the
    initial build) warm-starts from the persisted index whenever its
    tip is still canonical, replaying only the delta — never from
    genesis.
    """

    def __init__(
        self,
        chain: Optional[Blockchain] = None,
        runtime: Optional[ContractRuntime] = None,
        node: Optional[object] = None,
        simulator: Optional[Simulator] = None,
        telemetry: Optional[Telemetry] = None,
        snapshot_capacity: int = 4,
        canonical: Optional[object] = None,
        index_dir: Optional[Union[str, Path]] = None,
        default_page_limit: int = DEFAULT_PAGE_LIMIT,
    ) -> None:
        if chain is None and node is None:
            raise QueryError("QueryService needs a chain or a node to read from")
        if (
            isinstance(default_page_limit, bool)
            or not isinstance(default_page_limit, int)
            or not 1 <= default_page_limit <= MAX_PAGE_LIMIT
        ):
            raise QueryError(
                f"default_page_limit must be an int in [1, {MAX_PAGE_LIMIT}], "
                f"got {default_page_limit!r}"
            )
        self.chain = chain
        self.runtime = runtime
        self.node = node
        self.simulator = simulator
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        #: The canonical reference for staleness bounds: a Blockchain,
        #: a node exposing ``.chain``, or a zero-arg callable returning
        #: either.  None means "what this service serves IS canonical".
        self.canonical = canonical
        self.index_dir = Path(index_dir) if index_dir is not None else None
        self.default_page_limit = default_page_limit
        self.warm_starts = 0
        self.cold_starts = 0
        self.snapshots = SnapshotCache(capacity=snapshot_capacity)
        self.index: Optional[ChainIndex] = (
            None
            if self._bound_headers() is not None
            else self._build_index(self._live_chain())
        )
        self.events: Optional[EventIndex] = (
            EventIndex(runtime, telemetry=self.telemetry)
            if runtime is not None
            else None
        )
        subscribe = getattr(self.node, "subscribe_lifecycle", None)
        if subscribe is not None:
            subscribe(self._on_node_lifecycle)

    @classmethod
    def connect(
        cls, platform, simulator: Optional[Simulator] = None, **kwargs: Any
    ) -> "QueryService":
        """Attach to a :class:`~repro.core.platform.SmartCrowdPlatform`.

        The platform itself carries the unified ``now``/``schedule_at``
        clock surface, so it doubles as the async-batch scheduler
        unless an explicit ``simulator`` is handed in.
        """
        return cls(
            chain=platform.mining.chain,
            runtime=platform.runtime,
            simulator=simulator if simulator is not None else platform,
            **kwargs,
        )

    @classmethod
    def connect_node(
        cls,
        node,
        canonical: Optional[object] = None,
        runtime: Optional[ContractRuntime] = None,
        simulator: Optional[Simulator] = None,
        index_dir: Optional[Union[str, Path]] = None,
        **kwargs: Any,
    ) -> "QueryService":
        """Bind to a live replica node (full or headers-only/light).

        A full :class:`~repro.core.distributed.ReplicaNode` serves the
        whole surface; a :class:`LightReplicaNode` serves the
        header-backed subset with everything else answered ``ok=False``.
        ``index_dir`` defaults to a full replica's durable store
        directory, so the serving index is persisted next to the block
        log and restarts warm-start from it automatically.
        """
        if index_dir is None and getattr(node, "chain", None) is not None:
            store = getattr(node, "store", None)
            if store is not None:
                index_dir = getattr(store, "path", None)
        return cls(
            node=node,
            canonical=canonical,
            runtime=runtime,
            simulator=simulator,
            index_dir=index_dir,
            **kwargs,
        )

    # -- live resolution -----------------------------------------------------

    def _require_up(self) -> None:
        if getattr(self.node, "crashed", False):
            name = getattr(self.node, "name", "node")
            raise QueryError(
                f"{name} is down (crashed or mid-recovery); "
                "retry once it has restarted"
            )

    def _bound_headers(self):
        """The bound node's HeaderChain, when it is a light replica."""
        if self.node is None or getattr(self.node, "chain", None) is not None:
            return None
        self._require_up()
        return getattr(self.node, "headers", None)

    def _live_chain(self) -> Blockchain:
        if self.node is not None:
            self._require_up()
            chain = getattr(self.node, "chain", None)
            if chain is None:
                name = getattr(self.node, "name", "node")
                raise QueryError(f"{name} holds no full chain replica")
            return chain
        assert self.chain is not None  # guaranteed by __init__
        return self.chain

    def _build_index(self, chain: Blockchain) -> ChainIndex:
        """Warm-start from the persisted index when possible, else cold."""
        # Imported here, not at module top: persistence pulls in
        # repro.store, which sits above repro.chain — and this module is
        # (indirectly) imported while repro.chain initializes.
        from repro.query.persistence import load_index

        if self.index_dir is not None:
            warm = load_index(chain, self.index_dir, telemetry=self.telemetry)
            if warm is not None:
                self.warm_starts += 1
                if self.telemetry.enabled:
                    self.telemetry.counter("query.warm_starts").inc()
                return warm
        self.cold_starts += 1
        if self.telemetry.enabled:
            self.telemetry.counter("query.cold_starts").inc()
        return ChainIndex(chain, telemetry=self.telemetry)

    def _live_index(self) -> ChainIndex:
        """The index, rebound if a restart swapped the chain object."""
        chain = self._live_chain()
        if self.index is None or self.index.chain is not chain:
            self.index = self._build_index(chain)
        return self.index

    def _on_node_lifecycle(self, event: str) -> None:
        """Node lifecycle hook: pre-warm the index after a restart.

        The restart swapped ``node.chain`` wholesale; rebinding eagerly
        here (warm start when the persisted tip is still canonical)
        means the first post-restart query pays an incremental refresh,
        not a from-genesis rebuild.
        """
        if event != "restart" or self.node is None:
            return
        if getattr(self.node, "chain", None) is None:
            return  # light replicas keep no chain index
        try:
            self._live_index()
        except QueryError:
            pass  # mid-recovery oddity; the next serve re-resolves

    def persist_index(self) -> Path:
        """Persist the serving index to ``index_dir`` (atomic write).

        A later service over the same directory — or this one, after
        the node restarts — warm-starts from it, replaying only the
        delta above the persisted tip.
        """
        if self.index_dir is None:
            raise QueryError(
                "persist_index needs an index_dir binding "
                "(pass index_dir= when constructing the service)"
            )
        if self._bound_headers() is not None:
            raise QueryError("light replicas keep no chain index to persist")
        from repro.query.persistence import save_index  # see _build_index

        index = self._live_index()
        index.refresh()
        path = save_index(index, self.index_dir)
        if self.telemetry.enabled:
            self.telemetry.counter("query.index_persists").inc()
        return path

    # -- staleness -----------------------------------------------------------

    def _canonical_view(self) -> Optional[Tuple[int, bytes, float]]:
        """(height, block id, tip timestamp) of the canonical reference."""
        ref = self.canonical
        if ref is None:
            return None
        if callable(ref) and not isinstance(ref, Blockchain):
            ref = ref()
        if ref is None:
            return None
        chain = ref if isinstance(ref, Blockchain) else getattr(ref, "chain", None)
        if chain is None:
            return None
        head = chain.head
        return head.height, head.block_id, head.header.timestamp

    def _staleness_bound(
        self, served_height: int, served_id: bytes, served_time: float
    ) -> StalenessBound:
        view = self._canonical_view()
        if view is None:
            canonical_height, canonical_id, canonical_time = (
                served_height,
                served_id,
                served_time,
            )
        else:
            canonical_height, canonical_id, canonical_time = view
        return StalenessBound(
            served_height=served_height,
            served_block_id=served_id,
            canonical_height=canonical_height,
            canonical_block_id=canonical_id,
            height_lag=max(0, canonical_height - served_height),
            time_lag=max(0.0, canonical_time - served_time),
        )

    @staticmethod
    def _require_max_staleness(max_staleness: Optional[int]) -> None:
        if max_staleness is None:
            return
        if isinstance(max_staleness, bool) or not isinstance(max_staleness, int):
            raise QueryError(
                f"bad max_staleness {max_staleness!r}: pass a plain int "
                "number of blocks (or None for no bound)"
            )
        if max_staleness < 0:
            raise QueryError(
                f"max_staleness {max_staleness} is negative: a served head "
                "can never lead the canonical chain"
            )

    def _reject_stale(
        self,
        requests: Sequence[QueryRequest],
        bound: StalenessBound,
        max_staleness: int,
    ) -> List[QueryResponse]:
        if self.telemetry.enabled:
            self.telemetry.counter("query.stale_rejections").inc(len(requests))
        error = (
            f"stale read rejected: served head {bound.served_height} is "
            f"{bound.height_lag} block(s) behind the canonical head "
            f"{bound.canonical_height} (max_staleness={max_staleness}); "
            "retry against the canonical chain or once this replica "
            "has resynced"
        )
        return [
            QueryResponse(
                request=request, ok=False, error=error, staleness=bound
            )
            for request in requests
        ]

    # -- serving -------------------------------------------------------------

    def serve(
        self, request: QueryRequest, max_staleness: Optional[int] = None
    ) -> QueryResponse:
        """Serve one request (a batch of one)."""
        return self.serve_batch([request], max_staleness=max_staleness)[0]

    def serve_batch(
        self,
        requests: Sequence[QueryRequest],
        max_staleness: Optional[int] = None,
    ) -> List[QueryResponse]:
        """Serve a batch against one consistent chain view.

        The index refreshes once and the snapshot is captured once; all
        requests in the batch answer as of that head, even if live
        objects move underneath mid-iteration.  ``max_staleness`` (in
        blocks) rejects the whole batch with descriptive per-request
        errors when the served head lags the canonical reference by
        more than that.
        """
        self._require_max_staleness(max_staleness)
        headers = self._bound_headers()
        if headers is not None:
            return self._serve_header_batch(headers, requests, max_staleness)
        index = self._live_index()
        index.refresh()
        chain = self._live_chain()
        state = self.runtime.state if self.runtime is not None else None
        snapshot = self.snapshots.current(chain, state)
        bound = self._staleness_bound(
            snapshot.height, snapshot.head_id, snapshot.head.header.timestamp
        )
        if self.telemetry.enabled:
            self.telemetry.counter("query.requests").inc(len(requests))
        if max_staleness is not None and bound.height_lag > max_staleness:
            return self._reject_stale(requests, bound, max_staleness)
        responses: List[QueryResponse] = []
        for request in requests:
            try:
                result = self._dispatch(request, index, snapshot)
            except (QueryError, ChainError, ValueError) as error:
                responses.append(
                    QueryResponse(
                        request=request,
                        ok=False,
                        error=str(error),
                        staleness=bound,
                    )
                )
            else:
                responses.append(
                    QueryResponse(
                        request=request, ok=True, result=result, staleness=bound
                    )
                )
        return responses

    def _serve_header_batch(
        self,
        headers,
        requests: Sequence[QueryRequest],
        max_staleness: Optional[int],
    ) -> List[QueryResponse]:
        """The light-replica path: header-backed queries only.

        A light replica mid-resync lags the canonical chain; the
        staleness bound makes that lag explicit on every response, and
        ``max_staleness`` turns it into a rejection.
        """
        tip = headers.tip
        if tip is None:
            name = getattr(self.node, "name", "light replica")
            error = (
                f"{name} has synced no headers yet; "
                "retry after its first resync completes"
            )
            return [
                QueryResponse(request=request, ok=False, error=error)
                for request in requests
            ]
        bound = self._staleness_bound(
            tip.height, tip.header_hash(), tip.timestamp
        )
        if self.telemetry.enabled:
            self.telemetry.counter("query.requests").inc(len(requests))
            self.telemetry.counter("query.light_requests").inc(len(requests))
        if max_staleness is not None and bound.height_lag > max_staleness:
            return self._reject_stale(requests, bound, max_staleness)
        responses: List[QueryResponse] = []
        for request in requests:
            try:
                result = self._dispatch_header(request, headers)
            except (QueryError, ChainError, ValueError) as error:
                responses.append(
                    QueryResponse(
                        request=request,
                        ok=False,
                        error=str(error),
                        staleness=bound,
                    )
                )
            else:
                responses.append(
                    QueryResponse(
                        request=request, ok=True, result=result, staleness=bound
                    )
                )
        return responses

    def submit_batch(
        self,
        requests: Sequence[QueryRequest],
        delay: float = 0.0,
        callback: Optional[Callable[[List[QueryResponse]], None]] = None,
        max_staleness: Optional[int] = None,
    ) -> PendingBatch:
        """Defer a batch onto the simulator clock.

        The batch runs when the simulator reaches ``now + delay``,
        interleaved deterministically (time, seq) with whatever else is
        scheduled; it observes the chain *as of that simulated moment*,
        not submission time.  A node that crashed between submission
        and fire time yields per-request ``ok=False`` responses — a
        dead replica must not poison the simulator event loop.
        """
        if self.simulator is None:
            raise QueryError(
                "submit_batch needs a simulator binding "
                "(pass simulator= when constructing the service)"
            )
        self._require_max_staleness(max_staleness)
        pending = PendingBatch(
            requests=tuple(requests),
            scheduled_time=self.simulator.now + delay,
            callback=callback,
        )

        def _fire() -> None:
            try:
                responses = self.serve_batch(
                    pending.requests, max_staleness=max_staleness
                )
            except QueryError as error:
                responses = [
                    QueryResponse(request=request, ok=False, error=str(error))
                    for request in pending.requests
                ]
            pending._deliver(responses)

        # schedule_at is the unified absolute-time surface shared by
        # Simulator and SmartCrowdPlatform, so either works as the clock.
        self.simulator.schedule_at(pending.scheduled_time, _fire)
        return pending

    # -- pagination ----------------------------------------------------------

    def _page_limit(self, params: Dict[str, Any]) -> int:
        limit = params.get("limit")
        if limit is None:
            return self.default_page_limit
        if isinstance(limit, bool) or not isinstance(limit, int):
            raise QueryError(
                f"bad limit {limit!r}: pass a plain int number of rows"
            )
        if limit < 1:
            raise QueryError(f"bad limit {limit}: a page holds at least 1 row")
        if limit > MAX_PAGE_LIMIT:
            raise QueryError(
                f"bad limit {limit}: pages are capped at {MAX_PAGE_LIMIT} "
                "rows — follow next_cursor instead"
            )
        return limit

    @staticmethod
    def _entry_cursor(entry, index: ChainIndex) -> str:
        """``height:index:block-id`` — self-validating against reorgs."""
        block_id = index.block_id_at_height(entry.height)
        assert block_id is not None  # confirmed entries never outrun the head
        return f"{entry.height}:{entry.index_in_block}:{block_id.hex()}"

    @staticmethod
    def _decode_entry_cursor(
        cursor: Any, index: ChainIndex
    ) -> Tuple[int, int]:
        if not isinstance(cursor, str):
            raise QueryError(
                f"bad cursor {cursor!r}: expected the "
                "'height:index:block-id' string a previous response returned"
            )
        parts = cursor.split(":")
        if len(parts) != 3:
            raise QueryError(
                f"bad cursor {cursor!r}: expected 'height:index:block-id'"
            )
        try:
            height = int(parts[0])
            position = int(parts[1])
        except ValueError as error:
            raise QueryError(
                f"bad cursor {cursor!r}: height and index must be integers"
            ) from error
        if height < 0 or position < 0:
            raise QueryError(
                f"bad cursor {cursor!r}: height and index cannot be negative"
            )
        anchor = parse_hex(parts[2], "cursor block id", length=32, error=QueryError)
        live = index.block_id_at_height(height)
        if live is None:
            raise QueryError(
                f"cursor {cursor!r} points above the canonical head: the "
                "chain reorganized to a shorter branch since the cursor was "
                "issued; restart the scan from the beginning"
            )
        if live != anchor:
            raise QueryError(
                f"cursor {cursor!r} was invalidated by a reorg: height "
                f"{height} is now block 0x{live.hex()[:12]}…, not the block "
                "the cursor anchored; restart the scan from the beginning"
            )
        return height, position

    def _paginate_entries(
        self, entries: List[Any], params: Dict[str, Any], index: ChainIndex
    ) -> Dict[str, Any]:
        """Page a chain-ordered entry list (reports or SRAs).

        Entries occupy strictly increasing (height, index-in-block)
        positions, so "strictly after the cursor" resumes with no
        duplicates and no gaps — provided the cursor's anchor block is
        still canonical, which :meth:`_decode_entry_cursor` enforces.
        """
        limit = self._page_limit(params)
        after = params.get("after")
        if after is not None:
            height, position = self._decode_entry_cursor(after, index)
            entries = [
                entry
                for entry in entries
                if (entry.height, entry.index_in_block) > (height, position)
            ]
        rows = entries[:limit]
        truncated = len(entries) > limit
        return {
            "rows": rows,
            "next_cursor": (
                self._entry_cursor(rows[-1], index) if truncated else None
            ),
            "truncated": truncated,
        }

    @staticmethod
    def _decode_log_cursor(cursor: Any) -> int:
        if isinstance(cursor, bool) or not isinstance(cursor, (int, str)):
            raise QueryError(
                f"bad cursor {cursor!r}: expected the integer position a "
                "previous get_logs response returned"
            )
        try:
            position = int(cursor)
        except ValueError as error:
            raise QueryError(
                f"bad cursor {cursor!r}: not an integer position"
            ) from error
        if position < 0:
            raise QueryError(f"bad cursor {cursor!r}: cannot be negative")
        return position

    # -- dispatch ------------------------------------------------------------

    def _dispatch(
        self, request: QueryRequest, index: ChainIndex, snapshot: ChainSnapshot
    ) -> Any:
        params = request.param_dict()
        method = request.method
        if method == "head":
            return {
                "number": snapshot.height,
                "hash": "0x" + snapshot.head_id.hex(),
            }
        if method == "get_block":
            return self._serve_block(params["identifier"], snapshot)
        if method == "get_balance":
            return snapshot.balance(self._address(params["account"]))
        if method == "get_transaction":
            return self._serve_transaction(params["record_id"], index)
        if method == "get_transaction_count":
            return index.sender_count(self._address(params["account"]))
        if method == "get_reports":
            entries = index.reports(
                system=params.get("system"),
                provider=params.get("provider"),
                severity=params.get("severity"),
                detector=params.get("detector"),
            )
            return self._paginate_entries(entries, params, index)
        if method == "get_sras":
            entries = index.sras(
                provider=params.get("provider"),
                system=params.get("system"),
                version=params.get("version"),
            )
            return self._paginate_entries(entries, params, index)
        if method == "get_logs":
            if self.events is None:
                raise QueryError(
                    "no contract runtime attached: event queries need one"
                )
            limit = self._page_limit(params)
            start = 0
            if params.get("after") is not None:
                start = self._decode_log_cursor(params["after"])
            events, total = self.events.named_slice(
                params["event_name"], start, limit
            )
            consumed = start + len(events)
            return {
                "rows": [
                    {
                        "address": event.contract.hex(),
                        "event": event.name,
                        "args": dict(event.payload),
                        "blockTime": event.block_time,
                    }
                    for event in events
                ],
                "next_cursor": str(consumed) if consumed < total else None,
                "truncated": consumed < total,
            }
        raise QueryError(f"unknown query method {method!r}")

    def _dispatch_header(self, request: QueryRequest, headers) -> Any:
        params = request.param_dict()
        method = request.method
        if method == "head":
            tip = headers.tip
            return {
                "number": tip.height,
                "hash": "0x" + tip.header_hash().hex(),
            }
        if method == "get_block":
            return self._serve_header_block(params["identifier"], headers)
        name = getattr(self.node, "name", "light replica")
        raise QueryError(
            f"{name} is a light (headers-only) replica: it serves head and "
            f"get_block, not {method}; connect a full replica for the rest "
            "of the surface"
        )

    def _serve_header_block(
        self, identifier: Union[int, str, bytes], headers
    ) -> Dict[str, Any]:
        if identifier == "latest":
            return header_dict(headers.tip)
        if identifier == "earliest":
            return header_dict(headers.at_height(0))
        if isinstance(identifier, bool):
            raise QueryError(
                f"bad block identifier {identifier!r}: True/False would "
                "silently read heights 1/0 — pass a plain int height"
            )
        if isinstance(identifier, int):
            if identifier < 0:
                raise QueryError(
                    f"height {identifier} is negative: canonical heights "
                    "are absolute, with no Python-list wraparound"
                )
            header = headers.at_height(identifier)
            if header is None:
                raise QueryError(f"no block at height {identifier}")
            return header_dict(header)
        raw = parse_hex(identifier, "block identifier", error=QueryError)
        header = headers.header(raw)
        if header is None:
            raise QueryError("unknown block hash (not on the header chain)")
        return header_dict(header)

    def _serve_block(
        self, identifier: Union[int, str, bytes], snapshot: ChainSnapshot
    ) -> Dict[str, Any]:
        if identifier == "latest":
            return block_dict(snapshot.head)
        if identifier == "earliest":
            return block_dict(snapshot.blocks[0])
        if isinstance(identifier, bool):
            raise QueryError(
                f"bad block identifier {identifier!r}: True/False would "
                "silently read heights 1/0 — pass a plain int height"
            )
        if isinstance(identifier, int):
            payload = snapshot.block_dict_at_height(identifier)
            if payload is None:
                raise QueryError(f"no block at height {identifier}")
            return payload
        raw = parse_hex(identifier, "block identifier", error=QueryError)
        for block in snapshot.blocks:
            if block.block_id == raw:
                return block_dict(block)
        raise QueryError("unknown block hash (not on the snapshotted chain)")

    def _serve_transaction(
        self, record_id: Union[str, bytes], index: ChainIndex
    ) -> Dict[str, Any]:
        record_id = parse_hex(record_id, "transaction id", error=QueryError)
        location = index.locate_record(record_id)
        if location is None:
            raise QueryError(
                f"transaction 0x{record_id.hex()} not found on the "
                "canonical chain"
            )
        record = index.get_record(record_id)
        return {
            "hash": "0x" + record_id.hex(),
            "blockHash": "0x" + location.block_id.hex(),
            "blockNumber": location.height,
            "transactionIndex": location.index_in_block,
            "kind": record.kind.value,
            "fee": record.fee,
            "from": record.sender.hex() if record.sender else None,
            "input": "0x" + record.payload.hex(),
        }

    @staticmethod
    def _address(account: Union[Address, str]) -> Address:
        if isinstance(account, Address):
            return account
        return Address(parse_hex(account, "address", length=20, error=QueryError))
