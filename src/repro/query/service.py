"""Batched + async query serving over the materialized indices.

:class:`QueryService` is the consumer-facing read path: requests are
plain :class:`QueryRequest` values (method + params, mirroring the
JSON-RPC surface the paper's consumers would hit), batches are served
against ONE refreshed index view and one chain snapshot per batch, and
``submit_batch`` defers execution onto the simulator clock so consumer
traffic interleaves deterministically with mining and gossip events.

Per-request failures (unknown block, malformed address) become
``ok=False`` responses carrying the error message — one bad request in
a batch never poisons its neighbours.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.chain.chain import Blockchain, ChainError
from repro.contracts.vm import ContractRuntime
from repro.crypto.keys import Address
from repro.network.simulator import Simulator
from repro.query.indices import ChainIndex, EventIndex
from repro.query.snapshots import ChainSnapshot, SnapshotCache, block_dict
from repro.telemetry import NULL_TELEMETRY, Telemetry

__all__ = [
    "PendingBatch",
    "QueryError",
    "QueryRequest",
    "QueryResponse",
    "QueryService",
]


class QueryError(ValueError):
    """Raised for malformed requests or an unusable service binding."""


@dataclass(frozen=True)
class QueryRequest:
    """One read request: a method name plus keyword params.

    The constructors below cover the supported surface; ``params`` is a
    tuple of (key, value) pairs so requests stay hashable.
    """

    method: str
    params: Tuple[Tuple[str, Any], ...] = ()

    def param_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    # -- constructors --------------------------------------------------------

    @classmethod
    def head(cls) -> "QueryRequest":
        """Canonical head height + id."""
        return cls("head")

    @classmethod
    def get_block(cls, identifier: Union[int, str, bytes]) -> "QueryRequest":
        """A block by height / ``"latest"`` / ``"earliest"`` / hash."""
        return cls("get_block", (("identifier", identifier),))

    @classmethod
    def get_balance(cls, account: Union[Address, str]) -> "QueryRequest":
        """Snapshot balance in wei, as of the batch's head."""
        return cls("get_balance", (("account", account),))

    @classmethod
    def get_transaction(cls, record_id: Union[str, bytes]) -> "QueryRequest":
        """A canonical record by id (web3's tx lookup)."""
        return cls("get_transaction", (("record_id", record_id),))

    @classmethod
    def get_transaction_count(
        cls, account: Union[Address, str]
    ) -> "QueryRequest":
        """Canonical records sent by ``account`` (the nonce query)."""
        return cls("get_transaction_count", (("account", account),))

    @classmethod
    def get_reports(
        cls,
        system: Optional[str] = None,
        provider: Optional[str] = None,
        severity: Optional[str] = None,
        detector: Optional[str] = None,
    ) -> "QueryRequest":
        """Confirmed detailed reports matching every given filter."""
        params = tuple(
            (key, value)
            for key, value in (
                ("system", system),
                ("provider", provider),
                ("severity", severity),
                ("detector", detector),
            )
            if value is not None
        )
        return cls("get_reports", params)

    @classmethod
    def get_sras(
        cls,
        provider: Optional[str] = None,
        system: Optional[str] = None,
        version: Optional[str] = None,
    ) -> "QueryRequest":
        """Confirmed release announcements matching every given filter."""
        params = tuple(
            (key, value)
            for key, value in (
                ("provider", provider),
                ("system", system),
                ("version", version),
            )
            if value is not None
        )
        return cls("get_sras", params)

    @classmethod
    def get_logs(cls, event_name: str) -> "QueryRequest":
        """Committed contract events by name."""
        return cls("get_logs", (("event_name", event_name),))


@dataclass(frozen=True)
class QueryResponse:
    """The outcome of one request: ``result`` if ``ok``, else ``error``."""

    request: QueryRequest
    ok: bool
    result: Any = None
    error: Optional[str] = None


@dataclass
class PendingBatch:
    """A batch deferred onto the simulator clock.

    ``responses`` stays None until the scheduled event fires; callers
    either poll it after ``advance`` or pass a ``callback`` to
    :meth:`QueryService.submit_batch`.
    """

    requests: Tuple[QueryRequest, ...]
    scheduled_time: float
    responses: Optional[List[QueryResponse]] = None
    callback: Optional[Callable[[List[QueryResponse]], None]] = field(
        default=None, repr=False
    )

    @property
    def done(self) -> bool:
        return self.responses is not None

    def _deliver(self, responses: List[QueryResponse]) -> None:
        self.responses = responses
        if self.callback is not None:
            self.callback(responses)


class QueryService:
    """The consumer read path: indices + snapshots + batch dispatch.

    Like :class:`~repro.rpc.Eth`, the binding may be *by node*: when
    ``node`` is set, every batch re-resolves ``node.chain`` so a
    restart-from-disk (which swaps the chain object wholesale) is
    followed — the index is rebuilt against the new object instead of
    serving the corpse.
    """

    def __init__(
        self,
        chain: Optional[Blockchain] = None,
        runtime: Optional[ContractRuntime] = None,
        node: Optional[object] = None,
        simulator: Optional[Simulator] = None,
        telemetry: Optional[Telemetry] = None,
        snapshot_capacity: int = 4,
    ) -> None:
        if chain is None and node is None:
            raise QueryError("QueryService needs a chain or a node to read from")
        self.chain = chain
        self.runtime = runtime
        self.node = node
        self.simulator = simulator
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.snapshots = SnapshotCache(capacity=snapshot_capacity)
        self.index = ChainIndex(self._live_chain(), telemetry=self.telemetry)
        self.events: Optional[EventIndex] = (
            EventIndex(runtime, telemetry=self.telemetry)
            if runtime is not None
            else None
        )

    @classmethod
    def connect(
        cls, platform, simulator: Optional[Simulator] = None, **kwargs: Any
    ) -> "QueryService":
        """Attach to a :class:`~repro.core.platform.SmartCrowdPlatform`.

        The platform itself carries the unified ``now``/``schedule_at``
        clock surface, so it doubles as the async-batch scheduler
        unless an explicit ``simulator`` is handed in.
        """
        return cls(
            chain=platform.mining.chain,
            runtime=platform.runtime,
            simulator=simulator if simulator is not None else platform,
            **kwargs,
        )

    # -- live resolution -----------------------------------------------------

    def _live_chain(self) -> Blockchain:
        if self.node is not None:
            if getattr(self.node, "crashed", False):
                name = getattr(self.node, "name", "node")
                raise QueryError(
                    f"{name} is down (crashed or mid-recovery); "
                    "retry once it has restarted"
                )
            chain = getattr(self.node, "chain", None)
            if chain is None:
                name = getattr(self.node, "name", "node")
                raise QueryError(f"{name} holds no full chain replica")
            return chain
        assert self.chain is not None  # guaranteed by __init__
        return self.chain

    def _live_index(self) -> ChainIndex:
        """The index, rebound if a restart swapped the chain object."""
        chain = self._live_chain()
        if self.index.chain is not chain:
            self.index = ChainIndex(chain, telemetry=self.telemetry)
        return self.index

    # -- serving -------------------------------------------------------------

    def serve(self, request: QueryRequest) -> QueryResponse:
        """Serve one request (a batch of one)."""
        return self.serve_batch([request])[0]

    def serve_batch(
        self, requests: Sequence[QueryRequest]
    ) -> List[QueryResponse]:
        """Serve a batch against one consistent chain view.

        The index refreshes once and the snapshot is captured once; all
        requests in the batch answer as of that head, even if live
        objects move underneath mid-iteration.
        """
        index = self._live_index()
        index.refresh()
        chain = self._live_chain()
        state = self.runtime.state if self.runtime is not None else None
        snapshot = self.snapshots.current(chain, state)
        if self.telemetry.enabled:
            self.telemetry.counter("query.requests").inc(len(requests))
        responses: List[QueryResponse] = []
        for request in requests:
            try:
                result = self._dispatch(request, index, snapshot)
            except (QueryError, ChainError, ValueError) as error:
                responses.append(
                    QueryResponse(request=request, ok=False, error=str(error))
                )
            else:
                responses.append(
                    QueryResponse(request=request, ok=True, result=result)
                )
        return responses

    def submit_batch(
        self,
        requests: Sequence[QueryRequest],
        delay: float = 0.0,
        callback: Optional[Callable[[List[QueryResponse]], None]] = None,
    ) -> PendingBatch:
        """Defer a batch onto the simulator clock.

        The batch runs when the simulator reaches ``now + delay``,
        interleaved deterministically (time, seq) with whatever else is
        scheduled; it observes the chain *as of that simulated moment*,
        not submission time.
        """
        if self.simulator is None:
            raise QueryError(
                "submit_batch needs a simulator binding "
                "(pass simulator= when constructing the service)"
            )
        pending = PendingBatch(
            requests=tuple(requests),
            scheduled_time=self.simulator.now + delay,
            callback=callback,
        )
        # schedule_at is the unified absolute-time surface shared by
        # Simulator and SmartCrowdPlatform, so either works as the clock.
        self.simulator.schedule_at(
            pending.scheduled_time,
            lambda: pending._deliver(self.serve_batch(pending.requests)),
        )
        return pending

    # -- dispatch ------------------------------------------------------------

    def _dispatch(
        self, request: QueryRequest, index: ChainIndex, snapshot: ChainSnapshot
    ) -> Any:
        params = request.param_dict()
        method = request.method
        if method == "head":
            return {
                "number": snapshot.height,
                "hash": "0x" + snapshot.head_id.hex(),
            }
        if method == "get_block":
            return self._serve_block(params["identifier"], snapshot)
        if method == "get_balance":
            return snapshot.balance(self._address(params["account"]))
        if method == "get_transaction":
            return self._serve_transaction(params["record_id"], index)
        if method == "get_transaction_count":
            return index.sender_count(self._address(params["account"]))
        if method == "get_reports":
            return index.reports(
                system=params.get("system"),
                provider=params.get("provider"),
                severity=params.get("severity"),
                detector=params.get("detector"),
            )
        if method == "get_sras":
            return index.sras(
                provider=params.get("provider"),
                system=params.get("system"),
                version=params.get("version"),
            )
        if method == "get_logs":
            if self.events is None:
                raise QueryError(
                    "no contract runtime attached: event queries need one"
                )
            return [
                {
                    "address": event.contract.hex(),
                    "event": event.name,
                    "args": dict(event.payload),
                    "blockTime": event.block_time,
                }
                for event in self.events.named(params["event_name"])
            ]
        raise QueryError(f"unknown query method {method!r}")

    def _serve_block(
        self, identifier: Union[int, str, bytes], snapshot: ChainSnapshot
    ) -> Dict[str, Any]:
        if identifier == "latest":
            return block_dict(snapshot.head)
        if identifier == "earliest":
            return block_dict(snapshot.blocks[0])
        if isinstance(identifier, bool):
            raise QueryError(
                f"bad block identifier {identifier!r}: True/False would "
                "silently read heights 1/0 — pass a plain int height"
            )
        if isinstance(identifier, int):
            payload = snapshot.block_dict_at_height(identifier)
            if payload is None:
                raise QueryError(f"no block at height {identifier}")
            return payload
        raw = identifier
        if isinstance(raw, str):
            try:
                raw = bytes.fromhex(raw.removeprefix("0x"))
            except ValueError as error:
                raise QueryError(
                    f"bad block identifier {identifier!r}"
                ) from error
        for block in snapshot.blocks:
            if block.block_id == raw:
                return block_dict(block)
        raise QueryError("unknown block hash (not on the snapshotted chain)")

    def _serve_transaction(
        self, record_id: Union[str, bytes], index: ChainIndex
    ) -> Dict[str, Any]:
        if isinstance(record_id, str):
            try:
                record_id = bytes.fromhex(record_id.removeprefix("0x"))
            except ValueError as error:
                raise QueryError(
                    f"malformed transaction id {record_id!r}: not valid hex"
                ) from error
        elif not isinstance(record_id, (bytes, bytearray)):
            raise QueryError(
                "transaction id must be bytes or 0x hex, got "
                f"{type(record_id).__name__}"
            )
        record_id = bytes(record_id)
        location = index.locate_record(record_id)
        if location is None:
            raise QueryError(
                f"transaction 0x{record_id.hex()} not found on the "
                "canonical chain"
            )
        record = index.get_record(record_id)
        return {
            "hash": "0x" + record_id.hex(),
            "blockHash": "0x" + location.block_id.hex(),
            "blockNumber": location.height,
            "transactionIndex": location.index_in_block,
            "kind": record.kind.value,
            "fee": record.fee,
            "from": record.sender.hex() if record.sender else None,
            "input": "0x" + record.payload.hex(),
        }

    @staticmethod
    def _address(account: Union[Address, str]) -> Address:
        if isinstance(account, Address):
            return account
        try:
            return Address.from_hex(account)
        except (ValueError, AttributeError, TypeError) as error:
            raise QueryError(f"malformed address {account!r}") from error
