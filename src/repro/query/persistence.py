"""Warm-start persistence for :class:`~repro.query.indices.ChainIndex`.

A restarted query node used to rebuild its materialized indices from
genesis — O(chain) of payload decoding before the first answer.  This
module serializes the index's :class:`~repro.query.indices.IndexState`
through the store layer's checksummed envelope
(:mod:`repro.store.indexfile`), so a restart *loads* the persisted
state and replays only the block delta above the persisted tip.

Safety argument: block ids are content-addressed and commit to their
whole ancestry, so validating that the persisted **tip** is a block
the live chain holds at the same height (and still canonical) proves
the entire persisted prefix matches the chain — there is nothing else
to re-verify.  A tip the chain no longer holds (reorged away while the
index was cold, or a different chain entirely) makes
:func:`load_index` return ``None`` and the caller falls back to the
from-genesis build, which stays alive as the parity oracle in tests
and the bench probe.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.chain.chain import Blockchain
from repro.codec import CodecError, pack, unpack
from repro.core.reports import DetailedReport
from repro.crypto.keys import Address
from repro.detection.vulnerability import Severity
from repro.query.indices import ChainIndex, IndexState, ReportEntry, SraEntry
from repro.store.frames import StoreError
from repro.store.indexfile import (
    INDEX_FILE_NAME,
    INDEX_FORMAT_VERSION,
    read_index_file,
    write_index_file,
)
from repro.telemetry import Telemetry

__all__ = [
    "decode_index_state",
    "encode_index_state",
    "load_index",
    "save_index",
]

# Fixed-width entry rows, decoded with struct.iter_unpack so the warm
# path never pays per-field Python parsing.  Strings are interned into
# one deduplicated table and referenced by u32 index; wei amounts ride
# as two u64 halves (128 bits covers every economic quantity here).
#: sra_id, insurance hi/lo, bounty hi/lo, height, index, provider,
#: system, version
_SRA_ROW = struct.Struct(">32s5Q4I")
#: record_id, sra_id, height, index, detector, provider, system,
#: version, severity count, key count
_REPORT_ROW = struct.Struct(">32s32sQ5I2H")
_SENDER_ROW = struct.Struct(">20sQ")
_LOCATION_ROW = struct.Struct(">32sQI")
_HEIGHT_ROW = struct.Struct("32s")


def _fields(blob: bytes) -> Iterator[bytes]:
    """Walk a :func:`repro.codec.pack` blob without knowing the count."""
    offset = 0
    size = len(blob)
    while offset < size:
        if offset + 4 > size:
            raise CodecError("truncated length prefix in index state")
        length = int.from_bytes(blob[offset : offset + 4], "big")
        offset += 4
        if offset + length > size:
            raise CodecError("field overruns index state blob")
        yield blob[offset : offset + length]
        offset += length


def _split_wei(value: int) -> Tuple[int, int]:
    if value < 0 or value >> 128:
        raise CodecError(
            f"wei amount {value} does not fit the 128-bit index format"
        )
    return value >> 64, value & 0xFFFFFFFFFFFFFFFF


def _encode_table(table: Dict[str, int]) -> bytes:
    """One byte of encoding kind, a u32 count, then the strings.

    Kind 0 joins the strings with NUL so the decode is a single
    ``split``; kind 1 is the length-prefixed fallback for the rare
    string that itself contains NUL.
    """
    values = list(table)
    count = len(values).to_bytes(4, "big")
    if any("\x00" in value for value in values):
        rows = []
        for value in values:
            encoded = value.encode()
            if len(encoded) > 0xFFFF:
                raise CodecError("index string exceeds 65535 bytes")
            rows.append(len(encoded).to_bytes(2, "big"))
            rows.append(encoded)
        return b"\x01" + count + b"".join(rows)
    return b"\x00" + count + "\x00".join(values).encode()


def _decode_table(blob: bytes) -> List[str]:
    if len(blob) < 5:
        raise CodecError("index string table is truncated")
    kind = blob[0]
    count = int.from_bytes(blob[1:5], "big")
    body = blob[5:]
    if kind == 0:
        if count == 0:
            if body:
                raise CodecError("empty string table carries data")
            return []
        table = body.decode().split("\x00")
    elif kind == 1:
        table = []
        offset = 0
        size = len(body)
        while offset < size:
            if offset + 2 > size:
                raise CodecError(
                    "truncated length prefix in index string table"
                )
            length = (body[offset] << 8) | body[offset + 1]
            offset += 2
            if offset + length > size:
                raise CodecError("string overruns index string table")
            table.append(body[offset : offset + length].decode())
            offset += length
    else:
        raise CodecError(f"unknown string table encoding {kind}")
    if len(table) != count:
        raise CodecError(
            f"string table promises {count} entries, holds {len(table)}"
        )
    return table


def _u32_list(blob: bytes, what: str) -> Tuple[int, ...]:
    if len(blob) % 4:
        raise CodecError(f"{what} blob is not a multiple of 4 bytes")
    return struct.unpack(f">{len(blob) // 4}I", blob)


def _encode_ordinal_map(mapping, refs_for_key) -> bytes:
    """A posting map as one u32 array.

    Layout: key count, then the key refs, then one posting-list length
    per key, then every posting list concatenated — a single
    ``struct.pack``/``unpack`` pair each way.
    """
    key_refs: List[int] = []
    counts: List[int] = []
    flat: List[int] = []
    for key, ordinals in mapping.items():
        key_refs.extend(refs_for_key(key))
        counts.append(len(ordinals))
        flat.extend(ordinals)
    total = 1 + len(key_refs) + len(counts) + len(flat)
    return struct.pack(f">{total}I", len(counts), *key_refs, *counts, *flat)


def _decode_ordinal_map(blob, resolve_keys, refs_per_key, limit, what):
    """Inverse of :func:`_encode_ordinal_map`.

    ``resolve_keys`` turns the whole key-ref array into the key list in
    one bulk call; ``limit`` bounds every ordinal (they index into the
    entry list the map points at).
    """
    array = _u32_list(blob, what)
    if not array:
        raise CodecError(f"{what} posting map is truncated")
    key_count = array[0]
    keys_end = 1 + key_count * refs_per_key
    counts_end = keys_end + key_count
    if counts_end > len(array):
        raise CodecError(f"{what} keys disagree with the count array")
    counts = array[keys_end:counts_end]
    flat = array[counts_end:]
    if sum(counts) != len(flat):
        raise CodecError(f"{what} posting lists disagree with the ordinals")
    if flat and max(flat) >= limit:
        raise CodecError(f"{what} posting list names a missing entry")
    keys = resolve_keys(array[1:keys_end])
    mapping = {}
    at = 0
    for key, count in zip(keys, counts):
        mapping[key] = list(flat[at : at + count])
        at += count
    if len(mapping) != key_count:
        raise CodecError(f"{what} holds a duplicate key")
    return mapping


def encode_index_state(state: IndexState) -> bytes:
    """Serialize an :class:`IndexState` into the envelope body."""
    for block_id in state.height_ids:
        if len(block_id) != 32:
            raise CodecError("height index holds a non-32-byte block id")
    table: Dict[str, int] = {}

    def intern(value: str) -> int:
        index = table.setdefault(value, len(table))
        return index

    senders = b"".join(
        address.value + count.to_bytes(8, "big")
        for address, count in state.sender_counts.items()
    )
    locations = b"".join(
        record_id + height.to_bytes(8, "big") + index.to_bytes(4, "big")
        for record_id, height, index in state.locations
    )
    sra_rows = []
    for entry in state.sras:
        insurance = _split_wei(entry.insurance_wei)
        bounty = _split_wei(entry.bounty_wei)
        sra_rows.append(
            _SRA_ROW.pack(
                entry.sra_id,
                insurance[0],
                insurance[1],
                bounty[0],
                bounty[1],
                entry.height,
                entry.index_in_block,
                intern(entry.provider_id),
                intern(entry.system_name),
                intern(entry.system_version),
            )
        )
    report_rows = []
    severity_refs: List[int] = []
    key_refs: List[int] = []
    for entry in state.reports:
        report_rows.append(
            _REPORT_ROW.pack(
                entry.record_id,
                entry.sra_id,
                entry.height,
                entry.index_in_block,
                intern(entry.detector_id),
                intern(entry.provider_id),
                intern(entry.system_name),
                intern(entry.system_version),
                len(entry.severities),
                len(entry.vulnerability_keys),
            )
        )
        severity_refs.extend(intern(s.value) for s in entry.severities)
        key_refs.extend(intern(k) for k in entry.vulnerability_keys)
    sra_ordinals = {entry.sra_id: at for at, entry in enumerate(state.sras)}

    def sra_key_refs(sra_id: bytes) -> Tuple[int]:
        ordinal = sra_ordinals.get(sra_id)
        if ordinal is None:
            raise CodecError("by-SRA posting map names an unknown SRA")
        return (ordinal,)

    maps = pack(
        [
            _encode_ordinal_map(
                state.sras_by_release,
                lambda key: (intern(key[0]), intern(key[1])),
            ),
            _encode_ordinal_map(
                state.sras_by_provider, lambda key: (intern(key),)
            ),
            _encode_ordinal_map(
                state.reports_by_system, lambda key: (intern(key),)
            ),
            _encode_ordinal_map(
                state.reports_by_provider, lambda key: (intern(key),)
            ),
            _encode_ordinal_map(
                state.reports_by_severity, lambda key: (intern(key.value),)
            ),
            _encode_ordinal_map(
                state.reports_by_detector, lambda key: (intern(key),)
            ),
            _encode_ordinal_map(state.reports_by_sra, sra_key_refs),
        ]
    )
    return pack(
        [
            b"".join(state.height_ids),
            senders,
            locations,
            # confirmed_height is -1 before the first confirmation;
            # shift by one to keep the field unsigned.
            (state.confirmed_height + 1).to_bytes(8, "big"),
            state.confirmed_block_id or b"",
            _encode_table(table),
            b"".join(sra_rows),
            b"".join(report_rows),
            struct.pack(f">{len(severity_refs)}I", *severity_refs),
            struct.pack(f">{len(key_refs)}I", *key_refs),
            pack(
                [
                    pack(
                        [
                            height.to_bytes(8, "big"),
                            position.to_bytes(4, "big"),
                            report.to_payload(),
                        ]
                    )
                    for height, position, report in state.pending_reports
                ]
            ),
            maps,
        ]
    )


def decode_index_state(body: bytes) -> IndexState:
    """Parse an envelope body; raises :class:`CodecError` on bad input."""
    (
        height_blob,
        sender_blob,
        location_blob,
        confirmed_height,
        confirmed_block_id,
        table_blob,
        sra_blob,
        report_blob,
        severity_blob,
        key_blob,
        pending_blob,
        maps_blob,
    ) = unpack(body, 12)
    if len(height_blob) % 32:
        raise CodecError("height index blob is not a multiple of 32 bytes")
    if len(sender_blob) % _SENDER_ROW.size:
        raise CodecError("sender count blob is not a multiple of 28 bytes")
    if len(location_blob) % _LOCATION_ROW.size:
        raise CodecError("location blob is not a multiple of 44 bytes")
    if len(sra_blob) % _SRA_ROW.size:
        raise CodecError("SRA blob is not a multiple of the row size")
    if len(report_blob) % _REPORT_ROW.size:
        raise CodecError("report blob is not a multiple of the row size")
    height_ids = [row[0] for row in _HEIGHT_ROW.iter_unpack(height_blob)]
    sender_counts = {
        Address(raw): count
        for raw, count in _SENDER_ROW.iter_unpack(sender_blob)
    }
    # Height bounds on the locations are enforced once, by
    # ``ChainIndex._adopt_state`` — the only consumer of this state.
    locations: List[Tuple[bytes, int, int]] = list(
        _LOCATION_ROW.iter_unpack(location_blob)
    )
    table = _decode_table(table_blob)
    severity_cache: Dict[int, Severity] = {}
    try:
        sras = [
            SraEntry(
                sra_id,
                table[provider],
                table[system],
                table[version],
                (ins_hi << 64) | ins_lo,
                (bounty_hi << 64) | bounty_lo,
                height,
                index,
            )
            for (
                sra_id,
                ins_hi,
                ins_lo,
                bounty_hi,
                bounty_lo,
                height,
                index,
                provider,
                system,
                version,
            ) in _SRA_ROW.iter_unpack(sra_blob)
        ]
        severities: List[Severity] = []
        resolved = severity_cache.get
        for ref in _u32_list(severity_blob, "severity reference"):
            severity = resolved(ref)
            if severity is None:
                severity = severity_cache[ref] = Severity(table[ref])
            severities.append(severity)
        keys = [table[ref] for ref in _u32_list(key_blob, "key reference")]
        reports: List[ReportEntry] = []
        severity_at = key_at = 0
        for (
            record_id,
            sra_id,
            height,
            index,
            detector,
            provider,
            system,
            version,
            n_severities,
            n_keys,
        ) in _REPORT_ROW.iter_unpack(report_blob):
            reports.append(
                ReportEntry(
                    record_id,
                    sra_id,
                    table[detector],
                    table[provider],
                    table[system],
                    table[version],
                    tuple(severities[severity_at : severity_at + n_severities]),
                    tuple(keys[key_at : key_at + n_keys]),
                    height,
                    index,
                )
            )
            severity_at += n_severities
            key_at += n_keys
        if severity_at != len(severities) or key_at != len(keys):
            raise CodecError("report rows disagree with the reference arrays")
        (
            release_blob,
            sra_provider_blob,
            system_blob,
            provider_blob,
            by_severity_blob,
            detector_blob,
            by_sra_blob,
        ) = unpack(maps_blob, 7)
        def strings(refs):
            return [table[ref] for ref in refs]

        sras_by_release = _decode_ordinal_map(
            release_blob,
            lambda refs: list(
                zip(strings(refs[0::2]), strings(refs[1::2]))
            ),
            2,
            len(sras),
            "by-release",
        )
        sras_by_provider = _decode_ordinal_map(
            sra_provider_blob, strings, 1, len(sras), "SRAs-by-provider"
        )
        reports_by_system = _decode_ordinal_map(
            system_blob, strings, 1, len(reports), "by-system"
        )
        reports_by_provider = _decode_ordinal_map(
            provider_blob, strings, 1, len(reports), "reports-by-provider"
        )
        reports_by_severity = _decode_ordinal_map(
            by_severity_blob,
            lambda refs: [Severity(table[ref]) for ref in refs],
            1,
            len(reports),
            "by-severity",
        )
        reports_by_detector = _decode_ordinal_map(
            detector_blob, strings, 1, len(reports), "by-detector"
        )
        reports_by_sra = _decode_ordinal_map(
            by_sra_blob,
            lambda refs: [sras[ref][0] for ref in refs],
            1,
            len(reports),
            "by-SRA",
        )
    except IndexError as error:
        raise CodecError(f"index entry references a missing string: {error}")
    except ValueError as error:
        if isinstance(error, CodecError):
            raise
        raise CodecError(f"malformed index entry: {error}")
    pending: List[Tuple[int, int, DetailedReport]] = []
    for blob in _fields(pending_blob):
        height_bytes, position_bytes, payload = unpack(blob, 3)
        pending.append(
            (
                int.from_bytes(height_bytes, "big"),
                int.from_bytes(position_bytes, "big"),
                DetailedReport.from_payload(payload),
            )
        )
    return IndexState(
        height_ids=height_ids,
        sender_counts=sender_counts,
        locations=locations,
        confirmed_height=int.from_bytes(confirmed_height, "big") - 1,
        confirmed_block_id=confirmed_block_id or None,
        sras=sras,
        reports=reports,
        pending_reports=pending,
        sras_by_release=sras_by_release,
        sras_by_provider=sras_by_provider,
        reports_by_system=reports_by_system,
        reports_by_provider=reports_by_provider,
        reports_by_severity=reports_by_severity,
        reports_by_detector=reports_by_detector,
        reports_by_sra=reports_by_sra,
    )


def save_index(index: ChainIndex, directory: Union[str, Path]) -> Path:
    """Persist ``index`` as ``directory/index.snap`` (atomic write)."""
    state = index.dump_state()
    if not state.height_ids:
        raise StoreError("cannot persist an index that has seen no blocks")
    return write_index_file(
        Path(directory) / INDEX_FILE_NAME,
        tip_height=state.tip_height,
        tip_block_id=state.tip_block_id,
        body=encode_index_state(state),
    )


def load_index(
    chain: Blockchain,
    directory: Union[str, Path],
    telemetry: Optional[Telemetry] = None,
) -> Optional[ChainIndex]:
    """Warm-start a :class:`ChainIndex` over ``chain`` from disk.

    Returns ``None`` — meaning *cold-build instead* — when the file is
    absent, zero-length (never-written debris), corrupt, from an
    unknown schema version, or pinned at a tip the live chain does not
    hold canonically.  A successful load replays only the delta above
    the persisted tip (observable as ``index.blocks_indexed``).
    """
    path = Path(directory) / INDEX_FILE_NAME
    try:
        if not path.is_file() or path.stat().st_size == 0:
            return None
        info = read_index_file(path)
    except (StoreError, CodecError, OSError):
        return None
    if info.version != INDEX_FORMAT_VERSION:
        return None
    tip = chain.get_block(info.tip_block_id)
    if (
        tip is None
        or tip.height != info.tip_height
        or not chain.is_canonical(info.tip_block_id)
    ):
        return None
    try:
        state = decode_index_state(info.body)
    except (CodecError, ValueError):
        return None
    if not state.height_ids or state.tip_block_id != info.tip_block_id:
        return None
    try:
        return ChainIndex(chain, telemetry=telemetry, state=state)
    except ValueError:
        # Structurally invalid state (e.g. a location beyond the
        # persisted tip): fall back to a cold build.
        return None
