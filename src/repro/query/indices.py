"""Materialized read indices over the confirmed report chain.

The paper's consumers "query the report chain before deploying a
system" (§V, §VII).  Answering those queries by rescanning the chain —
every canonical block per nonce lookup, every confirmed payload per
report filter — is O(chain) per call and quadratic over a consumer
workload.  :class:`ChainIndex` maintains the answers *incrementally*:

* canonical-path indices (height → block id, sender → record count,
  record id → location) advanced one block at a time as the head moves;
* confirmed-report indices (reports by system / vendor / severity /
  detector, SRAs by release) advanced at the confirmation boundary,
  mirroring the retrospective-monitor cursor pattern — confirmed blocks
  are stable under the 6-deep rule, so each refresh decodes only the
  newly confirmed payloads.

Both cursors carry a reorg guard: if the block a cursor last stopped at
is no longer canonical, every derived structure is rebuilt from genesis
(a correctness backstop, not a steady-state path; rebuilds are counted
in ``query.rebuilds``).  The full-scan forms the indices replace stay
alive as parity oracles in ``tests/query``.

:class:`EventIndex` is the runtime-side sibling: the contract event log
is append-only (reverted calls never commit events), so by-name lookups
are served from buckets that absorb only the events appended since the
previous read.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, NamedTuple, Optional, Tuple, Union

from repro.chain.block import Block, ChainRecord, RecordKind
from repro.chain.chain import Blockchain, ChainError, RecordLocation
from repro.contracts.contract import ContractEvent
from repro.core.reports import DetailedReport
from repro.core.sra import SignedSRA
from repro.crypto.keys import Address
from repro.detection.vulnerability import Severity
from repro.telemetry import NULL_TELEMETRY, Telemetry

__all__ = ["ChainIndex", "EventIndex", "IndexState", "ReportEntry", "SraEntry"]


class SraEntry(NamedTuple):
    """One confirmed release announcement, as the index materializes it.

    A ``NamedTuple`` rather than a dataclass: the warm-start decode
    constructs every persisted entry, and the C-level tuple constructor
    keeps that linear pass cheap.
    """

    sra_id: bytes
    provider_id: str
    system_name: str
    system_version: str
    insurance_wei: int
    bounty_wei: int
    height: int
    index_in_block: int

    @property
    def release_key(self) -> Tuple[str, str]:
        return (self.system_name, self.system_version)


class ReportEntry(NamedTuple):
    """One confirmed detailed report, joined to its release.

    ``severities`` / ``vulnerability_keys`` are per-description (a
    report may describe several flaws); the by-severity index lists a
    report under every severity it mentions.
    """

    record_id: bytes
    sra_id: bytes
    detector_id: str
    provider_id: str
    system_name: str
    system_version: str
    severities: Tuple[Severity, ...]
    vulnerability_keys: Tuple[str, ...]
    height: int
    index_in_block: int

    @property
    def location(self) -> Tuple[int, int]:
        """Chain-order sort key."""
        return (self.height, self.index_in_block)


@dataclass
class IndexState:
    """Everything a :class:`ChainIndex` needs to resume where it left off.

    The warm-start unit: :meth:`ChainIndex.dump_state` captures it,
    :mod:`repro.query.persistence` serializes it through the store
    layer, and ``ChainIndex(chain, state=...)`` adopts it and replays
    only the blocks above ``height_ids[-1]``.  The derived posting maps
    (by-system, by-severity, ...) ride along as plain entry-ordinal
    lists: adoption is then a bulk copy instead of a per-entry re-filing
    pass, and because they are part of the state, the warm-vs-cold
    ``dump_state`` parity checks cover any drift between the persisted
    maps and the live filing logic.
    """

    height_ids: List[bytes]
    sender_counts: Dict[Address, int]
    #: (record_id, height, index_in_block); the block id is recovered
    #: from ``height_ids`` so each location costs 44 bytes, not 76.
    locations: List[Tuple[bytes, int, int]]
    confirmed_height: int
    confirmed_block_id: Optional[bytes]
    sras: List[SraEntry]
    reports: List[ReportEntry]
    pending_reports: List[Tuple[int, int, DetailedReport]]
    #: Posting maps: values are ordinals into ``sras`` / ``reports``.
    sras_by_release: Dict[Tuple[str, str], List[int]]
    sras_by_provider: Dict[str, List[int]]
    reports_by_system: Dict[str, List[int]]
    reports_by_provider: Dict[str, List[int]]
    reports_by_severity: Dict[Severity, List[int]]
    reports_by_detector: Dict[str, List[int]]
    reports_by_sra: Dict[bytes, List[int]]

    @property
    def tip_height(self) -> int:
        return len(self.height_ids) - 1

    @property
    def tip_block_id(self) -> bytes:
        if not self.height_ids:
            raise ValueError("an empty index state has no tip")
        return self.height_ids[-1]


def _require_plain_height(height: int) -> None:
    """Shared height validation (mirrors :meth:`Blockchain.block_at_height`)."""
    if isinstance(height, bool):
        raise ChainError(
            "block height must be an int, not a bool "
            "(True/False would silently read heights 1/0)"
        )
    if height < 0:
        raise ChainError(
            f"height {height} is negative: canonical heights are absolute, "
            "with no Python-list wraparound"
        )


class ChainIndex:
    """Incrementally maintained read indices over one :class:`Blockchain`.

    Every public query calls :meth:`refresh` first, so callers never
    observe a stale answer; when the head has not moved, a refresh is
    one block-id comparison.  Answers are bit-identical to the
    full-scan forms (property-tested in ``tests/query``).
    """

    def __init__(
        self,
        chain: Blockchain,
        telemetry: Optional[Telemetry] = None,
        state: Optional[IndexState] = None,
    ) -> None:
        self.chain = chain
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        #: Reorg-triggered full rebuilds since construction (the initial
        #: build does not count).
        self.rebuilds = 0
        #: Blocks folded in via ``_apply_canonical`` since construction
        #: — the warm-start observable: an index adopted from a
        #: persisted :class:`IndexState` ends construction with only
        #: the *delta* above the persisted tip counted here, never the
        #: whole chain.
        self.blocks_indexed = 0
        if state is not None:
            self._adopt_state(state)
        else:
            self._reset()
        self.refresh()

    # -- cursor maintenance -------------------------------------------------

    def _reset(self) -> None:
        self._height_ids: List[bytes] = []
        self._sender_counts: Dict[Address, int] = {}
        #: record_id -> (height, index_in_block); the block id is
        #: recoverable from ``_height_ids``, so the hot indexing path
        #: stores a plain tuple and :meth:`locate_record` materializes
        #: the :class:`RecordLocation` on demand.
        self._locations: Dict[bytes, Tuple[int, int]] = {}
        self._reset_confirmed()

    def _reset_confirmed(self) -> None:
        self._confirmed_height = -1
        self._confirmed_block_id: Optional[bytes] = None
        self._sras: Dict[bytes, SraEntry] = {}
        self._sras_in_order: List[SraEntry] = []
        self._sras_by_release: Dict[Tuple[str, str], List[int]] = {}
        self._sras_by_provider: Dict[str, List[int]] = {}
        self._reports: List[ReportEntry] = []
        self._reports_by_system: Dict[str, List[int]] = {}
        self._reports_by_provider: Dict[str, List[int]] = {}
        self._reports_by_severity: Dict[Severity, List[int]] = {}
        self._reports_by_detector: Dict[str, List[int]] = {}
        self._reports_by_sra: Dict[bytes, List[int]] = {}
        self._pending_reports: List[Tuple[int, int, DetailedReport]] = []

    # -- warm start ---------------------------------------------------------

    def dump_state(self) -> IndexState:
        """Capture the cursor state for persistence (no live references).

        The capture is taken as-is, *without* refreshing first: callers
        persist the view they have been serving.
        """
        def copied(mapping):
            return {key: list(value) for key, value in mapping.items()}

        return IndexState(
            height_ids=list(self._height_ids),
            sender_counts=dict(self._sender_counts),
            locations=[
                (record_id, height, index_in_block)
                for record_id, (height, index_in_block) in self._locations.items()
            ],
            confirmed_height=self._confirmed_height,
            confirmed_block_id=self._confirmed_block_id,
            sras=list(self._sras_in_order),
            reports=list(self._reports),
            pending_reports=list(self._pending_reports),
            sras_by_release=copied(self._sras_by_release),
            sras_by_provider=copied(self._sras_by_provider),
            reports_by_system=copied(self._reports_by_system),
            reports_by_provider=copied(self._reports_by_provider),
            reports_by_severity=copied(self._reports_by_severity),
            reports_by_detector=copied(self._reports_by_detector),
            reports_by_sra=copied(self._reports_by_sra),
        )

    def _adopt_state(self, state: IndexState) -> None:
        """Rebuild the internal structures from a persisted state.

        The posting maps travel inside the state as ordinal lists, so
        adoption is a bulk copy; the follow-up :meth:`refresh` replays
        only the chain delta above ``state.tip_height`` (or falls into
        the ordinary reorg guard if that tip was abandoned while the
        index was cold).
        """
        self._reset()
        self._height_ids = list(state.height_ids)
        self._sender_counts = dict(state.sender_counts)
        tip = len(state.height_ids)
        self._locations = {
            record_id: (height, index_in_block)
            for record_id, height, index_in_block in state.locations
        }
        # max() over the (height, index) tuples compares heights first,
        # so this is one C-level pass, not a per-entry genexpr.
        if self._locations and max(self._locations.values())[0] >= tip:
            raise ValueError("location names a height beyond the index tip")
        self._confirmed_height = state.confirmed_height
        self._confirmed_block_id = state.confirmed_block_id
        self._sras_in_order = list(state.sras)
        self._sras = {entry[0]: entry for entry in self._sras_in_order}
        self._reports = list(state.reports)

        def copied(mapping):
            return {key: list(value) for key, value in mapping.items()}

        self._sras_by_release = copied(state.sras_by_release)
        self._sras_by_provider = copied(state.sras_by_provider)
        self._reports_by_system = copied(state.reports_by_system)
        self._reports_by_provider = copied(state.reports_by_provider)
        self._reports_by_severity = copied(state.reports_by_severity)
        self._reports_by_detector = copied(state.reports_by_detector)
        self._reports_by_sra = copied(state.reports_by_sra)
        self._pending_reports = list(state.pending_reports)

    def refresh(self) -> None:
        """Fold head movement since the last refresh into every index."""
        head = self.chain.head
        tip_height = len(self._height_ids) - 1
        if tip_height == head.height and self._height_ids[-1] == head.block_id:
            return  # head unchanged: nothing moved
        if head.height < tip_height:
            # The canonical chain got *shorter* (heavier-but-shorter
            # branch won): unambiguous reorg.
            self._rebuild()
            return
        new_blocks: List[Block] = []
        block = head
        while block.height > tip_height:
            new_blocks.append(block)
            if block.height == 0:
                break
            block = self.chain.get_block(block.header.prev_block_id)
        if tip_height >= 0 and block.block_id != self._height_ids[tip_height]:
            # The walk from the new head does not pass through our
            # recorded tip: the branch we indexed was abandoned.
            self._rebuild()
            return
        for extension in reversed(new_blocks):
            self._apply_canonical(extension)
        self._advance_confirmed()

    def _rebuild(self) -> None:
        """Reorg guard: rebuild everything against the new canonical chain."""
        self.rebuilds += 1
        if self.telemetry.enabled:
            self.telemetry.counter("query.rebuilds").inc()
        self._reset()
        for block in self.chain.iter_canonical():
            self._apply_canonical(block)
        self._advance_confirmed()

    def _apply_canonical(self, block: Block) -> None:
        self.blocks_indexed += 1
        self._height_ids.append(block.block_id)
        for position, record in enumerate(block.records):
            if record.sender is not None:
                self._sender_counts[record.sender] = (
                    self._sender_counts.get(record.sender, 0) + 1
                )
            self._locations[record.record_id] = (block.height, position)

    def _advance_confirmed(self) -> None:
        confirmed_height = self.chain.head.height - self.chain.confirmation_depth
        if self._confirmed_height >= 0 and (
            self._confirmed_height >= len(self._height_ids)
            or self._height_ids[self._confirmed_height] != self._confirmed_block_id
        ):
            # A confirmed block was rewritten — impossible under the
            # depth rule in these simulations, but guarded anyway.
            self._reset_confirmed()
        for height in range(self._confirmed_height + 1, confirmed_height + 1):
            block = self.chain.get_block(self._height_ids[height])
            for position, record in enumerate(block.records):
                self._index_confirmed_record(height, position, record)
            self._confirmed_height = height
            self._confirmed_block_id = block.block_id

    def _index_confirmed_record(
        self, height: int, position: int, record: ChainRecord
    ) -> None:
        if record.kind == RecordKind.SRA:
            sra = SignedSRA.from_payload(record.payload)
            entry = SraEntry(
                sra_id=sra.sra_id,
                provider_id=sra.body.provider_id,
                system_name=sra.body.system_name,
                system_version=sra.body.system_version,
                insurance_wei=sra.body.insurance_wei,
                bounty_wei=sra.body.bounty_wei,
                height=height,
                index_in_block=position,
            )
            index = len(self._sras_in_order)
            self._sras_in_order.append(entry)
            self._sras[entry.sra_id] = entry
            self._sras_by_release.setdefault(entry.release_key, []).append(index)
            self._sras_by_provider.setdefault(entry.provider_id, []).append(index)
            if self._pending_reports:
                # A report can only be parked while its SRA is unseen;
                # retry the queue now that a new SRA landed.
                pending, self._pending_reports = self._pending_reports, []
                for parked in pending:
                    self._file_report(*parked)
        elif record.kind == RecordKind.DETAILED_REPORT:
            report = DetailedReport.from_payload(record.payload)
            self._file_report(height, position, report)

    def _file_report(
        self, height: int, position: int, report: DetailedReport
    ) -> None:
        """Join a confirmed report to its release (or park it).

        The platform always records an SRA before any report against
        it, so in practice reports resolve in chain order; a report
        whose SRA is not yet indexed waits and is retried when the next
        SRA lands — matching the two-pass full scan, which resolves
        such reports regardless of record order.
        """
        sra = self._sras.get(report.sra_id)
        if sra is None:
            self._pending_reports.append((height, position, report))
            return
        entry = ReportEntry(
            record_id=report.report_id,
            sra_id=report.sra_id,
            detector_id=report.detector_id,
            provider_id=sra.provider_id,
            system_name=sra.system_name,
            system_version=sra.system_version,
            severities=tuple(d.severity for d in report.descriptions),
            vulnerability_keys=tuple(d.canonical for d in report.descriptions),
            height=height,
            index_in_block=position,
        )
        index = len(self._reports)
        self._reports.append(entry)
        self._reports_by_system.setdefault(entry.system_name, []).append(index)
        self._reports_by_provider.setdefault(entry.provider_id, []).append(index)
        self._reports_by_detector.setdefault(entry.detector_id, []).append(index)
        self._reports_by_sra.setdefault(entry.sra_id, []).append(index)
        for severity in set(entry.severities):
            self._reports_by_severity.setdefault(severity, []).append(index)

    def _hit(self) -> None:
        if self.telemetry.enabled:
            self.telemetry.counter("query.index_hits").inc()

    # -- canonical-path queries ---------------------------------------------

    @property
    def confirmed_height(self) -> int:
        """Highest height folded into the confirmed-report indices."""
        return self._confirmed_height

    def block_id_at_height(self, height: int) -> Optional[bytes]:
        """Canonical block id at ``height`` — O(1) against the index."""
        _require_plain_height(height)
        self.refresh()
        self._hit()
        if height >= len(self._height_ids):
            return None
        return self._height_ids[height]

    def block_at_height(self, height: int) -> Optional[Block]:
        """The canonical block at ``height``, or None above the head.

        Same answer (and same bool/negative rejection) as
        :meth:`Blockchain.block_at_height`, without the head walk.
        """
        block_id = self.block_id_at_height(height)
        if block_id is None:
            return None
        return self.chain.get_block(block_id)

    def sender_count(self, sender: Address) -> int:
        """Canonical records sent by ``sender`` (web3's nonce query)."""
        self.refresh()
        self._hit()
        return self._sender_counts.get(sender, 0)

    def locate_record(self, record_id: bytes) -> Optional[RecordLocation]:
        """Where a record lives on the canonical chain (indexed)."""
        self.refresh()
        self._hit()
        entry = self._locations.get(record_id)
        if entry is None:
            return None
        height, index_in_block = entry
        return RecordLocation(
            block_id=self._height_ids[height],
            height=height,
            index_in_block=index_in_block,
        )

    def get_record(self, record_id: bytes) -> Optional[ChainRecord]:
        """Fetch a canonical record by id through the location index."""
        location = self.locate_record(record_id)
        if location is None:
            return None
        return self.chain.get_block(location.block_id).records[
            location.index_in_block
        ]

    # -- confirmed-report queries -------------------------------------------

    def sras(
        self,
        provider: Optional[str] = None,
        system: Optional[str] = None,
        version: Optional[str] = None,
    ) -> List[SraEntry]:
        """Confirmed release announcements, filtered, in chain order."""
        self.refresh()
        self._hit()
        candidates: Optional[set] = None
        if provider is not None:
            candidates = set(self._sras_by_provider.get(provider, ()))
        if system is not None:
            if version is not None:
                matches = set(self._sras_by_release.get((system, version), ()))
            else:
                matches = {
                    index
                    for key, indices in self._sras_by_release.items()
                    if key[0] == system
                    for index in indices
                }
            candidates = matches if candidates is None else candidates & matches
        if candidates is None:
            return list(self._sras_in_order)
        return [self._sras_in_order[index] for index in sorted(candidates)]

    def reports(
        self,
        system: Optional[str] = None,
        provider: Optional[str] = None,
        severity: Optional[Union[Severity, str]] = None,
        detector: Optional[str] = None,
        sra_id: Optional[bytes] = None,
    ) -> List[ReportEntry]:
        """Confirmed detailed reports matching every given filter.

        Results come back in chain order (height, index-in-block); the
        filters intersect, so ``reports(system=..., severity=...)`` is
        "reports against this system that mention this severity".
        """
        self.refresh()
        self._hit()
        if isinstance(severity, str):
            severity = Severity(severity)
        candidates: Optional[set] = None
        for bucket, key in (
            (self._reports_by_system, system),
            (self._reports_by_provider, provider),
            (self._reports_by_severity, severity),
            (self._reports_by_detector, detector),
            (self._reports_by_sra, sra_id),
        ):
            if key is None:
                continue
            matches = set(bucket.get(key, ()))
            candidates = matches if candidates is None else candidates & matches
        if candidates is None:
            entries = list(self._reports)
        else:
            entries = [self._reports[index] for index in sorted(candidates)]
        return sorted(entries, key=lambda entry: entry.location)


class EventIndex:
    """By-name buckets over the contract runtime's append-only event log.

    The log only ever grows (reverted calls discard their events before
    commit), so a single consumed-count cursor suffices: each refresh
    absorbs only the events appended since the previous read, and
    ``named`` is O(matches) instead of O(all events) per call.
    """

    def __init__(self, runtime, telemetry: Optional[Telemetry] = None) -> None:
        self.runtime = runtime
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._consumed = 0
        self._by_name: Dict[str, List[ContractEvent]] = {}

    @property
    def consumed(self) -> int:
        """Events folded into the buckets so far."""
        return self._consumed

    def refresh(self) -> None:
        """Absorb events appended since the previous refresh."""
        fresh = self.runtime.events_since(self._consumed)
        for event in fresh:
            self._by_name.setdefault(event.name, []).append(event)
        self._consumed += len(fresh)

    def named(self, name: str) -> List[ContractEvent]:
        """All committed events with ``name``, oldest first."""
        self.refresh()
        if self.telemetry.enabled:
            self.telemetry.counter("query.index_hits").inc()
        return list(self._by_name.get(name, ()))

    def named_slice(
        self, name: str, start: int, limit: int
    ) -> Tuple[List[ContractEvent], int]:
        """A page of the ``name`` bucket: (events, bucket total).

        The event log is append-only, so positions within a bucket are
        stable forever — an integer offset is a reorg-proof cursor.
        Slicing here avoids materializing the whole bucket copy that
        :meth:`named` makes.
        """
        self.refresh()
        if self.telemetry.enabled:
            self.telemetry.counter("query.index_hits").inc()
        bucket = self._by_name.get(name, [])
        return list(bucket[start : start + limit]), len(bucket)
