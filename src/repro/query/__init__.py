"""The consumer-side read path: indices, snapshots, batched serving.

The paper's consumers "query the report chain before deploying a
system" (§V, §VII); this package serves that traffic at volume.
:class:`ChainIndex` materializes report/nonce/height/location lookups
incrementally at block confirmation (reorg-guard rebuild),
:class:`SnapshotCache` freezes block/ledger views per head, and
:class:`QueryService` batches mixed requests with deterministic
scheduling under the simulator clock.  ``repro.rpc`` routes its hot
reads through the same indices, so existing ``Web3Shim`` call sites
get the fast path transparently.
"""

from repro.query.indices import ChainIndex, EventIndex, ReportEntry, SraEntry
from repro.query.service import (
    PendingBatch,
    QueryError,
    QueryRequest,
    QueryResponse,
    QueryService,
)
from repro.query.snapshots import ChainSnapshot, SnapshotCache, block_dict

__all__ = [
    "ChainIndex",
    "ChainSnapshot",
    "EventIndex",
    "PendingBatch",
    "QueryError",
    "QueryRequest",
    "QueryResponse",
    "QueryService",
    "ReportEntry",
    "SnapshotCache",
    "SraEntry",
    "block_dict",
]
