"""The consumer-side read path: indices, snapshots, batched serving.

The paper's consumers "query the report chain before deploying a
system" (§V, §VII); this package serves that traffic at volume.
:class:`ChainIndex` materializes report/nonce/height/location lookups
incrementally at block confirmation (reorg-guard rebuild),
:class:`SnapshotCache` freezes block/ledger views per head, and
:class:`QueryService` batches mixed requests with deterministic
scheduling under the simulator clock.  ``repro.rpc`` routes its hot
reads through the same indices, so existing ``Web3Shim`` call sites
get the fast path transparently.

Beyond one process: :mod:`repro.query.persistence` gives the index a
durable home next to the block log (warm-start restarts replay only
the delta above the persisted tip), :meth:`QueryService.connect_node`
binds the service to full or light replica nodes, every response
carries a :class:`StalenessBound` against the canonical chain, and
multi-row reads are paginated with reorg-safe cursors.
"""

from repro.query.indices import (
    ChainIndex,
    EventIndex,
    IndexState,
    ReportEntry,
    SraEntry,
)
from repro.query.service import (
    DEFAULT_PAGE_LIMIT,
    MAX_PAGE_LIMIT,
    PendingBatch,
    QueryError,
    QueryRequest,
    QueryResponse,
    QueryService,
    StalenessBound,
)
from repro.query.snapshots import (
    ChainSnapshot,
    SnapshotCache,
    block_dict,
    header_dict,
)

#: Persistence names resolved lazily (PEP 562): repro.query is imported
#: while repro.chain initializes (via repro.contracts.explorer), and
#: repro.query.persistence pulls in repro.store, which sits *above*
#: repro.chain — an eager import here would be a cycle.
_PERSISTENCE_EXPORTS = frozenset(
    {"decode_index_state", "encode_index_state", "load_index", "save_index"}
)


def __getattr__(name):
    if name in _PERSISTENCE_EXPORTS:
        from repro.query import persistence

        return getattr(persistence, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ChainIndex",
    "ChainSnapshot",
    "DEFAULT_PAGE_LIMIT",
    "EventIndex",
    "IndexState",
    "MAX_PAGE_LIMIT",
    "PendingBatch",
    "QueryError",
    "QueryRequest",
    "QueryResponse",
    "QueryService",
    "ReportEntry",
    "SnapshotCache",
    "SraEntry",
    "StalenessBound",
    "block_dict",
    "decode_index_state",
    "encode_index_state",
    "header_dict",
    "load_index",
    "save_index",
]
