"""A web3-style RPC facade over the simulated node.

The prototype wires detectors to contracts through "the Ethereum JSON
API and a python module library of Web3" (§VII).  This module
reproduces that programming surface in-process: a :class:`Web3Shim`
fronts a chain + contract runtime with the ``w3.eth``-shaped calls the
paper's scripts would make — balances, blocks, transaction receipts,
contract deploy/call — so code written against the prototype's glue
layer ports to the simulator nearly verbatim.

Method names follow web3.py (``get_balance``, ``block_number``,
``get_block``); values use the same conventions (wei amounts, ``0x``
hex identifiers, dict-shaped blocks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from repro.chain.block import Block
from repro.chain.chain import Blockchain, ChainError
from repro.chain.mempool import Mempool
from repro.contracts.contract import Contract, Receipt
from repro.contracts.vm import ContractRuntime
from repro.crypto.keys import Address
from repro.hexargs import parse_hex
from repro.query.indices import ChainIndex
from repro.query.snapshots import block_dict

__all__ = ["Eth", "RpcError", "Web3Shim"]

BlockIdentifier = Union[int, str, bytes]


class RpcError(ValueError):
    """Raised for unknown blocks, records, or malformed identifiers."""


def _hex(data: bytes) -> str:
    return "0x" + data.hex()


@dataclass
class Eth:
    """The ``w3.eth`` namespace."""

    chain: Optional[Blockchain]
    runtime: Optional[ContractRuntime]
    #: The node's pending-record pool, when the shim fronts a live node
    #: (``Web3Shim.connect``); pending lookups need it.
    mempool: Optional[Mempool] = None
    #: A live replica node (``Web3Shim.connect_node``).  When set, every
    #: call re-resolves ``chain``/``mempool`` from the node's *current*
    #: attributes — a restart-from-disk swaps the node's chain object
    #: wholesale, and a shim bound to the old object would serve stale
    #: blocks and phantom receipts.
    node: Optional[object] = None
    #: Lazily built read index over the live chain (height → block,
    #: sender → count).  Rebound whenever the chain object is swapped
    #: (restart-from-disk), mirroring ``_live_chain``'s discipline.
    _index: Optional[ChainIndex] = field(default=None, repr=False, compare=False)

    # -- live resolution ----------------------------------------------------

    def _live_chain(self) -> Blockchain:
        """The chain to answer from right now; RpcError if there is none."""
        if self.node is not None:
            if getattr(self.node, "crashed", False):
                name = getattr(self.node, "name", "node")
                raise RpcError(
                    f"{name} is down (crashed or mid-recovery); "
                    "retry once it has restarted"
                )
            chain = getattr(self.node, "chain", None)
            if chain is None:
                name = getattr(self.node, "name", "node")
                raise RpcError(f"{name} holds no full chain replica")
            return chain
        if self.chain is None:
            raise RpcError("no chain attached to this shim")
        return self.chain

    def _live_index(self) -> ChainIndex:
        """The materialized index over the live chain.

        Built on first use and rebuilt when the underlying chain
        *object* changes — a node restart-from-disk swaps ``node.chain``
        wholesale, and an index over the old object would serve the
        corpse.
        """
        chain = self._live_chain()
        if self._index is None or self._index.chain is not chain:
            self._index = ChainIndex(chain)
        return self._index

    def _live_mempool(self) -> Optional[Mempool]:
        if self.node is not None:
            if getattr(self.node, "crashed", False):
                name = getattr(self.node, "name", "node")
                raise RpcError(
                    f"{name} is down (crashed or mid-recovery); "
                    "retry once it has restarted"
                )
            return getattr(self.node, "mempool", None)
        return self.mempool

    def _require_runtime(self) -> ContractRuntime:
        if self.runtime is None:
            raise RpcError(
                "no contract runtime attached: balances and contract "
                "calls need one (pass runtime= when connecting)"
            )
        return self.runtime

    # -- chain reads --------------------------------------------------------

    @property
    def block_number(self) -> int:
        """Height of the canonical head."""
        return self._live_chain().height

    def get_block(self, identifier: BlockIdentifier) -> Dict[str, Any]:
        """A block as a web3-shaped dict.

        Accepts a height, the strings ``"latest"``/``"earliest"``, or a
        block hash (bytes or ``0x`` hex).
        """
        block = self._resolve_block(identifier)
        return block_dict(block)

    def _resolve_block(self, identifier: BlockIdentifier) -> Block:
        chain = self._live_chain()
        if identifier == "latest":
            return chain.head
        if identifier == "earliest":
            return chain.genesis
        if isinstance(identifier, bool):
            # bool subclasses int: without this guard get_block(True)
            # silently serves height 1 and get_block(False) genesis.
            raise RpcError(
                f"bad block identifier {identifier!r}: True/False would "
                "silently read heights 1/0 — pass a plain int height"
            )
        if isinstance(identifier, int):
            try:
                block = self._live_index().block_at_height(identifier)
            except ChainError as error:
                raise RpcError(str(error)) from error
            if block is None:
                raise RpcError(f"no block at height {identifier}")
            return block
        raw = parse_hex(identifier, "block identifier", error=RpcError)
        block = chain.get_block(raw)
        if block is None:
            raise RpcError("unknown block hash")
        return block

    @staticmethod
    def _record_id(identifier: Union[str, bytes]) -> bytes:
        """Parse a record id, rejecting malformed input with an RpcError.

        Shares :func:`repro.hexargs.parse_hex` with the query layer, so
        the edge cases agree everywhere: ``"0x"`` alone is malformed
        (it used to decode to the empty id and come back as a polite
        "not found"), ``0X`` prefixes and mixed-case digits parse, and
        whitespace-laced input is rejected instead of silently skipped.
        """
        return parse_hex(identifier, "transaction id", error=RpcError)

    def get_transaction(self, record_id: Union[str, bytes]) -> Dict[str, Any]:
        """Look up a canonical chain record by id (web3's tx lookup)."""
        chain = self._live_chain()
        raw = self._record_id(record_id)
        location = chain.locate_record(raw)
        if location is None:
            raise RpcError(f"transaction {_hex(raw)} not found on the canonical chain")
        record = chain.get_record(raw)
        return {
            "hash": _hex(raw),
            "blockHash": _hex(location.block_id),
            "blockNumber": location.height,
            "transactionIndex": location.index_in_block,
            "kind": record.kind.value,
            "fee": record.fee,
            "from": record.sender.hex() if record.sender else None,
            "input": _hex(record.payload),
            "confirmations": chain.confirmations(location.block_id),
        }

    def get_transaction_receipt(self, record_id: Union[str, bytes]) -> Dict[str, Any]:
        """Mined-record receipt (web3's ``get_transaction_receipt``).

        Raises :class:`RpcError` for records that are still pending in
        the mempool (web3 nodes answer null until inclusion) or unknown
        entirely — the message says which.  Against a node whose restart
        emptied the record from both chain and pool (empty-store
        recovery before the peer resync refills it), the answer is the
        documented "unknown" RpcError — never a KeyError.
        """
        chain = self._live_chain()
        raw = self._record_id(record_id)
        location = chain.locate_record(raw)
        if location is None:
            mempool = self._live_mempool()
            if mempool is not None and raw in mempool:
                raise RpcError(
                    f"transaction {_hex(raw)} is pending in the mempool, "
                    "not yet mined"
                )
            raise RpcError(f"no receipt: transaction {_hex(raw)} is unknown")
        record = chain.get_record(raw)
        return {
            "transactionHash": _hex(raw),
            "blockHash": _hex(location.block_id),
            "blockNumber": location.height,
            "transactionIndex": location.index_in_block,
            "from": record.sender.hex() if record.sender else None,
            "status": 1,
            "confirmations": chain.confirmations(location.block_id),
        }

    def get_pending_transactions(self) -> List[Dict[str, Any]]:
        """Records waiting in the mempool (web3's pending filter).

        Needs a node-attached shim (``Web3Shim.connect``): a bare
        chain-reader has no mempool to inspect.
        """
        pool = self._require_mempool()
        return [
            {
                "hash": _hex(record.record_id),
                "kind": record.kind.value,
                "fee": record.fee,
                "from": record.sender.hex() if record.sender else None,
            }
            for record in pool.select()
        ]

    def pending_transaction(self, record_id: Union[str, bytes]) -> Dict[str, Any]:
        """One pending record by id; RpcError if absent from the pool."""
        pool = self._require_mempool()
        raw = self._record_id(record_id)
        record = pool.get(raw)
        if record is None:
            raise RpcError(f"transaction {_hex(raw)} is not pending in the mempool")
        return {
            "hash": _hex(raw),
            "kind": record.kind.value,
            "fee": record.fee,
            "from": record.sender.hex() if record.sender else None,
        }

    def _require_mempool(self) -> Mempool:
        mempool = self._live_mempool()
        if mempool is None:
            raise RpcError(
                "no mempool attached: connect the shim to a node "
                "(Web3Shim.connect / connect_node) to query pending "
                "transactions"
            )
        return mempool

    # -- account reads ------------------------------------------------------

    def get_balance(self, account: Union[Address, str]) -> int:
        """Balance in wei (accepts an Address or 0x hex string)."""
        return self._require_runtime().state.balance(self._address(account))

    def get_transaction_count(self, account: Union[Address, str]) -> int:
        """Canonical records sent by ``account`` (web3's nonce query).

        Served from the sender index — O(1) after an incremental
        refresh — instead of the historical full-chain scan, which
        stays alive in the tests as the parity oracle.
        """
        return self._live_index().sender_count(self._address(account))

    @staticmethod
    def _address(account: Union[Address, str]) -> Address:
        if isinstance(account, Address):
            return account
        return Address(parse_hex(account, "address", length=20, error=RpcError))

    # -- contract interaction ------------------------------------------------

    def deploy_contract(
        self, contract: Contract, sender: Address, value_wei: int = 0
    ) -> Receipt:
        """Deploy a contract (web3's ``contract.constructor().transact()``)."""
        return self._require_runtime().deploy(contract, sender, value_wei=value_wei)

    def call_contract(
        self,
        address: Union[Address, str],
        method: str,
        sender: Address,
        *args: Any,
        value_wei: int = 0,
        **kwargs: Any,
    ) -> Receipt:
        """Invoke a contract function (web3's ``fn(...).transact()``)."""
        address = self._address(address)
        return self._require_runtime().call(
            address, method, sender, value_wei, None, *args, **kwargs
        )

    def get_logs(self, event_name: Optional[str] = None) -> List[Dict[str, Any]]:
        """Event logs, optionally filtered by name (web3's ``get_logs``)."""
        runtime = self._require_runtime()
        events = (
            runtime.events_named(event_name)
            if event_name is not None
            else runtime.events
        )
        return [
            {
                "address": event.contract.hex(),
                "event": event.name,
                "args": dict(event.payload),
                "blockTime": event.block_time,
            }
            for event in events
        ]


class Web3Shim:
    """Top-level handle, mirroring ``web3.Web3``."""

    def __init__(
        self,
        chain: Optional[Blockchain],
        runtime: Optional[ContractRuntime],
        mempool: Optional[Mempool] = None,
    ) -> None:
        self.eth = Eth(chain=chain, runtime=runtime, mempool=mempool)

    @classmethod
    def connect(cls, platform) -> "Web3Shim":
        """Attach to a running :class:`~repro.core.platform.SmartCrowdPlatform`."""
        return cls(platform.mining.chain, platform.runtime, platform.mining.mempool)

    @classmethod
    def connect_node(cls, node, runtime: Optional[ContractRuntime] = None) -> "Web3Shim":
        """Attach to a live replica node (provider, fleet member...).

        Unlike :meth:`connect`, the binding is *by node, not by object*:
        a restart-from-disk replaces ``node.chain`` wholesale, and this
        shim follows the swap instead of serving stale blocks and
        phantom receipts from the pre-crash object.  Queries against a
        crashed or mid-recovery node raise :class:`RpcError` rather
        than reading a corpse.
        """
        if getattr(node, "chain", None) is None:
            raise RpcError(
                f"{getattr(node, 'name', node)!r} holds no full chain "
                "replica (light clients cannot serve this RPC surface)"
            )
        shim = cls(chain=None, runtime=runtime)
        shim.eth.node = node
        return shim

    def is_connected(self) -> bool:
        """Liveness probe: false while a bound node is down."""
        if self.eth.node is not None:
            return not getattr(self.eth.node, "crashed", False)
        return True
