"""A web3-style RPC facade over the simulated node.

The prototype wires detectors to contracts through "the Ethereum JSON
API and a python module library of Web3" (§VII).  This module
reproduces that programming surface in-process: a :class:`Web3Shim`
fronts a chain + contract runtime with the ``w3.eth``-shaped calls the
paper's scripts would make — balances, blocks, transaction receipts,
contract deploy/call — so code written against the prototype's glue
layer ports to the simulator nearly verbatim.

Method names follow web3.py (``get_balance``, ``block_number``,
``get_block``); values use the same conventions (wei amounts, ``0x``
hex identifiers, dict-shaped blocks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Union

from repro.chain.block import Block
from repro.chain.chain import Blockchain
from repro.contracts.contract import Contract, Receipt
from repro.contracts.vm import ContractRuntime
from repro.crypto.keys import Address

__all__ = ["Web3Shim", "Eth", "RpcError"]

BlockIdentifier = Union[int, str, bytes]


class RpcError(ValueError):
    """Raised for unknown blocks, records, or malformed identifiers."""


def _hex(data: bytes) -> str:
    return "0x" + data.hex()


@dataclass
class Eth:
    """The ``w3.eth`` namespace."""

    chain: Blockchain
    runtime: ContractRuntime

    # -- chain reads --------------------------------------------------------

    @property
    def block_number(self) -> int:
        """Height of the canonical head."""
        return self.chain.height

    def get_block(self, identifier: BlockIdentifier) -> Dict[str, Any]:
        """A block as a web3-shaped dict.

        Accepts a height, the strings ``"latest"``/``"earliest"``, or a
        block hash (bytes or ``0x`` hex).
        """
        block = self._resolve_block(identifier)
        return {
            "number": block.height,
            "hash": _hex(block.block_id),
            "parentHash": _hex(block.header.prev_block_id),
            "timestamp": block.header.timestamp,
            "nonce": block.header.nonce,
            "difficulty": block.header.difficulty,
            "miner": block.header.miner.hex(),
            "merkleRoot": _hex(block.header.merkle_root),
            "transactions": [_hex(record.record_id) for record in block.records],
        }

    def _resolve_block(self, identifier: BlockIdentifier) -> Block:
        if identifier == "latest":
            return self.chain.head
        if identifier == "earliest":
            return self.chain.genesis
        if isinstance(identifier, int):
            block = self.chain.block_at_height(identifier)
            if block is None:
                raise RpcError(f"no block at height {identifier}")
            return block
        raw = identifier
        if isinstance(raw, str):
            try:
                raw = bytes.fromhex(raw.removeprefix("0x"))
            except ValueError as error:
                raise RpcError(f"bad block identifier {identifier!r}") from error
        block = self.chain.get_block(raw)
        if block is None:
            raise RpcError("unknown block hash")
        return block

    def get_transaction(self, record_id: Union[str, bytes]) -> Dict[str, Any]:
        """Look up a canonical chain record by id (web3's tx lookup)."""
        raw = record_id
        if isinstance(raw, str):
            raw = bytes.fromhex(raw.removeprefix("0x"))
        location = self.chain.locate_record(raw)
        if location is None:
            raise RpcError("transaction not found")
        record = self.chain.get_record(raw)
        return {
            "hash": _hex(raw),
            "blockHash": _hex(location.block_id),
            "blockNumber": location.height,
            "transactionIndex": location.index_in_block,
            "kind": record.kind.value,
            "fee": record.fee,
            "from": record.sender.hex() if record.sender else None,
            "input": _hex(record.payload),
            "confirmations": self.chain.confirmations(location.block_id),
        }

    # -- account reads ------------------------------------------------------

    def get_balance(self, account: Union[Address, str]) -> int:
        """Balance in wei (accepts an Address or 0x hex string)."""
        if isinstance(account, str):
            account = Address.from_hex(account)
        return self.runtime.state.balance(account)

    # -- contract interaction ------------------------------------------------

    def deploy_contract(
        self, contract: Contract, sender: Address, value_wei: int = 0
    ) -> Receipt:
        """Deploy a contract (web3's ``contract.constructor().transact()``)."""
        return self.runtime.deploy(contract, sender, value_wei=value_wei)

    def call_contract(
        self,
        address: Union[Address, str],
        method: str,
        sender: Address,
        *args: Any,
        value_wei: int = 0,
        **kwargs: Any,
    ) -> Receipt:
        """Invoke a contract function (web3's ``fn(...).transact()``)."""
        if isinstance(address, str):
            address = Address.from_hex(address)
        return self.runtime.call(
            address, method, sender, value_wei, None, *args, **kwargs
        )

    def get_logs(self, event_name: Optional[str] = None) -> List[Dict[str, Any]]:
        """Event logs, optionally filtered by name (web3's ``get_logs``)."""
        events = (
            self.runtime.events_named(event_name)
            if event_name is not None
            else self.runtime.events
        )
        return [
            {
                "address": event.contract.hex(),
                "event": event.name,
                "args": dict(event.payload),
                "blockTime": event.block_time,
            }
            for event in events
        ]


class Web3Shim:
    """Top-level handle, mirroring ``web3.Web3``."""

    def __init__(self, chain: Blockchain, runtime: ContractRuntime) -> None:
        self.eth = Eth(chain=chain, runtime=runtime)

    @classmethod
    def connect(cls, platform) -> "Web3Shim":
        """Attach to a running :class:`~repro.core.platform.SmartCrowdPlatform`."""
        return cls(platform.mining.chain, platform.runtime)

    def is_connected(self) -> bool:
        """Liveness probe (always true in-process)."""
        return True
