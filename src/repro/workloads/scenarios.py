"""The paper's §VII experimental setup, packaged for reuse.

Five provider nodes at the top-5 Ethereum computation proportions,
eight detectors with 1-8 threads, 5-ether block rewards, 15.35 s mean
block time, 1000-ether insurances, 10-minute windows.  Experiments and
examples build from :func:`paper_setup` so the configuration lives in
exactly one place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.chain.pow import PAPER_HASHPOWER_SHARES
from repro.core.incentives import IncentiveParameters
from repro.core.platform import PlatformConfig, SmartCrowdPlatform
from repro.detection.detector import Detector, build_detector_fleet
from repro.units import to_wei

__all__ = ["PaperSetup", "paper_setup", "provider_zeta"]


@dataclass
class PaperSetup:
    """Everything needed to instantiate the paper's experiment rig."""

    shares: Dict[str, float]
    detectors: List[Detector]
    config: PlatformConfig

    def build_platform(self) -> SmartCrowdPlatform:
        """A fresh platform instance with this configuration."""
        return SmartCrowdPlatform(self.shares, self.detectors, self.config)


def provider_zeta(provider_name: str, shares: Optional[Dict[str, float]] = None) -> float:
    """ζ_i — a provider's normalized share of the private network's
    hashpower (the 5 nodes *are* the whole network, §VII)."""
    shares = shares if shares is not None else PAPER_HASHPOWER_SHARES
    total = sum(shares.values())
    return shares[provider_name] / total


def paper_setup(
    seed: int = 0,
    detection_window: float = 600.0,
    insurance_ether: int = 1000,
    bounty_ether: int = 250,
    mean_vulnerabilities: float = 3.0,
) -> PaperSetup:
    """Build the §VII rig.

    ``bounty_ether`` (μ) defaults to insurance / (mean flaws + 1) so a
    typical vulnerable release distributes most of its forfeited
    insurance as bounties, matching the Eq. 9 reading that the
    punishment is paid out to detectors.
    """
    params = IncentiveParameters(
        bounty_wei=to_wei(bounty_ether),
        insurance_wei=to_wei(insurance_ether),
        sra_period=detection_window,
    )
    config = PlatformConfig(
        params=params,
        detection_window=detection_window,
        seed=seed,
    )
    detectors = build_detector_fleet(seed=seed)
    return PaperSetup(
        shares=dict(PAPER_HASHPOWER_SHARES),
        detectors=detectors,
        config=config,
    )
