"""Workload presets: the paper's experimental setups in one place."""

from repro.workloads.scenarios import (
    PaperSetup,
    paper_setup,
    provider_zeta,
)

__all__ = [
    "PaperSetup",
    "paper_setup",
    "provider_zeta",
]
