"""Currency and time units.

SmartCrowd's evaluation is denominated in ether (§VII: "we use 'ether',
the cryptocurrency in Ethereum").  Internally all balances are integer
wei (1 ether = 10^18 wei) so that incentive conservation can be checked
exactly — floating-point ether would make "payouts == deposits + fees"
assertions flaky.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Union

#: 1 wei, the indivisible currency unit.
WEI = 1
#: 1 gwei = 10^9 wei (gas prices are quoted in gwei).
GWEI = 10**9
#: 1 ether = 10^18 wei.
ETHER = 10**18

Numeric = Union[int, float, Fraction]


def to_wei(amount: Numeric, unit: int = ETHER) -> int:
    """Convert an amount in ``unit`` to integer wei.

    Floats are routed through :class:`fractions.Fraction` so that e.g.
    ``to_wei(0.095)`` is exact for the decimal literals used in the
    paper's measurements.
    """
    if isinstance(amount, int):
        return amount * unit
    return int(Fraction(str(amount) if isinstance(amount, float) else amount) * unit)


def from_wei(amount_wei: int, unit: int = ETHER) -> float:
    """Convert integer wei to a float amount of ``unit`` (for display)."""
    return amount_wei / unit


def format_ether(amount_wei: int, precision: int = 4) -> str:
    """Human-readable ether string, e.g. ``'5.0000 ETH'``."""
    return f"{from_wei(amount_wei):.{precision}f} ETH"


#: Seconds per minute, for readability in experiment configs.
MINUTE = 60.0
#: Seconds per hour.
HOUR = 3600.0
