"""Length-prefixed binary serialization.

Chain-record payloads embed raw hashes, signatures, and addresses —
arbitrary bytes that may contain any delimiter — so all payload
encodings use explicit length framing (4-byte big-endian per field)
rather than separators.
"""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["pack", "unpack", "CodecError"]


class CodecError(ValueError):
    """Raised for malformed framed payloads."""


def pack(fields: Sequence[bytes]) -> bytes:
    """Frame a sequence of byte strings into one payload."""
    parts: List[bytes] = []
    for field in fields:
        if not isinstance(field, (bytes, bytearray)):
            raise TypeError(f"pack expects bytes, got {type(field).__name__}")
        parts.append(len(field).to_bytes(4, "big"))
        parts.append(bytes(field))
    return b"".join(parts)


def unpack(payload: bytes, expected: int) -> List[bytes]:
    """Parse a framed payload into exactly ``expected`` fields."""
    fields: List[bytes] = []
    offset = 0
    size = len(payload)
    while offset < size:
        if offset + 4 > size:
            raise CodecError("truncated length prefix")
        length = int.from_bytes(payload[offset : offset + 4], "big")
        offset += 4
        if offset + length > size:
            raise CodecError("field overruns payload")
        fields.append(payload[offset : offset + length])
        offset += length
    if len(fields) != expected:
        raise CodecError(f"expected {expected} fields, found {len(fields)}")
    return fields
