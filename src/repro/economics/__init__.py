"""Batch economics — vectorized Eq. 7–10 accounting at fleet scale.

:mod:`repro.economics.batch` computes detector incentives, detector
costs, provider incentives, and provider punishments across whole
populations per call instead of one Python object at a time, with
bit-parity to the scalar closed forms in :mod:`repro.core.incentives`
(the scalar functions stay the cross-check oracle).
"""

from __future__ import annotations

from repro.economics.batch import (
    BatchParityError,
    crosscheck_detectors,
    crosscheck_providers,
    detector_costs,
    detector_incentives,
    detector_settlement,
    incentive_grid_ether,
    jaccard_counts,
    provider_balance_curves_ether,
    provider_incentives,
    provider_punishments,
    punishment_curve_ether,
    wei_list,
)

__all__ = [
    "BatchParityError",
    "crosscheck_detectors",
    "crosscheck_providers",
    "detector_costs",
    "detector_incentives",
    "detector_settlement",
    "incentive_grid_ether",
    "jaccard_counts",
    "provider_balance_curves_ether",
    "provider_incentives",
    "provider_punishments",
    "punishment_curve_ether",
    "wei_list",
]
