"""Vectorized Eq. 7–10 accounting with bit-parity to the scalar oracle.

The scalar closed forms in :mod:`repro.core.incentives` compute one
detector or provider at a time; at fleet scale the per-object Python
overhead dominates.  This module evaluates the same equations over
whole populations with :mod:`numpy`, reproducing the scalar results
*bit for bit* — not approximately — so either engine can audit the
other (``crosscheck_detectors`` / ``crosscheck_providers`` run both and
raise :class:`BatchParityError` on any divergence).

Parity is achieved by replaying the scalar float operation order
exactly:

* Eq. 7 multiplies ``bounty_wei * n_i`` first.  For *integer* counts
  Python forms the exact big-int product before a single float
  rounding, so the batch path computes ``float(bounty * n)`` per
  element; for *float* counts both engines round ``float(bounty)``
  first and multiply, which vectorizes directly.
* Eq. 9 sums ``n·ρ`` left to right; ``np.cumsum(...)[-1]`` performs the
  identical sequential accumulation (``np.sum`` does not — it uses
  pairwise summation and can differ in the last ulp).
* Truncation toward zero (the contract's integer division) is
  ``np.trunc`` — exact on float64, which represents every truncated
  value exactly.
* Eq. 8 is pure integer arithmetic in the scalar oracle and its values
  routinely exceed ``int64`` (the defaults are hundreds of ether in
  wei), so the batch path keeps exact Python ints; provider populations
  are small and this is not the hot dimension.

Results stay in float64 arrays whose values are exact integers — the
wei amounts as the chain would compute them.  Converting 10⁵ values
back to Python ints costs ~100× the vector arithmetic itself, so the
conversion (:func:`wei_list`) is an explicit step outside the hot path.

All money is integer wei; proportions are floats; results round toward
zero as the contract's integer arithmetic would.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.incentives import (
    IncentiveParameters,
    detector_cost,
    detector_incentive,
    provider_incentive,
    provider_punishment,
)
from repro.units import from_wei

__all__ = [
    "BatchParityError",
    "crosscheck_detectors",
    "crosscheck_providers",
    "detector_costs",
    "detector_incentives",
    "detector_settlement",
    "incentive_grid_ether",
    "jaccard_counts",
    "provider_balance_curves_ether",
    "provider_incentives",
    "provider_punishments",
    "punishment_curve_ether",
    "wei_list",
]


class BatchParityError(AssertionError):
    """The vectorized engine diverged from the scalar oracle."""


def _as_float64(values: np.ndarray) -> np.ndarray:
    """Convert a counts array to float64 with Python's rounding.

    Both ``float(int)`` and numpy's int→float64 cast round half to
    even, so integer dtypes cast directly; object arrays (arbitrary
    precision ints) go through Python's ``float`` element-wise.
    """
    if values.dtype == np.float64:
        return values
    if values.dtype.kind == "O":
        return np.array([float(v) for v in values.tolist()], dtype=np.float64)
    return values.astype(np.float64)


def _first_products(scale_wei: int, counts: np.ndarray) -> np.ndarray:
    """``float(scale_wei * n)`` per element, matching scalar Eq. 7/9.

    The scalar oracle evaluates ``scale * n * rho`` left to right.  For
    integer ``n`` the first multiply is an *exact* big-int product that
    is rounded to float only once; casting ``n`` to float first can
    round twice and differ in the last ulp.  Float counts take the
    vectorized path (both engines round ``float(scale)`` then multiply).
    """
    if counts.dtype.kind in "iu":
        return np.array(
            [float(scale_wei * int(v)) for v in counts.tolist()], dtype=np.float64
        )
    if counts.dtype.kind == "O":
        return np.array(
            [
                float(scale_wei * v) if isinstance(v, int) else float(scale_wei) * float(v)
                for v in counts.tolist()
            ],
            dtype=np.float64,
        )
    return np.float64(scale_wei) * _as_float64(counts)


def _validate_population(counts: np.ndarray, rhos: np.ndarray) -> None:
    """Raise the scalar oracle's errors for any invalid element."""
    if counts.shape != rhos.shape:
        raise ValueError("counts and rhos must align")
    if counts.size:
        if np.min(counts) < 0:
            raise ValueError("n_i cannot be negative")
        # NaN propagates as False through >=/<= exactly like the scalar
        # `not 0.0 <= rho <= 1.0` check, so NaN rhos raise here too.
        if not bool((np.min(rhos) >= 0.0) & (np.max(rhos) <= 1.0)):
            raise ValueError("rho_i must be in [0, 1]")


def detector_incentives(
    params: IncentiveParameters,
    counts: Sequence[float],
    rhos: Sequence[float],
) -> np.ndarray:
    """Eq. 7 over a population: ``in†_i = μ · n_i · ρ_i`` for every i.

    Returns a float64 array of exact integer wei values, bit-identical
    to ``[detector_incentive(params, n, r) for n, r in zip(...)]``
    after :func:`wei_list` conversion.
    """
    n = np.asarray(counts)
    r = _as_float64(np.asarray(rhos))
    _validate_population(n, r)
    return np.trunc(_first_products(params.bounty_wei, n) * r)


def detector_costs(
    params: IncentiveParameters,
    counts: Sequence[float],
    rhos: Sequence[float],
) -> np.ndarray:
    """Eq. 10 over a population: ``co_i = n_i · (c + ρ_i · ψ)``.

    The scalar form converts ``n_i`` to float before the outer multiply
    (the inner parenthesis is already float), so no exact-product
    special case is needed here — the cast itself is the shared
    rounding step.
    """
    n = np.asarray(counts)
    r = _as_float64(np.asarray(rhos))
    _validate_population(n, r)
    inner = np.float64(params.submission_cost_wei) + r * np.float64(params.report_fee_wei)
    return np.trunc(_as_float64(n) * inner)


def detector_settlement(
    params: IncentiveParameters,
    counts: Sequence[float],
    rhos: Sequence[float],
) -> Tuple[np.ndarray, np.ndarray]:
    """Eq. 7 and Eq. 10 together for one detector population.

    One validation pass, shared array conversion — the per-block
    settlement shape (`incentives, costs` for every detector).
    """
    n = np.asarray(counts)
    r = _as_float64(np.asarray(rhos))
    _validate_population(n, r)
    incentives = np.trunc(_first_products(params.bounty_wei, n) * r)
    inner = np.float64(params.submission_cost_wei) + r * np.float64(params.report_fee_wei)
    costs = np.trunc(_as_float64(n) * inner)
    return incentives, costs


def provider_incentives(
    params: IncentiveParameters,
    chis: Sequence[int],
    omegas: Sequence[int],
) -> List[int]:
    """Eq. 8 over a provider population: ``in*_i = χ_i·ν + ψ·ω_i``.

    Exact integer arithmetic (the scalar form never touches floats and
    its wei magnitudes overflow int64), batched over the population.
    """
    if len(chis) != len(omegas):
        raise ValueError("chis and omegas must align")
    nu = params.block_reward_wei
    psi = params.report_fee_wei
    for chi, omega in zip(chis, omegas):
        if chi < 0 or omega < 0:
            raise ValueError("block and report counts cannot be negative")
    return [chi * nu + omega * psi for chi, omega in zip(chis, omegas)]


def provider_punishments(
    params: IncentiveParameters,
    awarded_counts: Sequence[Sequence[float]],
    rhos: Sequence[Sequence[float]],
    contracts_deployed: Sequence[int],
) -> List[int]:
    """Eq. 9 over a provider population: ``pu_i = μ·Σ_j n_j·ρ_j + cp_i``.

    ``awarded_counts[i]`` / ``rhos[i]`` are the per-detector vectors for
    provider *i*; ``contracts_deployed[i]`` scales the deployment-gas
    term.  The inner Σ runs vectorized with sequential (cumsum)
    accumulation so the float total matches the scalar left-to-right
    ``sum`` bit for bit.
    """
    if not (len(awarded_counts) == len(rhos) == len(contracts_deployed)):
        raise ValueError("awarded_counts, rhos, and contracts_deployed must align")
    results: List[int] = []
    for counts, provider_rhos, deployed in zip(awarded_counts, rhos, contracts_deployed):
        n = np.asarray(counts)
        r = _as_float64(np.asarray(provider_rhos))
        if n.shape != r.shape:
            raise ValueError("awarded_counts and rhos must align")
        if n.size:
            products = _as_float64(n) * r
            total = float(np.cumsum(products)[-1])
        else:
            total = 0
        results.append(
            int(params.bounty_wei * total) + deployed * params.deployment_cost_wei
        )
    return results


def wei_list(values: np.ndarray) -> List[int]:
    """Convert a batch result array to exact integer wei.

    The engine's float64 outputs hold exactly representable integers
    (truncations of float64 products); ``int`` recovers them exactly.
    This is deliberately a separate step: converting large populations
    costs far more than the vector arithmetic, so hot paths keep the
    arrays and settle to ints only at ledger boundaries.
    """
    return [int(v) for v in values.tolist()]


def crosscheck_detectors(
    params: IncentiveParameters,
    counts: Sequence[float],
    rhos: Sequence[float],
) -> Tuple[List[int], List[int]]:
    """Run Eq. 7/10 through *both* engines and insist they agree.

    Returns ``(incentives_wei, costs_wei)`` as exact ints.  Raises
    :class:`BatchParityError` naming the first divergent index if the
    vectorized path ever drifts from the scalar oracle.
    """
    incentives, costs = detector_settlement(params, counts, rhos)
    batch_incentives = wei_list(incentives)
    batch_costs = wei_list(costs)
    for index, (n, rho) in enumerate(zip(counts, rhos)):
        oracle_incentive = detector_incentive(params, n, rho)
        oracle_cost = detector_cost(params, n, rho)
        if batch_incentives[index] != oracle_incentive or batch_costs[index] != oracle_cost:
            raise BatchParityError(
                f"batch economics diverged from scalar oracle at index {index}: "
                f"incentive {batch_incentives[index]} vs {oracle_incentive}, "
                f"cost {batch_costs[index]} vs {oracle_cost} "
                f"(n={n!r}, rho={rho!r})"
            )
    return batch_incentives, batch_costs


def crosscheck_providers(
    params: IncentiveParameters,
    chis: Sequence[int],
    omegas: Sequence[int],
    awarded_counts: Sequence[Sequence[float]],
    rhos: Sequence[Sequence[float]],
    contracts_deployed: Sequence[int],
) -> Tuple[List[int], List[int]]:
    """Run Eq. 8/9 through both engines and insist they agree.

    Returns ``(incentives_wei, punishments_wei)``; raises
    :class:`BatchParityError` on any divergence.
    """
    batch_inc = provider_incentives(params, chis, omegas)
    batch_pun = provider_punishments(params, awarded_counts, rhos, contracts_deployed)
    for index, (chi, omega) in enumerate(zip(chis, omegas)):
        oracle = provider_incentive(params, chi, omega)
        if batch_inc[index] != oracle:
            raise BatchParityError(
                f"batch provider incentive diverged at index {index}: "
                f"{batch_inc[index]} vs {oracle}"
            )
    for index, (counts, provider_rhos, deployed) in enumerate(
        zip(awarded_counts, rhos, contracts_deployed)
    ):
        oracle = provider_punishment(params, counts, provider_rhos, deployed)
        if batch_pun[index] != oracle:
            raise BatchParityError(
                f"batch provider punishment diverged at index {index}: "
                f"{batch_pun[index]} vs {oracle}"
            )
    return batch_inc, batch_pun


def punishment_curve_ether(
    params: IncentiveParameters,
    vps: Sequence[float],
    insurance_ether: float,
    releases: float = 1.0,
) -> List[float]:
    """Fig. 4(b) curve: expected punishment per release over a VP grid.

    Vectorized form of
    :func:`repro.analysis.balance.provider_punishment_ether` —
    ``releases · (vp · I + cp)`` evaluated elementwise in the scalar
    operation order, so each point is bit-identical to the scalar call.
    """
    grid = _as_float64(np.asarray(vps, dtype=np.float64))
    if grid.size and not bool((np.min(grid) >= 0.0) & (np.max(grid) <= 1.0)):
        raise ValueError("VP must be in [0, 1]")
    cp = from_wei(params.deployment_cost_wei)
    curve = np.float64(releases) * (grid * np.float64(insurance_ether) + np.float64(cp))
    return curve.tolist()


def provider_balance_curves_ether(
    params: IncentiveParameters,
    wins: Sequence[int],
    vps: Sequence[float],
    insurance_ether: float,
    omega_per_block: float,
) -> Dict[float, List[float]]:
    """Fig. 5(b) assembly: per-trial balances for each VP level.

    ``wins[t]`` — blocks the provider won in trial *t*.  Income per
    block (reward ν plus ψ·ω̄ fees) and the per-VP punishment are the
    same scalar-float constants the serial loop computes; the trial
    dimension vectorizes.  Each balance equals the scalar
    ``won·(ν+ψ·ω̄) − (vp·I + cp)`` bit for bit.
    """
    fee_income_per_block = from_wei(params.report_fee_wei) * omega_per_block
    income_per_block = from_wei(params.block_reward_wei) + fee_income_per_block
    incomes = _as_float64(np.asarray(wins)) * np.float64(income_per_block)
    cp = from_wei(params.deployment_cost_wei)
    balances: Dict[float, List[float]] = {}
    for vp in vps:
        punishment = vp * insurance_ether + cp
        balances[vp] = (incomes - np.float64(punishment)).tolist()
    return balances


def incentive_grid_ether(
    vps: Sequence[float],
    releases_per_window: int,
    payout_per_release_ether: Dict[str, float],
) -> Dict[float, Dict[str, float]]:
    """Fig. 6 grid: expected incentives per detector per VP level.

    Vectorizes ``vp · releases · payout_i`` over the detector axis; the
    scalar left-associated product order is preserved (``vp·releases``
    is a Python float product, then one vector multiply).
    """
    detectors = list(payout_per_release_ether)
    payouts = np.asarray(
        [payout_per_release_ether[d] for d in detectors], dtype=np.float64
    )
    grid: Dict[float, Dict[str, float]] = {}
    for vp in vps:
        scaled = (np.float64(vp * releases_per_window) * payouts).tolist()
        grid[vp] = dict(zip(detectors, scaled))
    return grid


def jaccard_counts(
    key_groups: Sequence[Sequence[str]],
) -> Tuple[np.ndarray, np.ndarray]:
    """Pairwise overlap counts for Table I's Jaccard matrix.

    Builds a boolean membership matrix over the key universe and
    returns ``(intersections, sizes)`` — ``intersections[i, j]`` is
    ``|keys_i ∩ keys_j|`` and ``sizes[i]`` is ``|keys_i|`` — so callers
    form ``|A∩B| / |A∪B|`` with exact integer counts (identical to the
    set-based ``len`` arithmetic).
    """
    columns: Dict[str, int] = {}
    for group in key_groups:
        for key in group:
            if key not in columns:
                columns[key] = len(columns)
    membership = np.zeros((len(key_groups), max(len(columns), 1)), dtype=np.int64)
    for row, group in enumerate(key_groups):
        for key in group:
            membership[row, columns[key]] = 1
    intersections = membership @ membership.T
    sizes = membership.sum(axis=1)
    return intersections, sizes
