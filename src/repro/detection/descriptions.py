"""Canonical vulnerability-description language.

§VIII (N-version vulnerability descriptions): different detectors word
the same flaw differently; the paper defers deduplication to a
Vigilante-style "common description language".  We implement one: a
description is a structured record (category, severity, locus) that
canonicalizes to the ground-truth key, plus free-text wording that
varies per detector.  Two differently-worded descriptions of the same
flaw canonicalize identically, so the contract's at-most-once payout
works across N-version wording.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.detection.vulnerability import Severity, Vulnerability

__all__ = [
    "VulnerabilityDescription",
    "describe",
    "canonical_key",
    "deduplicate",
]

#: Phrasebook for N-version wording of the same finding.
_PHRASES: Tuple[str, ...] = (
    "discovered {category} issue affecting {system}",
    "{severity}-severity {category} found during analysis of {system}",
    "scanner flagged {category} ({severity}) in {system}",
    "manual review confirms {category} vulnerability in {system}",
    "fuzzing exposed {category} behaviour in {system}",
)


@dataclass(frozen=True)
class VulnerabilityDescription:
    """One detector's wording of a discovered flaw (Des in Eq. 5).

    The structured triple (``canonical``, ``severity``, ``category``)
    is the common-language part; ``wording`` is the detector-specific
    free text that differs across N versions.
    """

    canonical: str
    severity: Severity
    category: str
    wording: str

    def to_wire(self) -> str:
        """Serialize for inclusion in a detailed report payload."""
        return "|".join(
            [self.canonical, self.severity.value, self.category, self.wording]
        )

    @classmethod
    def from_wire(cls, text: str) -> "VulnerabilityDescription":
        """Parse the wire form."""
        canonical, severity, category, wording = text.split("|", 3)
        return cls(
            canonical=canonical,
            severity=Severity(severity),
            category=category,
            wording=wording,
        )


def describe(
    vulnerability: Vulnerability,
    system_name: str,
    rng: Optional[random.Random] = None,
) -> VulnerabilityDescription:
    """Produce one detector's (randomly worded) description of a flaw."""
    rng = rng if rng is not None else random.Random()
    template = rng.choice(_PHRASES)
    wording = template.format(
        category=vulnerability.category,
        severity=vulnerability.severity.value,
        system=system_name,
    )
    return VulnerabilityDescription(
        canonical=vulnerability.key,
        severity=vulnerability.severity,
        category=vulnerability.category,
        wording=wording,
    )


def canonical_key(description: VulnerabilityDescription) -> str:
    """The dedup identity of a description."""
    return description.canonical


def deduplicate(
    descriptions: List[VulnerabilityDescription],
) -> List[VulnerabilityDescription]:
    """Collapse N-version wordings: keep the first of each canonical key."""
    seen = set()
    unique: List[VulnerabilityDescription] = []
    for description in descriptions:
        key = canonical_key(description)
        if key in seen:
            continue
        seen.add(key)
        unique.append(description)
    return unique
