"""IoT system artifacts: firmware/app images with ground-truth flaws.

Stands in for the real binaries the paper's detectors download from the
SRA's ``U_l`` link.  Each :class:`IoTSystem` carries a deterministic
pseudo-binary image (so ``U_h`` hash checks are meaningful), a version,
and its ground-truth vulnerability set.  Repackaging — "the released
systems may be maliciously repackaged with malware" (§I) — is modelled
by :func:`repackage_with_malware`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.crypto.hashing import hash_fields, sha3_256
from repro.detection.vulnerability import (
    Severity,
    Vulnerability,
    sample_vulnerabilities,
)

__all__ = ["IoTSystem", "build_system", "new_version", "repackage_with_malware"]


@dataclass(frozen=True)
class IoTSystem:
    """A concrete IoT firmware/software release.

    ``image`` is the artifact detectors download; ``artifact_hash`` is
    the ``U_h`` committed in the SRA (Eq. 1); ``download_link`` is
    ``U_l``.  ``ground_truth`` is the simulation's omniscient flaw list
    — detectors only ever see samples of it.
    """

    name: str
    version: str
    image: bytes
    download_link: str
    ground_truth: Tuple[Vulnerability, ...]

    @property
    def artifact_hash(self) -> bytes:
        """U_h — SHA-3 of the released image."""
        return sha3_256(self.image)

    @property
    def is_vulnerable(self) -> bool:
        """True if the release contains at least one flaw."""
        return bool(self.ground_truth)

    def count_by_severity(self) -> dict:
        """Ground-truth counts per severity (Table I row shape)."""
        counts = {severity: 0 for severity in Severity}
        for vulnerability in self.ground_truth:
            counts[vulnerability.severity] += 1
        return counts


def _synth_image(name: str, version: str, salt: int) -> bytes:
    """Deterministic pseudo-binary: 4 KiB derived from identity."""
    blocks = [hash_fields("iot-image", name, version, salt, i) for i in range(128)]
    return b"".join(blocks)


def build_system(
    name: str,
    version: str = "1.0.0",
    vulnerability_count: int = 0,
    rng: Optional[random.Random] = None,
    salt: int = 0,
) -> IoTSystem:
    """Create a release with ``vulnerability_count`` sampled flaws."""
    rng = rng if rng is not None else random.Random(hash((name, version)) & 0xFFFF)
    flaw_list = sample_vulnerabilities(f"{name}-{version}", vulnerability_count, rng)
    return IoTSystem(
        name=name,
        version=version,
        image=_synth_image(name, version, salt),
        download_link=f"iot://releases/{name}/{version}",
        ground_truth=tuple(flaw_list),
    )


def new_version(
    system: IoTSystem,
    version: str,
    vulnerability_count: int,
    rng: Optional[random.Random] = None,
) -> IoTSystem:
    """Release an upgrade: new image, fresh ground truth.

    Models §I: "the newly released systems might still introduce new
    vulnerabilities."
    """
    rng = rng if rng is not None else random.Random(hash((system.name, version)) & 0xFFFF)
    flaw_list = sample_vulnerabilities(
        f"{system.name}-{version}", vulnerability_count, rng
    )
    return IoTSystem(
        name=system.name,
        version=version,
        image=_synth_image(system.name, version, 0),
        download_link=f"iot://releases/{system.name}/{version}",
        ground_truth=tuple(flaw_list),
    )


def repackage_with_malware(system: IoTSystem, marketplace: str) -> IoTSystem:
    """A malicious marketplace repackages a release with malware.

    The image changes (so ``U_h`` no longer matches an honest SRA) and
    a ``repackaged-malware`` flaw is appended to the ground truth.
    """
    malware = Vulnerability.create(
        f"{system.name}-{system.version}@{marketplace}",
        index=len(system.ground_truth),
        severity=Severity.HIGH,
        category="repackaged-malware",
    )
    tampered_image = system.image + hash_fields("malware", marketplace, system.name)
    return replace(
        system,
        image=tampered_image,
        download_link=f"iot://{marketplace}/{system.name}/{system.version}",
        ground_truth=system.ground_truth + (malware,),
    )
