"""IoT detection substrate.

Synthetic IoT releases with ground-truth vulnerabilities, detector
capability models (the paper's thread-count knob), third-party scanner
profiles reproducing Table I, the AutoVerif correctness engine (Eq. 6),
and the common description language that deduplicates N-version
wordings (§VIII).
"""

from repro.detection.artifacts import (
    ArtifactDetector,
    MarkerStaticAnalyzer,
    build_marked_system,
    embed_vulnerability_markers,
    extract_markers,
)
from repro.detection.autoverif import AutoVerifEngine, VerificationOutcome
from repro.detection.corpus import ReleaseCorpus, ReleaseCorpusConfig, ScheduledRelease
from repro.detection.descriptions import (
    VulnerabilityDescription,
    canonical_key,
    deduplicate,
    describe,
)
from repro.detection.detector import (
    Detection,
    DetectionCapability,
    Detector,
    build_detector_fleet,
    capability_proportions,
)
from repro.detection.iot_system import (
    IoTSystem,
    build_system,
    new_version,
    repackage_with_malware,
)
from repro.detection.modes import (
    DetectionMode,
    ModalDetector,
    build_mixed_fleet,
    fleet_coverage,
)
from repro.detection.services import (
    PAPER_SERVICE_PROFILES,
    ScanResult,
    ScannerProfile,
    build_table1_apps,
    overlap_matrix,
)
from repro.detection.vulnerability import (
    Severity,
    Vulnerability,
    VulnerabilityDatabase,
    sample_vulnerabilities,
)

__all__ = [
    "ArtifactDetector",
    "AutoVerifEngine",
    "Detection",
    "DetectionCapability",
    "DetectionMode",
    "Detector",
    "IoTSystem",
    "MarkerStaticAnalyzer",
    "ModalDetector",
    "PAPER_SERVICE_PROFILES",
    "ReleaseCorpus",
    "ReleaseCorpusConfig",
    "ScanResult",
    "ScannerProfile",
    "ScheduledRelease",
    "Severity",
    "VerificationOutcome",
    "Vulnerability",
    "VulnerabilityDatabase",
    "VulnerabilityDescription",
    "build_detector_fleet",
    "build_marked_system",
    "build_mixed_fleet",
    "build_system",
    "build_table1_apps",
    "canonical_key",
    "capability_proportions",
    "deduplicate",
    "describe",
    "embed_vulnerability_markers",
    "extract_markers",
    "fleet_coverage",
    "new_version",
    "overlap_matrix",
    "repackage_with_malware",
    "sample_vulnerabilities",
]
