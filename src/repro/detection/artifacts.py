"""Concrete artifact analysis: flaws embedded in the image bytes.

The probabilistic :class:`~repro.detection.detector.Detector` models
*who finds what, when*; this module makes the detection path literal:
vulnerabilities are embedded into the released firmware image as
obfuscated byte markers at build time, and a
:class:`MarkerStaticAnalyzer` finds them by actually scanning the bytes
a detector downloaded from ``U_l`` — so a repackaged or truncated
download provably yields different findings, and "analysis" is an
operation on the artifact, not on simulator ground truth.

Marker format (deliberately simple — the point is the dataflow, not
steganography): ``MAGIC || len || xor_obfuscated(canonical key ||
severity || category)``.  The obfuscation models the real-world gap
between weak scanners (single-byte-XOR crackers) and strong ones.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.detection.detector import DetectionCapability, Detector
from repro.detection.iot_system import IoTSystem
from repro.detection.vulnerability import Severity, Vulnerability

__all__ = [
    "ArtifactDetector",
    "MarkerStaticAnalyzer",
    "build_marked_system",
    "embed_vulnerability_markers",
    "extract_markers",
]

#: Marker framing magic — what a signature scanner greps for.
MAGIC = b"\x7fVULN\x7f"


def _obfuscate(data: bytes, key: int) -> bytes:
    """Single-byte XOR obfuscation with the key prepended."""
    return bytes([key]) + bytes(b ^ key for b in data)


def _deobfuscate(blob: bytes) -> bytes:
    key = blob[0]
    return bytes(b ^ key for b in blob[1:])


def _encode_flaw(vulnerability: Vulnerability) -> bytes:
    return "|".join(
        [vulnerability.key, vulnerability.severity.value, vulnerability.category]
    ).encode()


def _decode_flaw(data: bytes, system_name: str) -> Vulnerability:
    key, severity, category = data.decode().split("|")
    return Vulnerability(
        key=key,
        severity=Severity(severity),
        category=category,
        summary=f"{category} recovered from {system_name} image",
    )


def embed_vulnerability_markers(
    image: bytes,
    vulnerabilities: Sequence[Vulnerability],
    rng: Optional[random.Random] = None,
) -> bytes:
    """Scatter obfuscated flaw markers through an image.

    Markers are inserted at random block boundaries so they are not
    trivially at the tail; each gets an independent XOR key.
    """
    rng = rng if rng is not None else random.Random(0)
    if not vulnerabilities:
        return image
    chunk = max(1, len(image) // (len(vulnerabilities) + 1))
    pieces: List[bytes] = []
    offset = 0
    for vulnerability in vulnerabilities:
        cut = min(len(image), offset + chunk)
        pieces.append(image[offset:cut])
        payload = _obfuscate(_encode_flaw(vulnerability), rng.randrange(1, 256))
        pieces.append(MAGIC + len(payload).to_bytes(2, "big") + payload)
        offset = cut
    pieces.append(image[offset:])
    return b"".join(pieces)


def extract_markers(image: bytes, system_name: str) -> List[Vulnerability]:
    """Recover every embedded flaw from an image (a perfect analyzer)."""
    found: List[Vulnerability] = []
    position = 0
    while True:
        position = image.find(MAGIC, position)
        if position < 0:
            return found
        length = int.from_bytes(
            image[position + len(MAGIC) : position + len(MAGIC) + 2], "big"
        )
        start = position + len(MAGIC) + 2
        blob = image[start : start + length]
        if len(blob) == length and length > 0:
            try:
                found.append(_decode_flaw(_deobfuscate(blob), system_name))
            except (ValueError, UnicodeDecodeError):
                pass  # corrupted marker (truncated download)
        position = start + length


def build_marked_system(
    name: str,
    version: str = "1.0.0",
    vulnerability_count: int = 0,
    rng: Optional[random.Random] = None,
) -> IoTSystem:
    """An IoT release whose image physically contains its flaw markers.

    ``artifact_hash`` (U_h) commits to the *marked* image, so the hash
    check and the analysis operate on the same bytes.
    """
    from repro.detection.iot_system import build_system

    rng = rng if rng is not None else random.Random(hash((name, version)) & 0xFFFF)
    base = build_system(name, version, vulnerability_count, rng=rng)
    marked_image = embed_vulnerability_markers(base.image, base.ground_truth, rng)
    return IoTSystem(
        name=base.name,
        version=base.version,
        image=marked_image,
        download_link=base.download_link,
        ground_truth=base.ground_truth,
    )


@dataclass
class MarkerStaticAnalyzer:
    """A detector engine that scans downloaded bytes for markers.

    ``crack_rate`` models analyzer strength: the probability it cracks
    any given marker's obfuscation (a weak engine recovers only some of
    what it greps).  Analysis consumes the image the caller provides —
    scanning a repackaged image finds the *repackaged* content, which
    is exactly how U_h tampering becomes detectable end to end.
    """

    crack_rate: float = 1.0
    rng: Optional[random.Random] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.crack_rate <= 1.0:
            raise ValueError("crack rate must be in [0, 1]")
        if self.rng is None:
            self.rng = random.Random(0)

    def analyze(self, image: bytes, system_name: str) -> List[Vulnerability]:
        """Scan an image; return the flaws this engine recovers."""
        recovered = extract_markers(image, system_name)
        if self.crack_rate >= 1.0:
            return recovered
        return [flaw for flaw in recovered if self.rng.random() < self.crack_rate]

    def analyze_release(self, system: IoTSystem) -> List[Vulnerability]:
        """Convenience: download from U_l (the system's image) and scan."""
        return self.analyze(system.image, system.name)


class ArtifactDetector(Detector):
    """A platform detector whose findings come from scanning real bytes.

    Drop-in for :class:`~repro.detection.detector.Detector` in a
    :class:`~repro.core.platform.SmartCrowdPlatform` fleet, but instead
    of sampling the simulator's ground truth it runs
    :class:`MarkerStaticAnalyzer` over the release image — so its
    findings exist because the bytes contain them.  Only meaningful for
    releases built with :func:`build_marked_system`; unmarked images
    scan clean.
    """

    def __init__(
        self,
        detector_id: str,
        threads: int = 4,
        crack_rate: float = 1.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        rng = rng if rng is not None else random.Random(hash(detector_id) & 0xFFFF)
        super().__init__(
            detector_id,
            DetectionCapability(threads=threads, per_thread_hit=0.99),
            rng=rng,
        )
        self.analyzer = MarkerStaticAnalyzer(
            crack_rate=crack_rate, rng=random.Random(rng.randrange(2**31))
        )

    def scan(self, system: IoTSystem):
        """Scan the downloaded image bytes; race times from capability."""
        from repro.detection.descriptions import describe
        from repro.detection.detector import Detection

        self.scans_performed += 1
        findings = []
        for vulnerability in self.analyzer.analyze_release(system):
            findings.append(
                Detection(
                    vulnerability=vulnerability,
                    found_after=self.capability.sample_find_time(self._rng),
                    description=describe(vulnerability, system.name, self._rng),
                )
            )
        findings.sort(key=lambda detection: detection.found_after)
        return findings
