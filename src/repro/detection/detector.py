"""Detector capability model and detection engine.

The paper "preset[s] the detection capabilities of detectors by
adjusting thread numbers (1~8) allocated to them" (§VII-B).  We model a
detector with τ threads as:

* **coverage** — it identifies each ground-truth vulnerability with
  probability ``DC(τ) = 1 - (1 - p)^τ`` (independent per-thread scans,
  per-thread hit probability *p*);
* **speed** — its time to find a given flaw is exponential with rate
  proportional to τ, so in the first-commit race the probability that
  detector *i* wins a flaw every capable detector finds is
  ``τ_i / Σ τ_j`` — which is exactly the capability proportion ξ_i of
  Eq. 13 and yields the paper's ≈7.8× incentive ratio between 8-thread
  and 1-thread detectors (Fig. 6(a)).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.detection.descriptions import VulnerabilityDescription, describe
from repro.detection.iot_system import IoTSystem
from repro.detection.vulnerability import Vulnerability

__all__ = ["DetectionCapability", "Detection", "Detector", "build_detector_fleet"]


@dataclass(frozen=True)
class DetectionCapability:
    """τ threads plus the per-thread hit probability."""

    threads: int
    per_thread_hit: float = 0.35
    #: Mean seconds for one thread to locate one flaw it can find.
    per_thread_mean_time: float = 120.0

    def __post_init__(self) -> None:
        if self.threads < 1:
            raise ValueError("a detector needs at least one thread")
        if not 0.0 < self.per_thread_hit <= 1.0:
            raise ValueError("per-thread hit probability must be in (0, 1]")

    @property
    def detection_probability(self) -> float:
        """DC_i — probability of identifying a given vulnerability (Eq. 11)."""
        return 1.0 - (1.0 - self.per_thread_hit) ** self.threads

    @property
    def rate(self) -> float:
        """Exponential race rate: flaws/second across all threads."""
        return self.threads / self.per_thread_mean_time

    def sample_find_time(self, rng: random.Random) -> float:
        """Time for this detector to locate one flaw (exponential)."""
        return rng.expovariate(self.rate)


@dataclass(frozen=True)
class Detection:
    """One found flaw: what, when, and how it was worded."""

    vulnerability: Vulnerability
    found_after: float
    description: VulnerabilityDescription


class Detector:
    """A detection engine driven by a capability model.

    ``scan`` is the honest behaviour of §V-B: download the release,
    analyze it, and report the flaws found.  Adversarial behaviours
    (forgery, plagiarism, tampering) live in :mod:`repro.adversary`,
    not here.
    """

    def __init__(
        self,
        detector_id: str,
        capability: DetectionCapability,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.detector_id = detector_id
        self.capability = capability
        self._rng = rng if rng is not None else random.Random(hash(detector_id) & 0xFFFFFFFF)
        self.scans_performed = 0

    def scan(self, system: IoTSystem) -> List[Detection]:
        """Analyze a release; sample which ground-truth flaws are found.

        Each flaw is found independently with probability ``DC_i`` and,
        when found, after an exponential search time — the inputs to
        the first-commit race the incentive scheme runs.
        """
        self.scans_performed += 1
        findings: List[Detection] = []
        for vulnerability in system.ground_truth:
            if self._rng.random() >= self.capability.detection_probability:
                continue
            found_after = self.capability.sample_find_time(self._rng)
            findings.append(
                Detection(
                    vulnerability=vulnerability,
                    found_after=found_after,
                    description=describe(vulnerability, system.name, self._rng),
                )
            )
        findings.sort(key=lambda detection: detection.found_after)
        return findings

    def verify_claim(self, system: IoTSystem, canonical_key: str) -> bool:
        """Check whether a claimed flaw is real (used when a detector
        doubles as a provider-side verifier)."""
        return any(v.key == canonical_key for v in system.ground_truth)


def build_detector_fleet(
    thread_counts: Sequence[int] = tuple(range(1, 9)),
    per_thread_hit: float = 0.95,
    per_thread_mean_time: float = 120.0,
    seed: int = 0,
) -> List[Detector]:
    """The paper's 8-detector fleet with threads 1..8 (§VII-B).

    The default per-thread hit probability is high (0.95) so that every
    detector eventually finds almost every flaw and bounties are decided
    by the first-commit *race*, whose win odds are thread-proportional —
    this is what reproduces the paper's ≈7.8× incentive ratio between
    the 8-thread and 1-thread detectors (Fig. 6(a)).  Lower values model
    fleets whose coverage, not just speed, differs.
    """
    rng = random.Random(seed)
    fleet = []
    for index, threads in enumerate(thread_counts, start=1):
        capability = DetectionCapability(
            threads=threads,
            per_thread_hit=per_thread_hit,
            per_thread_mean_time=per_thread_mean_time,
        )
        fleet.append(
            Detector(
                detector_id=f"detector-{index}",
                capability=capability,
                rng=random.Random(rng.randrange(2**31)),
            )
        )
    return fleet


def capability_proportions(fleet: Sequence[Detector]) -> Dict[str, float]:
    """ξ_i — each detector's share of total capability (Eq. 13).

    Uses race rates: ξ_i = rate_i / Σ rate_j, which equals the thread
    share when all fleets use the same per-thread speed.
    """
    total = sum(detector.capability.rate for detector in fleet)
    return {
        detector.detector_id: detector.capability.rate / total for detector in fleet
    }
