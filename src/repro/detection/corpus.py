"""Synthetic IoT release corpora for the experiments.

Generates streams of releases with a configurable *vulnerability
proportion* (VP) — "the probability that the IoT system released by IoT
provider is vulnerable" (§VII-A) — and a vulnerability-count
distribution (N of §VI-B: "averagely N vulnerabilities ... detected for
an SRA").
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.detection.iot_system import IoTSystem, build_system

__all__ = ["ReleaseCorpusConfig", "ReleaseCorpus"]


@dataclass(frozen=True)
class ReleaseCorpusConfig:
    """Parameters of a synthetic release stream."""

    #: VP — probability a release contains at least one vulnerability.
    vulnerability_proportion: float = 0.05
    #: Mean number of flaws in a *vulnerable* release (Poisson, ≥1).
    mean_vulnerabilities: float = 3.0
    #: θ — mean seconds between releases (SRA period, Eq. 12).
    release_period: float = 600.0
    #: Whether release inter-arrival is exponential (Poisson process)
    #: or deterministic at exactly ``release_period``.
    poisson_arrivals: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.vulnerability_proportion <= 1.0:
            raise ValueError("VP must be in [0, 1]")
        if self.mean_vulnerabilities < 1.0:
            raise ValueError("vulnerable releases carry at least one flaw")
        if self.release_period <= 0:
            raise ValueError("release period must be positive")


@dataclass(frozen=True)
class ScheduledRelease:
    """One release and its announcement time."""

    time: float
    system: IoTSystem


class ReleaseCorpus:
    """A reproducible stream of IoT releases."""

    def __init__(
        self,
        config: ReleaseCorpusConfig,
        seed: int = 0,
        name_prefix: str = "iot-sys",
    ) -> None:
        self.config = config
        self._rng = random.Random(seed)
        self._name_prefix = name_prefix
        self._counter = 0

    def _sample_flaw_count(self) -> int:
        """0 for clean releases; >=1 Poisson-ish for vulnerable ones."""
        if self._rng.random() >= self.config.vulnerability_proportion:
            return 0
        # Shifted Poisson: 1 + Poisson(mean - 1), sampled via Knuth.
        lam = self.config.mean_vulnerabilities - 1.0
        count = 0
        if lam > 0:
            limit = pow(2.718281828459045, -lam)
            product = self._rng.random()
            while product > limit:
                count += 1
                product *= self._rng.random()
        return 1 + count

    def next_release(self) -> IoTSystem:
        """Generate the next release in the stream."""
        self._counter += 1
        name = f"{self._name_prefix}-{self._counter}"
        return build_system(
            name,
            version="1.0.0",
            vulnerability_count=self._sample_flaw_count(),
            rng=random.Random(self._rng.randrange(2**31)),
        )

    def schedule(self, duration: float, start: float = 0.0) -> List[ScheduledRelease]:
        """All releases announced in ``[start, start + duration)``.

        Deterministic arrivals put one release per period (the paper's
        t/θ accounting); Poisson arrivals draw exponential gaps.
        """
        releases: List[ScheduledRelease] = []
        clock = start
        while True:
            if self.config.poisson_arrivals:
                clock += self._rng.expovariate(1.0 / self.config.release_period)
            else:
                clock += self.config.release_period
            if clock >= start + duration + 1e-12:
                return releases
            releases.append(ScheduledRelease(time=clock, system=self.next_release()))

    def expected_release_count(self, duration: float) -> float:
        """t/θ — expected releases during ``duration`` (Eq. 12)."""
        return duration / self.config.release_period
