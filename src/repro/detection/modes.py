"""Detection modes — static analysis, dynamic analysis, fuzzing.

§VIII: "SmartCrowd enables incentives not only for static detection,
but also for dynamic or fuzzy testing as long as IoT detectors or
providers have these detection capabilities."  This module models the
three modes with the trade-off that makes fleet *diversity* matter:

* **static** — fast, broad, but blind to runtime-only behaviour;
* **dynamic** — slower, sees runtime flaws (auth bypass, info leaks)
  that static analysis misses;
* **fuzzing** — slowest, the only reliable way to surface
  memory-corruption classes.

Each vulnerability category has a per-mode detectability factor; a
detector's effective hit probability for a flaw is its base capability
scaled by its mode's factor for that category.  The
``fleet-composition`` experiment shows a mixed fleet achieving coverage
no single-mode fleet reaches — the operational content of the paper's
claim that more (and more diverse) detectors push DC_T toward 1.
"""

from __future__ import annotations

import enum
import random
from typing import Dict, List, Mapping, Optional, Sequence

from repro.detection.descriptions import describe
from repro.detection.detector import Detection, DetectionCapability, Detector
from repro.detection.iot_system import IoTSystem

__all__ = ["DetectionMode", "ModalDetector", "MODE_DETECTABILITY", "build_mixed_fleet"]


class DetectionMode(enum.Enum):
    """How a detector analyzes a release."""

    STATIC = "static"
    DYNAMIC = "dynamic"
    FUZZING = "fuzzing"


#: Per-mode detectability factor per vulnerability category: how much
#: of a detector's base hit probability survives for that category.
MODE_DETECTABILITY: Dict[DetectionMode, Mapping[str, float]] = {
    DetectionMode.STATIC: {
        "hardcoded-credentials": 1.0,
        "weak-crypto": 1.0,
        "insecure-default-config": 1.0,
        "insecure-update": 0.8,
        "path-traversal": 0.7,
        "command-injection": 0.5,
        "info-leak": 0.2,
        "auth-bypass": 0.15,
        "buffer-overflow": 0.1,
        "repackaged-malware": 0.9,
    },
    DetectionMode.DYNAMIC: {
        "hardcoded-credentials": 0.3,
        "weak-crypto": 0.3,
        "insecure-default-config": 0.8,
        "insecure-update": 0.7,
        "path-traversal": 0.8,
        "command-injection": 0.8,
        "info-leak": 1.0,
        "auth-bypass": 1.0,
        "buffer-overflow": 0.3,
        "repackaged-malware": 0.6,
    },
    DetectionMode.FUZZING: {
        "hardcoded-credentials": 0.05,
        "weak-crypto": 0.1,
        "insecure-default-config": 0.2,
        "insecure-update": 0.3,
        "path-traversal": 0.6,
        "command-injection": 0.9,
        "info-leak": 0.4,
        "auth-bypass": 0.3,
        "buffer-overflow": 1.0,
        "repackaged-malware": 0.2,
    },
}

#: Relative search speed per mode (static is the 1.0 baseline).
MODE_SPEED: Dict[DetectionMode, float] = {
    DetectionMode.STATIC: 1.0,
    DetectionMode.DYNAMIC: 0.5,
    DetectionMode.FUZZING: 0.25,
}


class ModalDetector(Detector):
    """A detector whose coverage depends on its analysis mode."""

    def __init__(
        self,
        detector_id: str,
        capability: DetectionCapability,
        mode: DetectionMode,
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__(detector_id, capability, rng=rng)
        self.mode = mode

    def hit_probability(self, category: str) -> float:
        """Effective per-flaw hit probability for a category."""
        factor = MODE_DETECTABILITY[self.mode].get(category, 0.5)
        return self.capability.detection_probability * factor

    def scan(self, system: IoTSystem) -> List[Detection]:
        """Mode-aware scan: category detectability × mode-scaled speed."""
        self.scans_performed += 1
        speed = MODE_SPEED[self.mode]
        findings: List[Detection] = []
        for vulnerability in system.ground_truth:
            if self._rng.random() >= self.hit_probability(vulnerability.category):
                continue
            found_after = self.capability.sample_find_time(self._rng) / speed
            findings.append(
                Detection(
                    vulnerability=vulnerability,
                    found_after=found_after,
                    description=describe(vulnerability, system.name, self._rng),
                )
            )
        findings.sort(key=lambda detection: detection.found_after)
        return findings


def build_mixed_fleet(
    per_mode: int = 3,
    threads: int = 4,
    per_thread_hit: float = 0.6,
    seed: int = 0,
) -> List[ModalDetector]:
    """A fleet with ``per_mode`` detectors of each analysis mode."""
    rng = random.Random(seed)
    fleet: List[ModalDetector] = []
    for mode in DetectionMode:
        for index in range(per_mode):
            fleet.append(
                ModalDetector(
                    detector_id=f"{mode.value}-{index + 1}",
                    capability=DetectionCapability(
                        threads=threads, per_thread_hit=per_thread_hit
                    ),
                    mode=mode,
                    rng=random.Random(rng.randrange(2**31)),
                )
            )
    return fleet


def fleet_coverage(
    fleet: Sequence[ModalDetector], categories: Sequence[str]
) -> Dict[str, float]:
    """Per-category probability the fleet finds a flaw of that category."""
    coverage: Dict[str, float] = {}
    for category in categories:
        missed = 1.0
        for detector in fleet:
            missed *= 1.0 - detector.hit_probability(category)
        coverage[category] = 1.0 - missed
    return coverage
