"""Third-party scanner profiles — the Table I reproduction substrate.

Table I of the paper scans two real IoT apps (Samsung Connect, Samsung
Smart Home) with six public services and finds the per-severity counts
wildly inconsistent and only partially overlapping — the motivation for
crowdsourced detection.  The real services are unreachable offline, so
each is modelled as a :class:`ScannerProfile`: per-severity detection
probabilities, per-category blind spots, and a per-app effectiveness
multiplier (real engines handle different app stacks very unevenly —
e.g. Quixxi finds 13 issues in Connect's stack but VirusTotal, a
malware-hash service, finds none).  What the reproduction preserves is
Table I's *shape*: some services report zero, one dominates, counts
disagree across services, and pairwise overlap of findings is partial.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Set, Tuple

from repro.detection.iot_system import IoTSystem, build_system
from repro.detection.vulnerability import (
    Severity,
    Vulnerability,
)

__all__ = [
    "ScannerProfile",
    "ScanResult",
    "PAPER_SERVICE_PROFILES",
    "build_table1_apps",
    "overlap_matrix",
]


@dataclass(frozen=True)
class ScanResult:
    """One service's findings for one app."""

    service: str
    system: str
    found: Tuple[Vulnerability, ...]

    def counts(self) -> Dict[Severity, int]:
        """High/medium/low counts — one Table I cell triple."""
        counts = {severity: 0 for severity in Severity}
        for vulnerability in self.found:
            counts[vulnerability.severity] += 1
        return counts

    def keys(self) -> Set[str]:
        """Canonical keys of the findings (for overlap computation)."""
        return {vulnerability.key for vulnerability in self.found}


@dataclass(frozen=True)
class ScannerProfile:
    """A third-party detection service's capability fingerprint."""

    name: str
    #: Detection probability per severity bucket.
    hit_rates: Mapping[Severity, float]
    #: Categories this engine cannot see at all (e.g. a malware-hash
    #: service is blind to logic flaws).
    blind_categories: FrozenSet[str] = frozenset()
    #: Per-app effectiveness multiplier (default 1.0).
    effectiveness: Mapping[str, float] = field(default_factory=dict)

    def scan(self, system: IoTSystem, rng: random.Random) -> ScanResult:
        """Scan an app: sample findings from its ground truth."""
        factor = self.effectiveness.get(system.name, 1.0)
        found: List[Vulnerability] = []
        for vulnerability in system.ground_truth:
            if vulnerability.category in self.blind_categories:
                continue
            probability = self.hit_rates.get(vulnerability.severity, 0.0) * factor
            if rng.random() < probability:
                found.append(vulnerability)
        return ScanResult(service=self.name, system=system.name, found=tuple(found))


#: All categories except repackaged malware — the blind spot of pure
#: malware-signature services like VirusTotal/Andrototal, which report
#: 0/0/0 for both apps in Table I.
_LOGIC_FLAW_CATEGORIES = frozenset(
    {
        "hardcoded-credentials",
        "command-injection",
        "buffer-overflow",
        "insecure-update",
        "weak-crypto",
        "info-leak",
        "auth-bypass",
        "path-traversal",
        "insecure-default-config",
    }
)

#: Table I's six services, calibrated to the paper's reported counts.
PAPER_SERVICE_PROFILES: Dict[str, ScannerProfile] = {
    "VirusTotal": ScannerProfile(
        name="VirusTotal",
        hit_rates={Severity.HIGH: 0.95, Severity.MEDIUM: 0.9, Severity.LOW: 0.8},
        blind_categories=_LOGIC_FLAW_CATEGORIES,
    ),
    "Quixxi": ScannerProfile(
        name="Quixxi",
        hit_rates={Severity.HIGH: 0.9, Severity.MEDIUM: 0.40, Severity.LOW: 0.10},
        effectiveness={"samsung-connect": 1.0, "samsung-smart-home": 0.20},
    ),
    "Andrototal": ScannerProfile(
        name="Andrototal",
        hit_rates={Severity.HIGH: 0.9, Severity.MEDIUM: 0.85, Severity.LOW: 0.7},
        blind_categories=_LOGIC_FLAW_CATEGORIES,
    ),
    "jaq.alibaba": ScannerProfile(
        name="jaq.alibaba",
        hit_rates={Severity.HIGH: 0.55, Severity.MEDIUM: 0.88, Severity.LOW: 0.90},
        effectiveness={"samsung-connect": 1.0, "samsung-smart-home": 1.0},
    ),
    "Ostorlab": ScannerProfile(
        name="Ostorlab",
        hit_rates={Severity.HIGH: 0.04, Severity.MEDIUM: 0.12, Severity.LOW: 0.03},
    ),
    "htbridge": ScannerProfile(
        name="htbridge",
        hit_rates={Severity.HIGH: 0.35, Severity.MEDIUM: 0.35, Severity.LOW: 0.13},
        effectiveness={"samsung-connect": 1.0, "samsung-smart-home": 0.30},
    ),
}


def build_table1_apps(seed: int = 7) -> Tuple[IoTSystem, IoTSystem]:
    """The two Table I apps with calibrated ground-truth flaw counts.

    Ground truth is chosen slightly above the best scanner's counts
    (jaq.alibaba finds most but not all): Samsung Connect ≈ 3/16/36
    high/medium/low, Samsung Smart Home ≈ 24/52/62.
    """
    rng = random.Random(seed)

    def _with_counts(name: str, high: int, medium: int, low: int) -> IoTSystem:
        flaws: List[Vulnerability] = []
        index = 0
        for severity, count in (
            (Severity.HIGH, high),
            (Severity.MEDIUM, medium),
            (Severity.LOW, low),
        ):
            for _ in range(count):
                category = rng.choice(sorted(_LOGIC_FLAW_CATEGORIES))
                flaws.append(Vulnerability.create(name, index, severity, category))
                index += 1
        base = build_system(name, "1.0.0", vulnerability_count=0)
        return IoTSystem(
            name=base.name,
            version=base.version,
            image=base.image,
            download_link=base.download_link,
            ground_truth=tuple(flaws),
        )

    connect = _with_counts("samsung-connect", high=3, medium=16, low=36)
    smart_home = _with_counts("samsung-smart-home", high=24, medium=52, low=62)
    return connect, smart_home


def overlap_matrix(results: List[ScanResult]) -> Dict[Tuple[str, str], float]:
    """Pairwise Jaccard overlap between services' finding sets.

    Quantifies Table I's caption: "detection results ... are partially
    overlapped."  Pairs where both services found nothing are skipped.
    """
    matrix: Dict[Tuple[str, str], float] = {}
    for i, first in enumerate(results):
        for second in results[i + 1 :]:
            union = first.keys() | second.keys()
            if not union:
                continue
            intersection = first.keys() & second.keys()
            matrix[(first.service, second.service)] = len(intersection) / len(union)
    return matrix
