"""AutoVerif — automatic correctness verification of detailed reports.

Eq. 6: ``AutoVerif(P_i, R*) -> TRUE/FALSE``.  Providers run this
machine-automatic engine (the paper suggests CloudAV analysis engines
or Vigilante SCA verification) on every detailed report before writing
it to a block; a FALSE verdict drops the report and isolates the
detector (§V-C).

Our engine checks each claimed description against the release's
ground truth — the simulated equivalent of replaying a self-certifying
alert.  Optional imperfection knobs model a weaker verifier for
ablations: ``false_reject_rate`` (real flaw rejected) and
``false_accept_rate`` (fabricated flaw accepted).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.detection.descriptions import VulnerabilityDescription
from repro.detection.iot_system import IoTSystem

__all__ = ["AutoVerifEngine", "VerificationOutcome"]


@dataclass(frozen=True)
class VerificationOutcome:
    """Per-description verdicts and the overall TRUE/FALSE of Eq. 6."""

    verified: bool
    accepted_keys: Tuple[str, ...]
    rejected_keys: Tuple[str, ...]


class AutoVerifEngine:
    """A provider's automatic report verifier."""

    def __init__(
        self,
        false_reject_rate: float = 0.0,
        false_accept_rate: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not 0.0 <= false_reject_rate < 1.0:
            raise ValueError("false reject rate must be in [0, 1)")
        if not 0.0 <= false_accept_rate < 1.0:
            raise ValueError("false accept rate must be in [0, 1)")
        self.false_reject_rate = false_reject_rate
        self.false_accept_rate = false_accept_rate
        self._rng = rng if rng is not None else random.Random(0)
        self.verifications_run = 0

    def check_description(
        self, system: IoTSystem, description: VulnerabilityDescription
    ) -> bool:
        """Verify one claimed flaw against the release."""
        truth = any(v.key == description.canonical for v in system.ground_truth)
        if truth:
            return self._rng.random() >= self.false_reject_rate
        return self._rng.random() < self.false_accept_rate

    def verify(
        self,
        system: IoTSystem,
        descriptions: Iterable[VulnerabilityDescription],
    ) -> VerificationOutcome:
        """Eq. 6 over a whole detailed report.

        The report passes only if *every* claim checks out — a single
        fabricated finding marks the report (and its detector) bad,
        which is what makes forged reports strictly unprofitable.
        """
        self.verifications_run += 1
        accepted: List[str] = []
        rejected: List[str] = []
        for description in descriptions:
            if self.check_description(system, description):
                accepted.append(description.canonical)
            else:
                rejected.append(description.canonical)
        return VerificationOutcome(
            verified=not rejected and bool(accepted),
            accepted_keys=tuple(accepted),
            rejected_keys=tuple(rejected),
        )
