"""Structured trace events stamped on the simulation clock.

Where metrics answer "how much", the trace answers "what happened
when": faults as they are injected, SRA announcements, block wins,
contract deploys — each an ordered :class:`TraceEvent` carrying the
*simulated* timestamp, so a run report can interleave the chaos
schedule with what the system did about it.

The log is clock-agnostic: bind it to a
:class:`~repro.network.simulator.Simulator` (``bind_clock(sim)``) and
events stamp ``sim.now``; unbound, events stamp 0.0 (useful for pure
analytical experiments with no event loop).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional

__all__ = ["TraceEvent", "TraceLog", "NullTraceLog"]

#: Hard cap on retained events; beyond it the log counts drops instead
#: of growing without bound (a runaway instrumented loop should cost
#: memory linear in the cap, not the run length).
DEFAULT_MAX_EVENTS = 200_000


@dataclass(frozen=True)
class TraceEvent:
    """One structured event: simulated time, a kind tag, and fields."""

    time: float
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready row (JSONL line payload)."""
        return {
            "type": "trace",
            "time": self.time,
            "kind": self.kind,
            "fields": dict(self.fields),
        }


class TraceLog:
    """An append-only, clock-stamped event log."""

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        max_events: int = DEFAULT_MAX_EVENTS,
    ) -> None:
        if max_events < 1:
            raise ValueError("max_events must be positive")
        self._clock = clock
        self._max_events = max_events
        self._events: List[TraceEvent] = []
        #: Events discarded after the cap was reached.
        self.dropped = 0

    def bind_clock(self, clock_source: Any) -> None:
        """Stamp future events from ``clock_source``.

        Accepts either a zero-argument callable returning seconds or
        any object with a ``now`` attribute (e.g. a ``Simulator``).
        """
        if callable(clock_source):
            self._clock = clock_source
        else:
            self._clock = lambda: clock_source.now

    @property
    def now(self) -> float:
        """The clock value events are currently stamped with."""
        return self._clock() if self._clock is not None else 0.0

    def emit(self, kind: str, /, **fields: Any) -> Optional[TraceEvent]:
        """Append an event at the current clock; None once over the cap.

        ``kind`` is positional-only so a field may also be named
        ``kind`` (e.g. ``emit("fault", kind="crash")``).
        """
        if len(self._events) >= self._max_events:
            self.dropped += 1
            return None
        event = TraceEvent(time=self.now, kind=kind, fields=fields)
        self._events.append(event)
        return event

    def absorb(self, events: Iterable[Any]) -> None:
        """Append pre-stamped events (a worker process's trace) in order.

        Accepts :class:`TraceEvent` objects or their ``to_dict`` rows.
        Absorbed events keep their original timestamps — they were
        stamped by the worker's own simulation clock — so a sweep's
        merged trace matches what the serial loop would have logged.
        The retention cap applies as usual.
        """
        for event in events:
            if isinstance(event, dict):
                event = TraceEvent(
                    time=event["time"],
                    kind=event["kind"],
                    fields=dict(event.get("fields", {})),
                )
            if len(self._events) >= self._max_events:
                self.dropped += 1
                continue
            self._events.append(event)

    @property
    def events(self) -> List[TraceEvent]:
        """The retained events, oldest first."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def by_kind(self, kind: str) -> List[TraceEvent]:
        """Events of one kind, in order."""
        return [event for event in self._events if event.kind == kind]

    def clear(self) -> None:
        """Drop all retained events (dropped counter included)."""
        self._events.clear()
        self.dropped = 0


class NullTraceLog(TraceLog):
    """A trace log that ignores writes (the disabled-path log)."""

    def emit(self, kind: str, /, **fields: Any) -> Optional[TraceEvent]:  # noqa: D102
        return None

    def absorb(self, events: Iterable[Any]) -> None:  # noqa: D102 - no-op override
        pass
