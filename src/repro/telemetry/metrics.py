"""Metrics primitives: counters, gauges, histograms with labeled series.

The registry is the write side of the observability layer
(docs/OBSERVABILITY.md): every runtime component — simulator, gossip
overlay, miners, mempools, the contract runtime, the fault injector —
records what it did through one of these three instrument kinds, and
the JSONL exporter (:mod:`repro.telemetry.export`) snapshots them at
the end of a run.

Design constraints, in priority order:

* **near-zero disabled path** — the default telemetry object is a
  no-op (:data:`repro.telemetry.NULL_TELEMETRY`); hot loops gate on
  ``telemetry.enabled`` so a disabled run never pays for label lookups
  (gated at ≤5% on the nonce-search bench, ``benchmarks/``);
* **determinism** — instruments never read wall clocks or RNGs, so an
  instrumented run produces the same simulation trajectory as an
  uninstrumented one;
* **bounded memory** — histograms keep moment summaries plus log-2
  bucket counts, not raw samples, so million-event runs stay small.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullCounter",
    "NullGauge",
    "NullHistogram",
    "NullMetricsRegistry",
]

#: A label set, normalized to a sorted tuple so it can key a dict.
LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass
class Counter:
    """A monotonically increasing count (messages sent, faults applied)."""

    name: str
    labels: Dict[str, str]
    value: int = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to the count."""
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def merge_row(self, row: Dict[str, Any]) -> None:
        """Fold a worker-process snapshot row into this counter."""
        self.inc(int(row["value"]))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready snapshot row."""
        return {
            "type": "counter",
            "name": self.name,
            "labels": dict(self.labels),
            "value": self.value,
        }


@dataclass
class Gauge:
    """A point-in-time value (queue depth, current difficulty)."""

    name: str
    labels: Dict[str, str]
    value: float = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = value

    def add(self, delta: float) -> None:
        """Move the gauge by ``delta`` (gauges go both ways)."""
        self.value += delta

    def merge_row(self, row: Dict[str, Any]) -> None:
        """Fold a worker-process snapshot row into this gauge.

        Gauges are point-in-time, so the merged-in value wins — merging
        worker snapshots in trial order therefore matches the serial
        loop, where later trials overwrite earlier ones.
        """
        self.set(float(row["value"]))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready snapshot row."""
        return {
            "type": "gauge",
            "name": self.name,
            "labels": dict(self.labels),
            "value": self.value,
        }


class Histogram:
    """A distribution summary: count/sum/min/max plus log-2 buckets.

    Buckets are powers of two over the observed magnitude — enough to
    read block-interval and gas distributions off a run report without
    storing every sample.  Zero and negative observations land in the
    dedicated ``"<=0"`` bucket.
    """

    __slots__ = ("name", "labels", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str, labels: Dict[str, str]) -> None:
        self.name = name
        self.labels = labels
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        #: bucket label -> observation count; label "2^k" holds values
        #: in (2^(k-1), 2^k].
        self.buckets: Dict[str, int] = {}

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value <= 0:
            bucket = "<=0"
        else:
            bucket = f"2^{math.ceil(math.log2(value)) if value > 0 else 0}"
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def merge_row(self, row: Dict[str, Any]) -> None:
        """Fold a worker-process snapshot row into this histogram.

        Count/sum add, min/max widen, and the log-2 bucket counts add —
        so merging per-trial histograms reproduces the distribution the
        serial loop would have accumulated in one instrument.
        """
        count = int(row["count"])
        if count == 0:
            return
        self.count += count
        self.total += float(row["sum"])
        if row["min"] is not None and (self.min is None or row["min"] < self.min):
            self.min = row["min"]
        if row["max"] is not None and (self.max is None or row["max"] > self.max):
            self.max = row["max"]
        for bucket, bucket_count in row.get("buckets", {}).items():
            self.buckets[bucket] = self.buckets.get(bucket, 0) + int(bucket_count)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready snapshot row."""
        return {
            "type": "histogram",
            "name": self.name,
            "labels": dict(self.labels),
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": dict(sorted(self.buckets.items())),
        }


class MetricsRegistry:
    """Get-or-create home for labeled instrument series.

    ``registry.counter("gossip.messages", status="sent")`` returns the
    same :class:`Counter` every call, so callers may either cache the
    instrument (hot paths) or look it up each time (cold paths).
    A name must keep one instrument kind: re-registering
    ``"x"`` as both a counter and a gauge raises ``TypeError``.
    """

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, LabelKey], Any] = {}
        self._kinds: Dict[str, type] = {}

    def _get(self, cls: type, name: str, labels: Dict[str, Any]) -> Any:
        seen = self._kinds.get(name)
        if seen is not None and seen is not cls:
            raise TypeError(
                f"metric {name!r} already registered as {seen.__name__}"
            )
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            self._kinds[name] = cls
            instrument = cls(name, {str(k): str(v) for k, v in labels.items()})
            self._instruments[key] = instrument
        return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        """The counter series ``name`` at ``labels``."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """The gauge series ``name`` at ``labels``."""
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        """The histogram series ``name`` at ``labels``."""
        return self._get(Histogram, name, labels)

    def merge_rows(self, rows: Iterable[Dict[str, Any]]) -> None:
        """Fold snapshot rows (a worker process's metrics) into this registry.

        Rows are the :meth:`snapshot` format; each is routed to the
        instrument with the same name and labels (created if new, so
        the parent's insertion order follows first-merge order — the
        same order the serial loop would have created them in).
        """
        merge = {"counter": self.counter, "gauge": self.gauge, "histogram": self.histogram}
        for row in rows:
            getter = merge.get(row.get("type"))
            if getter is None:
                raise ValueError(f"unknown metric row type {row.get('type')!r}")
            instrument = getter(row["name"], **row.get("labels", {}))
            instrument.merge_row(row)

    def __iter__(self) -> Iterator[Any]:
        """Iterate instruments in insertion order."""
        return iter(self._instruments.values())

    def __len__(self) -> int:
        return len(self._instruments)

    def snapshot(self) -> List[Dict[str, Any]]:
        """JSON-ready rows for every instrument, insertion-ordered."""
        return [instrument.to_dict() for instrument in self]


class NullCounter(Counter):
    """A counter that ignores writes (the disabled-path instrument)."""

    def __init__(self) -> None:
        super().__init__(name="", labels={})

    def inc(self, amount: int = 1) -> None:  # noqa: D102 - no-op override
        pass


class NullGauge(Gauge):
    """A gauge that ignores writes."""

    def __init__(self) -> None:
        super().__init__(name="", labels={})

    def set(self, value: float) -> None:  # noqa: D102 - no-op override
        pass

    def add(self, delta: float) -> None:  # noqa: D102 - no-op override
        pass


class NullHistogram(Histogram):
    """A histogram that ignores writes."""

    def __init__(self) -> None:
        super().__init__(name="", labels={})

    def observe(self, value: float) -> None:  # noqa: D102 - no-op override
        pass


_NULL_COUNTER = NullCounter()
_NULL_GAUGE = NullGauge()
_NULL_HISTOGRAM = NullHistogram()


class NullMetricsRegistry(MetricsRegistry):
    """A registry whose instruments are shared write-ignoring stubs.

    Lets unguarded instrumentation run safely when telemetry is off;
    hot paths should still gate on ``telemetry.enabled`` to skip even
    the lookup.
    """

    def counter(self, name: str, **labels: Any) -> Counter:  # noqa: D102
        return _NULL_COUNTER

    def gauge(self, name: str, **labels: Any) -> Gauge:  # noqa: D102
        return _NULL_GAUGE

    def histogram(self, name: str, **labels: Any) -> Histogram:  # noqa: D102
        return _NULL_HISTOGRAM

    def merge_rows(self, rows: Iterable[Dict[str, Any]]) -> None:  # noqa: D102
        pass

    def snapshot(self) -> List[Dict[str, Any]]:  # noqa: D102
        return []
