"""JSONL export and the run-report summarizer.

One run = one JSONL file: a ``meta`` header line, every retained
:class:`~repro.telemetry.trace.TraceEvent` in order, then a snapshot
row per metric instrument.  The format is line-oriented on purpose —
``grep kind=fault run.jsonl`` works, files concatenate, and the
summarizer streams without loading structure it does not need.

``python -m repro.experiments --report run.jsonl`` renders the report
for a recorded run; :func:`summarize_run` is the library entry point.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import IO, Any, Dict, List, Optional, Union

from repro.telemetry.trace import TraceEvent

__all__ = ["RunRecord", "read_jsonl", "summarize_run", "write_jsonl"]


def write_jsonl(
    telemetry: "Any",
    destination: Union[str, IO[str]],
    meta: Optional[Dict[str, Any]] = None,
) -> int:
    """Write a telemetry object's trace + metrics snapshot as JSONL.

    ``destination`` is a path or an open text handle; returns the
    number of lines written.  The ``meta`` dict (run label, seed,
    config) lands on the header line.
    """
    header: Dict[str, Any] = {
        "type": "meta",
        "format": "repro.telemetry/v1",
        "trace_events": len(telemetry.trace),
        "trace_dropped": telemetry.trace.dropped,
        "metrics": len(telemetry.metrics.snapshot()),
    }
    if meta:
        header.update(meta)
    lines = [header]
    lines.extend(event.to_dict() for event in telemetry.trace)
    lines.extend(telemetry.metrics.snapshot())

    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8") as handle:
            for line in lines:
                handle.write(json.dumps(line, sort_keys=True) + "\n")
    else:
        for line in lines:
            destination.write(json.dumps(line, sort_keys=True) + "\n")
    return len(lines)


@dataclass
class RunRecord:
    """A parsed JSONL run: meta + trace + metric snapshot rows."""

    meta: Dict[str, Any] = field(default_factory=dict)
    events: List[TraceEvent] = field(default_factory=list)
    metrics: List[Dict[str, Any]] = field(default_factory=list)

    def events_by_kind(self) -> Dict[str, int]:
        """Event count per kind, insertion-ordered by first occurrence."""
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def metric(self, name: str, **labels: Any) -> Optional[Dict[str, Any]]:
        """The snapshot row for one series, or None."""
        wanted = {str(k): str(v) for k, v in labels.items()}
        for row in self.metrics:
            if row["name"] == name and row.get("labels", {}) == wanted:
                return row
        return None

    def metric_rows(self, name: str) -> List[Dict[str, Any]]:
        """Every labeled series of a metric name."""
        return [row for row in self.metrics if row["name"] == name]


def read_jsonl(source: Union[str, IO[str]]) -> RunRecord:
    """Parse a telemetry JSONL file back into a :class:`RunRecord`."""

    def _parse(handle: IO[str]) -> RunRecord:
        record = RunRecord()
        for raw in handle:
            raw = raw.strip()
            if not raw:
                continue
            row = json.loads(raw)
            kind = row.get("type")
            if kind == "meta":
                record.meta = {
                    k: v for k, v in row.items() if k != "type"
                }
            elif kind == "trace":
                record.events.append(
                    TraceEvent(
                        time=row["time"],
                        kind=row["kind"],
                        fields=row.get("fields", {}),
                    )
                )
            elif kind in ("counter", "gauge", "histogram"):
                record.metrics.append(row)
            else:
                raise ValueError(f"unknown telemetry row type {kind!r}")
        return record

    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            return _parse(handle)
    return _parse(source)


def _format_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def summarize_run(source: Union[str, IO[str], RunRecord]) -> str:
    """Render a human-readable run report from a JSONL file.

    Sections: run metadata, trace event counts by kind, counters,
    gauges, and histogram summaries (count/mean/min/max).
    """
    record = source if isinstance(source, RunRecord) else read_jsonl(source)
    lines: List[str] = ["telemetry run report", "====================="]

    if record.meta:
        lines.append("meta:")
        for key in sorted(record.meta):
            lines.append(f"  {key}: {record.meta[key]}")

    counts = record.events_by_kind()
    lines.append(f"trace: {len(record.events)} events")
    for kind, count in sorted(counts.items(), key=lambda kv: (-kv[1], kv[0])):
        span = [e.time for e in record.events if e.kind == kind]
        lines.append(
            f"  {kind:<32} x{count:<7} t=[{min(span):.1f}, {max(span):.1f}]"
        )

    counters = [row for row in record.metrics if row["type"] == "counter"]
    if counters:
        lines.append(f"counters: {len(counters)} series")
        for row in sorted(counters, key=lambda r: (r["name"], str(r["labels"]))):
            lines.append(
                f"  {row['name']}{_format_labels(row['labels'])} = {row['value']}"
            )

    gauges = [row for row in record.metrics if row["type"] == "gauge"]
    if gauges:
        lines.append(f"gauges: {len(gauges)} series")
        for row in sorted(gauges, key=lambda r: (r["name"], str(r["labels"]))):
            lines.append(
                f"  {row['name']}{_format_labels(row['labels'])} = {row['value']:g}"
            )

    histograms = [row for row in record.metrics if row["type"] == "histogram"]
    if histograms:
        lines.append(f"histograms: {len(histograms)} series")
        for row in sorted(histograms, key=lambda r: (r["name"], str(r["labels"]))):
            if row["count"]:
                stats = (
                    f"count={row['count']} mean={row['mean']:.4g} "
                    f"min={row['min']:.4g} max={row['max']:.4g}"
                )
            else:
                stats = "count=0"
            lines.append(
                f"  {row['name']}{_format_labels(row['labels'])} {stats}"
            )

    return "\n".join(lines)
