"""Telemetry: metrics + trace events for every runtime layer.

The ROADMAP's production north star needs runs to be *explainable*:
where did the time, the messages, and the gas go?  This package is the
answer — a :class:`MetricsRegistry` of labeled counters/gauges/
histograms, a :class:`~repro.telemetry.trace.TraceLog` of structured
events stamped on the simulation clock, and a JSONL exporter plus
run-report summarizer (``python -m repro.experiments --report``).

Usage::

    from repro.telemetry import Telemetry

    telemetry = Telemetry()
    deployment = DecentralizedDeployment(..., telemetry=telemetry)
    telemetry.bind_clock(deployment.simulator)
    ...run...
    telemetry.export_jsonl("run.jsonl", meta={"seed": 0})

Telemetry is strictly opt-in: every instrumented component defaults to
:data:`NULL_TELEMETRY`, whose instruments ignore writes, and hot loops
gate on ``telemetry.enabled`` so the disabled path costs one attribute
check (enforced at ≤5% on the nonce-search bench in ``benchmarks/``).
Instrumentation never draws randomness or wall-clock time into
simulation logic, so enabling it cannot change a seeded trajectory.
"""

from __future__ import annotations

from typing import IO, Any, Callable, Dict, Optional, Union

from repro.telemetry.export import (
    RunRecord,
    read_jsonl,
    summarize_run,
    write_jsonl,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)
from repro.telemetry.trace import NullTraceLog, TraceEvent, TraceLog

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "RunRecord",
    "Telemetry",
    "TraceEvent",
    "TraceLog",
    "read_jsonl",
    "summarize_run",
    "write_jsonl",
]


class Telemetry:
    """One run's observability context: a registry plus a trace log.

    Pass a single instance through the components of a run (deployment,
    injector, miners, experiments); they all write into the same
    registry and log, and :meth:`export_jsonl` emits the combined
    record.
    """

    enabled: bool = True

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        trace: Optional[TraceLog] = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.trace = trace if trace is not None else TraceLog()

    def __bool__(self) -> bool:
        return self.enabled

    # -- convenience passthroughs -----------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        """Shorthand for ``self.metrics.counter``."""
        return self.metrics.counter(name, **labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """Shorthand for ``self.metrics.gauge``."""
        return self.metrics.gauge(name, **labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        """Shorthand for ``self.metrics.histogram``."""
        return self.metrics.histogram(name, **labels)

    def event(self, kind: str, /, **fields: Any) -> None:
        """Shorthand for ``self.trace.emit``."""
        self.trace.emit(kind, **fields)

    def bind_clock(self, clock_source: Union[Callable[[], float], Any]) -> None:
        """Stamp trace events from a simulator (or any ``now`` source)."""
        self.trace.bind_clock(clock_source)

    def export_jsonl(
        self,
        destination: Union[str, IO[str]],
        meta: Optional[Dict[str, Any]] = None,
    ) -> int:
        """Write this run's trace + metric snapshot; returns line count."""
        return write_jsonl(self, destination, meta=meta)

    # -- worker-process merge ----------------------------------------------

    def snapshot_payload(self) -> Dict[str, Any]:
        """A picklable snapshot of this telemetry for cross-process merge.

        Trial workers running under :func:`repro.experiments.runner.run_trials`
        cannot write into the parent's registry, so they record into a
        local :class:`Telemetry` and ship this payload back with their
        result; the parent folds it in with :meth:`merge_payload`.
        """
        return {
            "metrics": self.metrics.snapshot(),
            "trace": [event.to_dict() for event in self.trace],
            "trace_dropped": self.trace.dropped,
        }

    def merge_payload(self, payload: Dict[str, Any]) -> None:
        """Fold a worker's :meth:`snapshot_payload` into this telemetry.

        Counters add, gauges take the merged-in value, histograms merge
        their summaries, and trace events append with their original
        (worker-side simulation) timestamps.  Merging per-trial payloads
        in input order therefore reproduces exactly the registry and
        trace a serial instrumented sweep would have produced — the
        determinism contract extended to telemetry.
        """
        if not self.enabled:
            return
        self.trace.absorb(payload.get("trace", ()))
        self.trace.dropped += int(payload.get("trace_dropped", 0))
        self.metrics.merge_rows(payload.get("metrics", ()))


class _NullTelemetry(Telemetry):
    """The disabled default: falsy, and every write is a no-op."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(metrics=NullMetricsRegistry(), trace=NullTraceLog())


#: Shared disabled telemetry; components use it when none is supplied.
NULL_TELEMETRY = _NullTelemetry()
