"""Pure-Python ECDSA over secp256k1.

SmartCrowd signs SRAs and detection reports with ECDSA on the
secp256k1 curve (§VII: "SmartCrowd supports ECDSA signature and hashing
function SHA-3 ... using secp256k1 curve").  No third-party crypto
library is available offline, so the curve arithmetic is implemented
here directly:

* Jacobian-coordinate point arithmetic for speed.
* RFC 6979 deterministic nonces, so signing is reproducible and never
  leaks the key through a bad RNG.
* Low-``s`` normalization (as Ethereum does) so signatures are
  non-malleable: ``verify`` rejects high-``s`` signatures.

This module operates on 32-byte message *digests*; callers hash first
(see :mod:`repro.crypto.hashing`).
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = [
    "CURVE",
    "CurveParams",
    "EcdsaError",
    "Signature",
    "scalar_mult",
    "point_add",
    "sign",
    "verify",
    "recover_candidates",
]


class EcdsaError(ValueError):
    """Raised for invalid keys, digests, or signatures."""


@dataclass(frozen=True)
class CurveParams:
    """Domain parameters of a short Weierstrass curve y^2 = x^3 + ax + b."""

    name: str
    p: int  # field prime
    a: int
    b: int
    g: Tuple[int, int]  # base point
    n: int  # group order
    h: int  # cofactor


#: secp256k1, the curve used by Bitcoin and Ethereum.
CURVE = CurveParams(
    name="secp256k1",
    p=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEFFFFFC2F,
    a=0,
    b=7,
    g=(
        0x79BE667EF9DCBBAC55A06295CE870B07029BFCDB2DCE28D959F2815B16F81798,
        0x483ADA7726A3C4655DA4FBFC0E1108A8FD17B448A68554199C47D08FFB10D4B8,
    ),
    n=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEBAAEDCE6AF48A03BBFD25E8CD0364141,
    h=1,
)

# Point at infinity sentinel for affine points.
_INFINITY: Optional[Tuple[int, int]] = None


def _inv_mod(value: int, modulus: int) -> int:
    """Modular inverse via Python's built-in extended-gcd pow."""
    return pow(value, -1, modulus)


# --- Jacobian coordinate arithmetic ------------------------------------
#
# A Jacobian point (X, Y, Z) represents the affine point (X/Z^2, Y/Z^3).
# The point at infinity is represented with Z == 0.

_JacPoint = Tuple[int, int, int]
_JAC_INFINITY: _JacPoint = (1, 1, 0)


def _to_jacobian(point: Optional[Tuple[int, int]]) -> _JacPoint:
    if point is None:
        return _JAC_INFINITY
    return (point[0], point[1], 1)


def _from_jacobian(point: _JacPoint, p: int) -> Optional[Tuple[int, int]]:
    x, y, z = point
    if z == 0:
        return None
    z_inv = _inv_mod(z, p)
    z_inv_sq = (z_inv * z_inv) % p
    return ((x * z_inv_sq) % p, (y * z_inv_sq * z_inv) % p)


def _jac_double(point: _JacPoint, p: int) -> _JacPoint:
    x, y, z = point
    if z == 0 or y == 0:
        return _JAC_INFINITY
    # Doubling formulas specialised for a == 0 (secp256k1).
    y_sq = (y * y) % p
    s = (4 * x * y_sq) % p
    m = (3 * x * x) % p
    x3 = (m * m - 2 * s) % p
    y3 = (m * (s - x3) - 8 * y_sq * y_sq) % p
    z3 = (2 * y * z) % p
    return (x3, y3, z3)


def _jac_add(p1: _JacPoint, p2: _JacPoint, p: int) -> _JacPoint:
    x1, y1, z1 = p1
    x2, y2, z2 = p2
    if z1 == 0:
        return p2
    if z2 == 0:
        return p1
    z1_sq = (z1 * z1) % p
    z2_sq = (z2 * z2) % p
    u1 = (x1 * z2_sq) % p
    u2 = (x2 * z1_sq) % p
    s1 = (y1 * z2_sq * z2) % p
    s2 = (y2 * z1_sq * z1) % p
    if u1 == u2:
        if s1 != s2:
            return _JAC_INFINITY
        return _jac_double(p1, p)
    h = (u2 - u1) % p
    r = (s2 - s1) % p
    h_sq = (h * h) % p
    h_cu = (h_sq * h) % p
    v = (u1 * h_sq) % p
    x3 = (r * r - h_cu - 2 * v) % p
    y3 = (r * (v - x3) - s1 * h_cu) % p
    z3 = (h * z1 * z2) % p
    return (x3, y3, z3)


def point_add(
    p1: Optional[Tuple[int, int]],
    p2: Optional[Tuple[int, int]],
    curve: CurveParams = CURVE,
) -> Optional[Tuple[int, int]]:
    """Add two affine points on ``curve`` (None is the point at infinity)."""
    result = _jac_add(_to_jacobian(p1), _to_jacobian(p2), curve.p)
    return _from_jacobian(result, curve.p)


def scalar_mult(
    k: int,
    point: Optional[Tuple[int, int]],
    curve: CurveParams = CURVE,
) -> Optional[Tuple[int, int]]:
    """Compute ``k * point`` using double-and-add in Jacobian coordinates."""
    if point is None or k % curve.n == 0:
        return None
    k %= curve.n
    accumulator = _JAC_INFINITY
    addend = _to_jacobian(point)
    while k:
        if k & 1:
            accumulator = _jac_add(accumulator, addend, curve.p)
        addend = _jac_double(addend, curve.p)
        k >>= 1
    return _from_jacobian(accumulator, curve.p)


def is_on_curve(point: Optional[Tuple[int, int]], curve: CurveParams = CURVE) -> bool:
    """Check curve membership of an affine point."""
    if point is None:
        return True
    x, y = point
    return (y * y - (x * x * x + curve.a * x + curve.b)) % curve.p == 0


@dataclass(frozen=True)
class Signature:
    """An ECDSA signature ``(r, s)`` in canonical low-``s`` form."""

    r: int
    s: int

    def to_bytes(self) -> bytes:
        """Serialize as the 64-byte ``r || s`` fixed-width encoding."""
        return self.r.to_bytes(32, "big") + self.s.to_bytes(32, "big")

    @classmethod
    def from_bytes(cls, data: bytes) -> "Signature":
        """Parse a 64-byte ``r || s`` encoding."""
        if len(data) != 64:
            raise EcdsaError(f"signature must be 64 bytes, got {len(data)}")
        return cls(int.from_bytes(data[:32], "big"), int.from_bytes(data[32:], "big"))

    def is_low_s(self, curve: CurveParams = CURVE) -> bool:
        """True if ``s`` is in the lower half of the group order."""
        return 1 <= self.s <= curve.n // 2


def _bits_to_int(data: bytes, n: int) -> int:
    """Leftmost-bits conversion from RFC 6979 §2.3.2."""
    value = int.from_bytes(data, "big")
    excess = len(data) * 8 - n.bit_length()
    if excess > 0:
        value >>= excess
    return value


def _rfc6979_nonce(private_key: int, digest: bytes, curve: CurveParams) -> int:
    """Deterministic nonce generation per RFC 6979 with HMAC-SHA256."""
    n = curve.n
    holen = 32  # SHA-256 output length
    x_bytes = private_key.to_bytes(32, "big")
    h1 = _bits_to_int(digest, n) % n
    h1_bytes = h1.to_bytes(32, "big")

    v = b"\x01" * holen
    k = b"\x00" * holen
    k = hmac.new(k, v + b"\x00" + x_bytes + h1_bytes, hashlib.sha256).digest()
    v = hmac.new(k, v, hashlib.sha256).digest()
    k = hmac.new(k, v + b"\x01" + x_bytes + h1_bytes, hashlib.sha256).digest()
    v = hmac.new(k, v, hashlib.sha256).digest()

    while True:
        v = hmac.new(k, v, hashlib.sha256).digest()
        candidate = _bits_to_int(v, n)
        if 1 <= candidate < n:
            return candidate
        k = hmac.new(k, v + b"\x00", hashlib.sha256).digest()
        v = hmac.new(k, v, hashlib.sha256).digest()


def _check_digest(digest: bytes) -> None:
    if not isinstance(digest, (bytes, bytearray)) or len(digest) != 32:
        raise EcdsaError("message digest must be exactly 32 bytes")


def sign(private_key: int, digest: bytes, curve: CurveParams = CURVE) -> Signature:
    """Sign a 32-byte digest, returning a canonical low-``s`` signature.

    Nonces are deterministic (RFC 6979), so signing the same digest with
    the same key always yields the same signature.
    """
    _check_digest(digest)
    if not 1 <= private_key < curve.n:
        raise EcdsaError("private key out of range")
    z = _bits_to_int(digest, curve.n) % curve.n
    while True:
        k = _rfc6979_nonce(private_key, bytes(digest), curve)
        point = scalar_mult(k, curve.g, curve)
        assert point is not None
        r = point[0] % curve.n
        if r == 0:
            digest = hashlib.sha256(bytes(digest)).digest()  # pragma: no cover
            continue  # pragma: no cover
        s = (_inv_mod(k, curve.n) * (z + r * private_key)) % curve.n
        if s == 0:
            digest = hashlib.sha256(bytes(digest)).digest()  # pragma: no cover
            continue  # pragma: no cover
        if s > curve.n // 2:
            s = curve.n - s
        return Signature(r, s)


def verify(
    public_key: Tuple[int, int],
    digest: bytes,
    signature: Signature,
    curve: CurveParams = CURVE,
) -> bool:
    """Verify a signature over a 32-byte digest.

    Returns False (never raises) for any malformed or non-canonical
    signature, matching the drop-don't-crash semantics of Algorithm 1.
    """
    try:
        _check_digest(digest)
    except EcdsaError:
        return False
    if not is_on_curve(public_key, curve) or public_key is None:
        return False
    r, s = signature.r, signature.s
    if not (1 <= r < curve.n):
        return False
    if not signature.is_low_s(curve):
        return False
    z = _bits_to_int(digest, curve.n) % curve.n
    s_inv = _inv_mod(s, curve.n)
    u1 = (z * s_inv) % curve.n
    u2 = (r * s_inv) % curve.n
    point = point_add(
        scalar_mult(u1, curve.g, curve),
        scalar_mult(u2, public_key, curve),
        curve,
    )
    if point is None:
        return False
    return point[0] % curve.n == r


def recover_candidates(
    digest: bytes,
    signature: Signature,
    curve: CurveParams = CURVE,
) -> Tuple[Tuple[int, int], ...]:
    """Recover the candidate public keys that could have produced ``signature``.

    ECDSA public-key recovery (as used by Ethereum's ``ecrecover``).
    Returns up to two candidate keys; callers disambiguate with a
    recovery id or by comparing addresses.
    """
    _check_digest(digest)
    r, s = signature.r, signature.s
    if not (1 <= r < curve.n and 1 <= s < curve.n):
        raise EcdsaError("signature scalars out of range")
    z = _bits_to_int(digest, curve.n) % curve.n
    candidates = []
    for j in range(curve.h + 1):
        x = r + j * curve.n
        if x >= curve.p:
            continue
        # Solve y^2 = x^3 + 7 (p ≡ 3 mod 4 so sqrt is a power).
        y_sq = (pow(x, 3, curve.p) + curve.a * x + curve.b) % curve.p
        y = pow(y_sq, (curve.p + 1) // 4, curve.p)
        if (y * y) % curve.p != y_sq:
            continue
        for y_candidate in ((y, curve.p - y) if y != 0 else (y,)):
            point_r = (x, y_candidate)
            r_inv = _inv_mod(r, curve.n)
            # Q = r^-1 (s*R - z*G)
            sr = scalar_mult(s, point_r, curve)
            zg = scalar_mult(z, curve.g, curve)
            neg_zg = None if zg is None else (zg[0], (-zg[1]) % curve.p)
            q_point = scalar_mult(r_inv, point_add(sr, neg_zg, curve), curve)
            if q_point is not None and verify(q_point, digest, signature, curve):
                candidates.append(q_point)
    return tuple(candidates)
