"""Cryptographic substrate for SmartCrowd.

Implements the primitives the paper relies on (§V, §VII):

* SHA-3 hashing (``hashing``) — report and SRA identifiers are SHA-3
  digests of structured fields.
* secp256k1 ECDSA (``ecdsa``) — every IoT entity holds a long-lived
  keypair; SRAs and detection reports carry ECDSA signatures.
* Keys, addresses, and wallets (``keys``) — Ethereum-style addresses
  derived from public keys; ``W_D`` payee addresses in reports.
"""

from repro.crypto.ecdsa import (
    CURVE,
    EcdsaError,
    Signature,
    recover_candidates,
    sign,
    verify,
)
from repro.crypto.hashing import (
    hash_fields,
    hexdigest_fields,
    sha3_256,
    sha3_hex,
)
from repro.crypto.keys import (
    Address,
    KeyPair,
    PrivateKey,
    PublicKey,
    Wallet,
)

__all__ = [
    "Address",
    "CURVE",
    "EcdsaError",
    "KeyPair",
    "PrivateKey",
    "PublicKey",
    "Signature",
    "Wallet",
    "hash_fields",
    "hexdigest_fields",
    "recover_candidates",
    "sha3_256",
    "sha3_hex",
    "sign",
    "verify",
]
