"""Keys, addresses, and wallets.

Every IoT entity in SmartCrowd (provider, detector, consumer) holds a
long-lived keypair (§V-A: "every IoT entity has long-time lived public
key pk and private key sk").  Addresses are derived Ethereum-style:
the last 20 bytes of the SHA-3 hash of the uncompressed public key.
Detectors embed their wallet payee address ``W_D`` in reports so that
incentive payouts are routed automatically.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.crypto import ecdsa
from repro.crypto.ecdsa import CURVE, EcdsaError, Signature
from repro.crypto.hashing import sha3_256

__all__ = ["Address", "PrivateKey", "PublicKey", "KeyPair", "Wallet"]


@dataclass(frozen=True, order=True)
class Address:
    """A 20-byte account address (Ethereum-style)."""

    value: bytes

    def __post_init__(self) -> None:
        if len(self.value) != 20:
            raise ValueError(f"address must be 20 bytes, got {len(self.value)}")

    @classmethod
    def from_hex(cls, text: str) -> "Address":
        """Parse a ``0x``-prefixed or bare hex address."""
        return cls(bytes.fromhex(text.removeprefix("0x")))

    def hex(self) -> str:
        """Return the ``0x``-prefixed hex form."""
        return "0x" + self.value.hex()

    def __str__(self) -> str:
        return self.hex()

    def __repr__(self) -> str:
        return f"Address({self.hex()})"


@dataclass(frozen=True)
class PublicKey:
    """An affine secp256k1 public key."""

    point: Tuple[int, int]

    def __post_init__(self) -> None:
        if not ecdsa.is_on_curve(self.point):
            raise EcdsaError("public key is not on secp256k1")

    def to_bytes(self) -> bytes:
        """Uncompressed 64-byte ``x || y`` encoding (no 0x04 prefix)."""
        x, y = self.point
        return x.to_bytes(32, "big") + y.to_bytes(32, "big")

    @classmethod
    def from_bytes(cls, data: bytes) -> "PublicKey":
        """Parse the 64-byte ``x || y`` encoding."""
        if len(data) != 64:
            raise EcdsaError(f"public key must be 64 bytes, got {len(data)}")
        return cls((int.from_bytes(data[:32], "big"), int.from_bytes(data[32:], "big")))

    def address(self) -> Address:
        """Derive the account address: last 20 bytes of SHA-3(pubkey)."""
        return Address(sha3_256(self.to_bytes())[-20:])

    def verify(self, digest: bytes, signature: Signature) -> bool:
        """Verify ``signature`` over a 32-byte ``digest``."""
        return ecdsa.verify(self.point, digest, signature)


@dataclass(frozen=True)
class PrivateKey:
    """A secp256k1 private scalar.

    The repr deliberately omits the scalar so keys never leak into logs.
    """

    scalar: int = field(repr=False)

    def __post_init__(self) -> None:
        if not 1 <= self.scalar < CURVE.n:
            raise EcdsaError("private key scalar out of range")

    @classmethod
    def generate(cls, rng: Optional["_RandomLike"] = None) -> "PrivateKey":
        """Generate a fresh key.

        Uses :mod:`secrets` by default; pass a seeded ``random.Random``
        for reproducible simulations.
        """
        if rng is None:
            return cls(secrets.randbelow(CURVE.n - 1) + 1)
        return cls(rng.randrange(1, CURVE.n))

    @classmethod
    def from_seed(cls, seed: bytes) -> "PrivateKey":
        """Derive a key deterministically from a seed (test fixtures)."""
        scalar = int.from_bytes(sha3_256(b"repro-key" + seed), "big") % (CURVE.n - 1)
        return cls(scalar + 1)

    def public_key(self) -> PublicKey:
        """Compute the corresponding public key."""
        point = ecdsa.scalar_mult(self.scalar, CURVE.g)
        assert point is not None
        return PublicKey(point)

    def sign(self, digest: bytes) -> Signature:
        """Sign a 32-byte digest (RFC 6979 deterministic)."""
        return ecdsa.sign(self.scalar, digest)


class _RandomLike:
    """Protocol stand-in: anything with ``randrange`` (e.g. random.Random)."""

    def randrange(self, start: int, stop: int) -> int:  # pragma: no cover
        raise NotImplementedError


@dataclass(frozen=True)
class KeyPair:
    """A private key with its cached public key and address."""

    private: PrivateKey
    public: PublicKey
    address: Address

    @classmethod
    def generate(cls, rng: Optional[_RandomLike] = None) -> "KeyPair":
        """Generate a fresh keypair."""
        private = PrivateKey.generate(rng)
        public = private.public_key()
        return cls(private=private, public=public, address=public.address())

    @classmethod
    def from_seed(cls, seed: bytes) -> "KeyPair":
        """Deterministic keypair for tests and reproducible simulations."""
        private = PrivateKey.from_seed(seed)
        public = private.public_key()
        return cls(private=private, public=public, address=public.address())

    def sign(self, digest: bytes) -> Signature:
        """Sign with the private key."""
        return self.private.sign(digest)

    def verify(self, digest: bytes, signature: Signature) -> bool:
        """Verify with the public key."""
        return self.public.verify(digest, signature)


@dataclass(frozen=True)
class Wallet:
    """A payee wallet: a keypair plus a human label.

    ``W_D`` in the paper's report structures (Eq. 3, Eq. 5) is the payee
    address of the detector's wallet — payouts from the SmartCrowd
    contract are credited to :attr:`address`.
    """

    keys: KeyPair
    label: str = ""

    @classmethod
    def create(cls, label: str = "", seed: Optional[bytes] = None) -> "Wallet":
        """Create a wallet, deterministically if ``seed`` is given."""
        keys = KeyPair.from_seed(seed) if seed is not None else KeyPair.generate()
        return cls(keys=keys, label=label)

    @property
    def address(self) -> Address:
        """The payee address."""
        return self.keys.address

    def sign(self, digest: bytes) -> Signature:
        """Sign a digest with the wallet's key."""
        return self.keys.sign(digest)
