"""SHA-3 hashing helpers.

SmartCrowd computes identifiers as hashes of concatenated structured
fields, e.g. ``Δ_id = H(P_i || U_n || U_v || U_h || U_l || I_i)`` (Eq. 1)
and ``ID† = H(Δ || D_i || H_{R*} || W_D)`` (Eq. 3).  Naive byte
concatenation is ambiguous (``"ab" || "c" == "a" || "bc"``), so every
field is length-prefixed before hashing.  The paper's prototype uses
SHA-3 (§VII); we use the NIST SHA3-256 from :mod:`hashlib`.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Union

HashInput = Union[bytes, bytearray, str, int]

#: Size of a SHA3-256 digest in bytes.
DIGEST_SIZE = 32


def sha3_256(data: bytes) -> bytes:
    """Return the SHA3-256 digest of ``data``."""
    return hashlib.sha3_256(data).digest()


def sha3_hex(data: bytes) -> str:
    """Return the SHA3-256 digest of ``data`` as a hex string."""
    return hashlib.sha3_256(data).hexdigest()


def _encode_field(field: HashInput) -> bytes:
    """Canonically encode one field for hashing.

    Strings are UTF-8 encoded, integers are encoded as minimal
    big-endian two's-complement-free magnitudes with a sign byte, and
    bytes pass through.  A one-byte type tag keeps encodings of
    different types disjoint.
    """
    if isinstance(field, (bytes, bytearray)):
        return b"\x00" + bytes(field)
    if isinstance(field, str):
        return b"\x01" + field.encode("utf-8")
    if isinstance(field, bool):  # bool before int: bool is an int subclass
        return b"\x03" + (b"\x01" if field else b"\x00")
    if isinstance(field, int):
        sign = b"\x01" if field >= 0 else b"\xff"
        magnitude = abs(field)
        length = max(1, (magnitude.bit_length() + 7) // 8)
        return b"\x02" + sign + magnitude.to_bytes(length, "big")
    raise TypeError(f"unhashable field type: {type(field).__name__}")


def hash_fields(*fields: HashInput) -> bytes:
    """Hash a sequence of fields with unambiguous framing.

    Each field is canonically encoded and length-prefixed (4-byte
    big-endian) so that distinct field sequences can never collide by
    re-chunking.  This is the ``H(a || b || ...)`` of the paper made
    injective.
    """
    hasher = hashlib.sha3_256()
    for field in fields:
        hasher.update(field_frame(field))
    return hasher.digest()


def field_frame(field: HashInput) -> bytes:
    """The exact byte frame :func:`hash_fields` feeds for one field.

    Exposed so hot loops (PoW nonce search) can hash incrementally:
    feeding the frames of ``a, b, c`` into one SHA3-256 hasher yields
    the same digest as ``hash_fields(a, b, c)``.
    """
    encoded = _encode_field(field)
    return len(encoded).to_bytes(4, "big") + encoded


def fields_midstate(*fields: HashInput) -> "hashlib._Hash":
    """A SHA3-256 hasher pre-fed with the frames of ``fields``.

    ``copy()`` the returned hasher, feed the remaining fields' frames
    (:func:`field_frame`), and the digest equals :func:`hash_fields`
    over the full sequence — the shared prefix is hashed exactly once
    no matter how many suffixes are tried.
    """
    hasher = hashlib.sha3_256()
    for field in fields:
        hasher.update(field_frame(field))
    return hasher


def hexdigest_fields(*fields: HashInput) -> str:
    """Like :func:`hash_fields` but returns a hex string."""
    return hash_fields(*fields).hex()


def merkle_pair_hash(left: bytes, right: bytes) -> bytes:
    """Hash an interior Merkle node from its two children."""
    return sha3_256(b"\x01" + left + right)


def merkle_leaf_hash(payload: bytes) -> bytes:
    """Hash a Merkle leaf.

    Leaves and interior nodes use distinct domain-separation prefixes to
    prevent second-preimage attacks where an interior node is reinterpreted
    as a leaf.
    """
    return sha3_256(b"\x00" + payload)


def iter_hash(chunks: Iterable[bytes]) -> bytes:
    """Hash an iterable of byte chunks as a single stream."""
    hasher = hashlib.sha3_256()
    for chunk in chunks:
        hasher.update(chunk)
    return hasher.digest()
