"""Pooled SHA3-256 hashing for per-block batch work.

The chain's hot paths hash in bulk — every record becomes a Merkle
leaf, every tree level hashes pairs, and the PoW miner hashes one
candidate header per nonce.  Doing each digest through the generic
helpers pays Python call overhead per hash; this module batches the
loops into tight local-variable forms and precomputes the per-attempt
byte tails for nonce search so each PoW attempt is a midstate copy plus
a *single* ``update``.

All digests are byte-identical to the generic helpers
(:func:`repro.crypto.hashing.merkle_leaf_hash` /
:func:`~repro.crypto.hashing.merkle_pair_hash` /
:func:`~repro.crypto.hashing.hash_fields`); only the dispatch overhead
changes.
"""

from __future__ import annotations

import hashlib
import struct
from typing import List, Optional, Sequence, Tuple

__all__ = [
    "int_field_frame",
    "int_frame_parts",
    "leaf_hashes",
    "pair_hashes",
    "search_nonce",
]


def int_frame_parts(value: int) -> Tuple[int, bytes]:
    """Sign byte and minimal big-endian magnitude of ``value``.

    Mirrors the integer branch of the canonical field codec
    (:func:`repro.crypto.hashing._encode_field`): sign ``0x01`` for
    non-negative, ``0xff`` for negative, magnitude in the fewest bytes
    (at least one, so zero encodes as ``0x00``).
    """
    sign = 0x01 if value >= 0 else 0xFF
    magnitude = abs(value)
    return sign, magnitude.to_bytes(max(1, (magnitude.bit_length() + 7) // 8), "big")


def int_field_frame(value: int) -> bytes:
    """``field_frame(value)`` for an int, without the generic dispatch.

    4-byte length prefix, tag ``0x02``, sign byte, minimal magnitude —
    byte-identical to :func:`repro.crypto.hashing.field_frame`.
    """
    sign, magnitude = int_frame_parts(value)
    return struct.pack(
        ">IBB%ds" % len(magnitude), len(magnitude) + 2, 0x02, sign, magnitude
    )


def leaf_hashes(payloads: Sequence[bytes]) -> List[bytes]:
    """Merkle leaf hashes for a whole record batch.

    Equals ``[merkle_leaf_hash(p) for p in payloads]`` — the ``0x00``
    leaf domain prefix — with the constructor bound once for the batch.
    """
    sha3 = hashlib.sha3_256
    return [sha3(b"\x00" + payload).digest() for payload in payloads]


def pair_hashes(nodes: Sequence[bytes]) -> List[bytes]:
    """One Merkle level: hash consecutive pairs of ``nodes``.

    ``nodes`` must have even length (the tree duplicates the odd tail
    before calling).  Equals ``[merkle_pair_hash(nodes[i], nodes[i+1])
    for even i]`` — the ``0x01`` interior domain prefix.
    """
    sha3 = hashlib.sha3_256
    return [
        sha3(b"\x01" + nodes[i] + nodes[i + 1]).digest()
        for i in range(0, len(nodes), 2)
    ]


def _nonce_tails(start: int, stop: int, suffix: bytes) -> List[bytes]:
    """Per-attempt tail bytes (nonce frame + suffix) for ``[start, stop)``.

    Non-negative runs share the frame prefix (length, tag, sign) within
    each magnitude width, so it is packed once per width and only the
    big-endian nonce bytes vary — byte-identical to
    ``int_field_frame(n) + suffix`` at a fraction of the cost.  Negative
    starts fall back to the generic frame.
    """
    if start < 0:
        frame = int_field_frame
        return [frame(n) + suffix for n in range(start, stop)]
    tails: List[bytes] = []
    nonce = start
    while nonce < stop:
        width = max(1, (nonce.bit_length() + 7) // 8)
        bound = min(stop, 1 << (8 * width))
        prefix = struct.pack(">IBB", width + 2, 0x02, 0x01)
        tails.extend(
            prefix + n.to_bytes(width, "big") + suffix
            for n in range(nonce, bound)
        )
        nonce = bound
    return tails


def search_nonce(
    midstate: "hashlib._Hash",
    suffix: bytes,
    target: int,
    start_nonce: int,
    max_attempts: int,
    chunk_size: int = 1024,
) -> Optional[Tuple[int, bytes]]:
    """Find the first nonce whose header digest is below ``target``.

    ``midstate`` is a SHA3-256 hasher pre-fed with the header frames
    before the nonce (:func:`repro.crypto.hashing.fields_midstate`);
    ``suffix`` is the constant frame bytes after it.  For each chunk of
    ``chunk_size`` nonces the per-attempt tails (nonce frame + suffix)
    are precomputed (:func:`_nonce_tails`), so the search loop is
    exactly one midstate copy and one ``update`` per attempt — no
    per-nonce frame assembly or double update.  The digest test
    compares 32-byte big-endian strings, which orders exactly like the
    integers they encode.  Returns ``(nonce, digest)`` for the first
    hit, or ``None`` after ``max_attempts``; digests equal
    ``hash_fields`` over the full header field sequence, so winners
    match the naive search exactly.
    """
    if max_attempts <= 0 or target <= 0:
        return None
    copy = midstate.copy
    if target >= 1 << 256:
        # Every 32-byte digest is below the target: first nonce wins.
        hasher = copy()
        hasher.update(int_field_frame(start_nonce) + suffix)
        return start_nonce, hasher.digest()
    target_bytes = target.to_bytes(32, "big")
    end = start_nonce + max_attempts
    nonce = start_nonce
    while nonce < end:
        stop = min(nonce + chunk_size, end)
        tails = _nonce_tails(nonce, stop, suffix)
        for offset, tail in enumerate(tails):
            hasher = copy()
            hasher.update(tail)
            digest = hasher.digest()
            if digest < target_bytes:
                return nonce + offset, digest
        nonce = stop
    return None
