"""Theoretical analysis of §VI-B: capability, balances, and VPB."""

from repro.analysis.balance import (
    detector_balance_ether,
    provider_balance_ether,
    provider_incentive_rate_ether,
    provider_punishment_ether,
)
from repro.analysis.capability import (
    coverage_probability,
    race_rhos,
    total_detection_capability,
)
from repro.analysis.participation import (
    ParticipationOutcome,
    equilibrium_fleet_size,
    expected_epoch_balance,
    simulate_participation,
)
from repro.analysis.vpb import vpb_closed_form, vpb_numeric

__all__ = [
    "ParticipationOutcome",
    "coverage_probability",
    "detector_balance_ether",
    "equilibrium_fleet_size",
    "expected_epoch_balance",
    "provider_balance_ether",
    "provider_incentive_rate_ether",
    "provider_punishment_ether",
    "race_rhos",
    "simulate_participation",
    "total_detection_capability",
    "vpb_closed_form",
    "vpb_numeric",
]
