"""Total detection capability — Eq. 11 and its limit behaviour.

DC_T = Σ_i DC_i · ρ_i, where DC_i is detector *i*'s probability of
identifying a vulnerability and ρ_i the probability its result is the
one recorded.  §VI-B's qualitative claim — "an increased m will
introduce a larger DC_T approaching to 1" — is made precise here under
the reproduction's race model, where for a flaw every racer can find,
ρ_i is the probability detector *i* wins the first-commit race among
the detectors that found it.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.detection.detector import DetectionCapability

__all__ = [
    "total_detection_capability",
    "race_rhos",
    "coverage_probability",
]


def total_detection_capability(
    capabilities: Sequence[float], rhos: Sequence[float]
) -> float:
    """Eq. 11: DC_T = Σ DC_i · ρ_i.

    Following the paper's gloss — "DC_i·ρ_i denote the probability that
    D_i can discover a vulnerability that would be finally recorded" —
    ρ_i is the *conditional* probability a discovery is recorded, so
    the products DC_i·ρ_i (not the ρ's themselves) are the exclusive
    per-vulnerability win probabilities; "up to one detection result
    can be confirmed for one vulnerability" becomes Σ DC_i·ρ_i ≤ 1,
    which is validated here.
    """
    if len(capabilities) != len(rhos):
        raise ValueError("capabilities and rhos must align")
    for value in capabilities:
        if not 0.0 <= value <= 1.0:
            raise ValueError("DC_i must be in [0, 1]")
    for value in rhos:
        if not 0.0 <= value <= 1.0:
            raise ValueError("rho_i must be in [0, 1]")
    total = sum(dc * rho for dc, rho in zip(capabilities, rhos))
    if total > 1.0 + 1e-9:
        raise ValueError(
            "Σ DC_i·rho_i cannot exceed 1 (one confirmed result per vulnerability)"
        )
    return total


def race_rhos(fleet: Sequence[DetectionCapability]) -> List[float]:
    """ρ_i under the exponential first-commit race.

    ρ_i is the probability detector *i*'s discovery is the one finally
    recorded, *conditioned on i discovering the flaw* (the paper's
    reading of Eq. 11 — DC_i·ρ_i is the unconditional win probability).
    Among the detectors that found the flaw, the winner is drawn
    proportionally to race rate; this exact computation enumerates
    which subset of the *other* detectors also found it (2^(m-1) terms
    per detector, fleets up to m = 16).
    """
    m = len(fleet)
    if m == 0:
        return []
    if m > 16:
        raise ValueError("exact subset enumeration supports up to 16 detectors")
    detection = [c.detection_probability for c in fleet]
    rates = [c.rate for c in fleet]
    rhos = [0.0] * m
    for i in range(m):
        others = [j for j in range(m) if j != i]
        conditional = 0.0
        for mask in range(1 << len(others)):
            probability = 1.0
            subset_rate = rates[i]
            for bit, j in enumerate(others):
                if mask & (1 << bit):
                    probability *= detection[j]
                    subset_rate += rates[j]
                else:
                    probability *= 1.0 - detection[j]
            if probability == 0.0:
                continue
            conditional += probability * rates[i] / subset_rate
        rhos[i] = conditional
    return rhos


def coverage_probability(capabilities: Sequence[float]) -> float:
    """Probability at least one detector finds a given flaw.

    Equals DC_T under the race model: Σ DC_i·ρ_i with the conditional
    race ρ's telescopes to 1 - Π(1 - DC_i) — exactly the chance the
    flaw is found at all, which approaches 1 as m grows (§VI-B).
    """
    missed = 1.0
    for value in capabilities:
        if not 0.0 <= value <= 1.0:
            raise ValueError("DC_i must be in [0, 1]")
        missed *= 1.0 - value
    return 1.0 - missed
