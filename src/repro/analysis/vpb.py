"""The VP baseline (VPB) — the break-even vulnerability proportion.

§VII-A: "we define the VP baseline (VPB) that enables an IoT provider
achieve a balance of payments (i.e., the incentives are equal to the
punishments)."  Releasing at VP above VPB is financially lossy, below
it profitable — the economic force that pushes providers toward secure
releases (Fig. 5).
"""

from __future__ import annotations

from typing import Optional

from scipy.optimize import brentq

from repro.analysis.balance import provider_balance_ether
from repro.core.incentives import IncentiveParameters
from repro.units import from_wei

__all__ = ["vpb_closed_form", "vpb_numeric"]


def vpb_closed_form(
    params: IncentiveParameters,
    zeta_i: float,
    insurance_ether: float,
    window: float,
    releases: float = 1.0,
    omega_per_block: float = 0.0,
) -> float:
    """Solve incentives == punishments for VP analytically.

    Balance is linear in VP:  income − releases·(VP·I + cp) = 0, so

        VPB = (income/releases − cp) / I

    clamped to [0, 1].  A provider whose income cannot even cover the
    deployment gas has VPB 0 (it loses money even on clean releases).
    """
    if insurance_ether <= 0:
        raise ValueError("insurance must be positive")
    if releases <= 0:
        raise ValueError("releases must be positive")
    blocks = window / params.block_time
    nu = from_wei(params.block_reward_wei)
    psi = from_wei(params.report_fee_wei)
    cp = from_wei(params.deployment_cost_wei)
    income = zeta_i * blocks * (nu + psi * omega_per_block)
    vpb = (income / releases - cp) / insurance_ether
    return max(0.0, min(1.0, vpb))


def vpb_numeric(
    params: IncentiveParameters,
    zeta_i: float,
    insurance_ether: float,
    window: float,
    releases: float = 1.0,
    omega_per_block: float = 0.0,
) -> Optional[float]:
    """Root-find VPB from the balance function directly.

    Cross-checks :func:`vpb_closed_form`; returns None when no root
    exists in (0, 1) (balance has the same sign everywhere).
    """

    def balance(vp: float) -> float:
        return provider_balance_ether(
            params,
            zeta_i=zeta_i,
            vulnerability_proportion=vp,
            insurance_ether=insurance_ether,
            window=window,
            releases=releases,
            omega_per_block=omega_per_block,
        )

    low, high = balance(0.0), balance(1.0)
    if low == 0.0:
        return 0.0
    if high == 0.0:
        return 1.0
    if low * high > 0:
        return None
    return float(brentq(balance, 0.0, 1.0, xtol=1e-12))
