"""Detector participation dynamics — do the incentives actually recruit?

The paper's thesis is that automated bounties "attract different
detectors to participate" (§I) and that more detectors push DC_T → 1
(§VI-B).  This module closes the loop the paper leaves qualitative:
each epoch, candidate detectors *choose* to participate iff their
expected balance (Eq. 13 with the race-model ρ's) is positive given who
else is playing, and incumbents leave when crowding turns their balance
negative.  The fixed point is the market-equilibrium fleet size — how
many detectors a given bounty level μ and flaw rate N can sustain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.analysis.capability import coverage_probability, race_rhos
from repro.core.incentives import IncentiveParameters
from repro.detection.detector import DetectionCapability
from repro.units import from_wei

__all__ = [
    "expected_epoch_balance",
    "ParticipationOutcome",
    "simulate_participation",
    "equilibrium_fleet_size",
]


#: Default per-release operating cost of running a detection pipeline,
#: ether.  §I motivates incentives precisely because "security detection
#: typically incurs non-trivial overhead" — compute, engineers, scanner
#: licences — which gas fees alone do not capture.  50 ETH per release
#: window ≈ 20% of one bounty.
DEFAULT_OPERATING_COST_ETHER = 50.0


def _member_rho(fleet: Sequence[DetectionCapability], member_index: int) -> float:
    """Race ρ for one member.

    Homogeneous fleets use the exact symmetric closed form
    (Σ DC·ρ = coverage with exchangeable members ⇒ ρ = coverage/(m·DC))
    at any size; heterogeneous fleets fall back to the exact subset
    enumeration, which supports up to 16 members.
    """
    first = fleet[0]
    if all(capability == first for capability in fleet):
        dc = first.detection_probability
        cover = coverage_probability([dc] * len(fleet))
        return cover / (len(fleet) * dc)
    if len(fleet) > 16:
        raise ValueError("fleets over 16 members must be homogeneous")
    return race_rhos(fleet)[member_index]


def expected_epoch_balance(
    params: IncentiveParameters,
    fleet: Sequence[DetectionCapability],
    member_index: int,
    mean_vulnerabilities: float,
    releases_per_epoch: float = 1.0,
    operating_cost_ether: float = DEFAULT_OPERATING_COST_ETHER,
) -> float:
    """Expected ether for one detector over an epoch, given the fleet.

    Eq. 13 instantiated with the exact race ρ's, minus the fixed
    operating cost of running a detection pipeline per release: the
    detector finds N·DC_i flaws (paying submission gas for each) and
    wins N·DC_i·ρ_i bounties.
    """
    capability = fleet[member_index]
    rho = _member_rho(fleet, member_index)
    mu = from_wei(params.bounty_wei)
    psi = from_wei(params.report_fee_wei)
    submission = from_wei(params.submission_cost_wei)
    found = mean_vulnerabilities * capability.detection_probability
    won = found * rho
    per_release = won * (mu - psi) - found * submission - operating_cost_ether
    return per_release * releases_per_epoch


@dataclass
class ParticipationOutcome:
    """Trajectory and fixed point of the entry/exit dynamic."""

    fleet_sizes: List[int]
    final_balances: List[float]
    coverage_trajectory: List[float]

    @property
    def equilibrium_size(self) -> int:
        return self.fleet_sizes[-1]

    @property
    def final_coverage(self) -> float:
        return self.coverage_trajectory[-1] if self.coverage_trajectory else 0.0


def simulate_participation(
    params: IncentiveParameters,
    candidate_pool: int = 40,
    mean_vulnerabilities: float = 3.0,
    threads: int = 4,
    per_thread_hit: float = 0.6,
    epochs: int = 60,
    initial_fleet: int = 1,
    operating_cost_ether: float = DEFAULT_OPERATING_COST_ETHER,
) -> ParticipationOutcome:
    """Run the entry/exit dynamic to its fixed point.

    All candidates are identical (threads/per-thread hit), so the
    decision reduces to the marginal member's balance: one candidate
    enters per epoch while the *entrant's* expected balance would be
    positive; the weakest-positioned incumbent leaves when its balance
    is negative.  With identical members the process is monotone and
    converges.
    """
    if initial_fleet < 1:
        raise ValueError("at least one incumbent is required")
    capability = DetectionCapability(threads=threads, per_thread_hit=per_thread_hit)
    size = min(initial_fleet, candidate_pool)
    sizes = [size]
    coverage: List[float] = [
        coverage_probability([capability.detection_probability] * size)
    ]
    for _ in range(epochs):
        # Balance if one more joins (the entrant's own view).
        if size < candidate_pool:
            would_be = [capability] * (size + 1)
            entrant_balance = expected_epoch_balance(
                params, would_be, size, mean_vulnerabilities,
                operating_cost_ether=operating_cost_ether,
            )
            if entrant_balance > 0:
                size += 1
                sizes.append(size)
                coverage.append(
                    coverage_probability([capability.detection_probability] * size)
                )
                continue
        # Incumbent exit check.
        if size > 1:
            current = [capability] * size
            incumbent_balance = expected_epoch_balance(
                params, current, 0, mean_vulnerabilities,
                operating_cost_ether=operating_cost_ether,
            )
            if incumbent_balance < 0:
                size -= 1
                sizes.append(size)
                coverage.append(
                    coverage_probability([capability.detection_probability] * size)
                )
                continue
        sizes.append(size)
        coverage.append(coverage[-1])
    final_fleet = [capability] * size
    balances = [
        expected_epoch_balance(
            params, final_fleet, index, mean_vulnerabilities,
            operating_cost_ether=operating_cost_ether,
        )
        for index in range(size)
    ]
    return ParticipationOutcome(
        fleet_sizes=sizes, final_balances=balances, coverage_trajectory=coverage
    )


def equilibrium_fleet_size(
    params: IncentiveParameters,
    mean_vulnerabilities: float = 3.0,
    threads: int = 4,
    per_thread_hit: float = 0.6,
    max_size: int = 200,
    operating_cost_ether: float = DEFAULT_OPERATING_COST_ETHER,
) -> int:
    """The largest fleet in which every member still breaks even.

    Direct search over sizes (all members identical): the marginal
    member's balance is decreasing in fleet size, so this is the
    entry/exit fixed point computed without iterating the dynamic.
    """
    capability = DetectionCapability(threads=threads, per_thread_hit=per_thread_hit)
    best = 1
    for size in range(1, max_size + 1):
        balance = expected_epoch_balance(
            params, [capability] * size, 0, mean_vulnerabilities,
            operating_cost_ether=operating_cost_ether,
        )
        if balance >= 0:
            best = size
        else:
            break
    return best
