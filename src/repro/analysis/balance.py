"""Closed-form balances — Eq. 12, 13, 14 of §VI-B.

Expected-value formulas for detector and provider balances over a time
window; the experiment harness cross-checks these against simulated
outcomes (the property ``closed form ≈ simulation mean`` is tested in
``tests/analysis``).

All results are floats in ether (these are expectations, not ledger
entries — the ledger itself stays integer wei).
"""

from __future__ import annotations


from repro.core.incentives import IncentiveParameters
from repro.units import from_wei

__all__ = [
    "detector_balance_ether",
    "provider_balance_ether",
    "provider_incentive_rate_ether",
    "provider_punishment_ether",
]


def detector_balance_ether(
    params: IncentiveParameters,
    mean_vulnerabilities: float,
    xi_i: float,
    rho_i: float,
    window: float,
) -> float:
    """Eq. 13: bd_i = N·ξ_i·t·[ρ_i·(μ−ψ) − c] / θ.

    ``mean_vulnerabilities`` — N, average flaws detected per SRA;
    ``xi_i`` — the detector's capability proportion; ``rho_i`` — the
    proportion of its findings finally recorded; ``window`` — t.
    """
    if window < 0:
        raise ValueError("window cannot be negative")
    mu = from_wei(params.bounty_wei)
    psi = from_wei(params.report_fee_wei)
    c = from_wei(params.submission_cost_wei)
    return (
        mean_vulnerabilities
        * xi_i
        * window
        * (rho_i * (mu - psi) - c)
        / params.sra_period
    )


def provider_incentive_rate_ether(
    params: IncentiveParameters,
    zeta_i: float,
    omega_per_block: float,
    window: float,
) -> float:
    """Expected Eq. 8 income over a window: ζ_i·(t/ϑ)·(ν + ψ·ω̄).

    The provider wins ζ_i of the t/ϑ blocks; each won block carries the
    reward ν plus fees for its ω̄ records.
    """
    blocks = window / params.block_time
    nu = from_wei(params.block_reward_wei)
    psi = from_wei(params.report_fee_wei)
    return zeta_i * blocks * (nu + psi * omega_per_block)


def provider_punishment_ether(
    params: IncentiveParameters,
    vulnerability_proportion: float,
    insurance_ether: float,
    releases: float,
) -> float:
    """Expected punishment: VP·I per release forfeited, plus deploy gas.

    This is the operational form of Eq. 9 under the forfeiture
    semantics (the whole insurance is lost when any flaw is confirmed,
    Fig. 4(b)); μ·Σn_j·ρ_j is how the forfeited value is distributed,
    not an extra charge.
    """
    if not 0.0 <= vulnerability_proportion <= 1.0:
        raise ValueError("VP must be in [0, 1]")
    cp = from_wei(params.deployment_cost_wei)
    return releases * (vulnerability_proportion * insurance_ether + cp)


def provider_balance_ether(
    params: IncentiveParameters,
    zeta_i: float,
    vulnerability_proportion: float,
    insurance_ether: float,
    window: float,
    releases: float = 1.0,
    omega_per_block: float = 0.0,
) -> float:
    """Eq. 14 (operational form): incentives minus punishments over t.

    ``releases`` — how many SRAs the provider makes in the window (the
    Fig. 5 experiments use exactly one per 10-minute window).
    """
    income = provider_incentive_rate_ether(params, zeta_i, omega_per_block, window)
    punishment = provider_punishment_ether(
        params, vulnerability_proportion, insurance_ether, releases
    )
    return income - punishment
