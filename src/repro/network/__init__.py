"""P2P network substrate: discrete-event simulation and gossip overlay.

Replaces the prototype's physical LAN with a reproducible simulator:
SRAs, reports, and blocks are relayed over a configurable topology
(full flooding or inv-pull — see :class:`NetworkConfig`) with sampled
link latency, optional loss, and partition injection.
"""

from repro.network.config import NetworkConfig
from repro.network.gossip import GossipNetwork, SeenLRU, build_topology
from repro.network.latency import (
    ConstantLatency,
    DEFAULT_LATENCY,
    LatencyModel,
    LogNormalLatency,
    UniformLatency,
)
from repro.network.messages import Message, MessageKind
from repro.network.node import Node
from repro.network.simulator import ScheduledEvent, Simulator

__all__ = [
    "ConstantLatency",
    "DEFAULT_LATENCY",
    "GossipNetwork",
    "LatencyModel",
    "LogNormalLatency",
    "Message",
    "MessageKind",
    "NetworkConfig",
    "Node",
    "ScheduledEvent",
    "SeenLRU",
    "Simulator",
    "UniformLatency",
    "build_topology",
]
