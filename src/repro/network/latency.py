"""Link latency models for the P2P simulation.

The economics experiments are latency-insensitive (minutes-scale
windows vs millisecond links), but propagation latency matters for the
two-phase report race (§V-B: who commits first) and for fork formation,
so several models are provided.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Protocol

__all__ = [
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "LogNormalLatency",
    "DEFAULT_LATENCY",
]


class LatencyModel(Protocol):
    """Samples one-way message delay between two named nodes."""

    def sample(self, src: str, dst: str, rng: random.Random) -> float:
        """Return the delay in seconds for one message src -> dst."""
        ...  # pragma: no cover


@dataclass(frozen=True)
class ConstantLatency:
    """Every link has the same fixed delay."""

    delay: float = 0.05

    def sample(self, src: str, dst: str, rng: random.Random) -> float:
        return self.delay


@dataclass(frozen=True)
class UniformLatency:
    """Delay uniform in [low, high] — a simple jittery LAN."""

    low: float = 0.01
    high: float = 0.2

    def sample(self, src: str, dst: str, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)


@dataclass(frozen=True)
class LogNormalLatency:
    """Heavy-tailed internet-like latency.

    Median delay ``median``; sigma controls tail weight.  Real overlay
    measurements (e.g. Bitcoin propagation studies) are approximately
    log-normal.
    """

    median: float = 0.08
    sigma: float = 0.6

    def sample(self, src: str, dst: str, rng: random.Random) -> float:
        import math

        return self.median * math.exp(rng.gauss(0.0, self.sigma))


#: Sensible default for experiments.
DEFAULT_LATENCY = UniformLatency()
