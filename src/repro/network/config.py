"""One config object for the overlay's topology and relay knobs.

Large fleets need the network surface to be *configurable in one
place*: the topology family and target degree, the relay fan-out, the
gossip mode (full-payload flooding vs inventory announce + pull), and
the memory bound on per-node dedup state.  :class:`NetworkConfig`
carries all of them, replacing the loose constructor kwargs previously
scattered across :class:`~repro.network.gossip.GossipNetwork` and its
callers, and travels alongside
:class:`~repro.core.platform.PlatformConfig` in experiment setups.

The paper's 5-provider LAN is the default (``complete`` topology,
flooding); the 1000-node ``fleet_scale`` scenario uses
``NetworkConfig.large_fleet()`` — a ring with random chords, bounded
fan-out, and ``inv``/``getdata``-style pull gossip, the Bitcoin-shaped
relay that keeps messages-per-broadcast O(N·k) instead of O(N²).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["NetworkConfig"]

#: Gossip modes: ``flood`` pushes full payloads to relay targets;
#: ``inv`` announces a content digest and lets peers pull the payload.
_MODES = ("flood", "inv")


@dataclass(frozen=True)
class NetworkConfig:
    """Topology + relay knobs of a gossip overlay (flood defaults).

    ``topology``/``degree`` feed
    :func:`~repro.network.gossip.build_topology`; ``fanout`` bounds how
    many (sampled) neighbors a node relays to (``None`` = all of them);
    ``mode`` selects full-payload flooding or inventory announce +
    pull; ``seen_capacity`` bounds each node's seen-digest memory to an
    LRU of that many recent keys (``None`` = unbounded, the small-fleet
    default); ``loss_rate`` is the per-transmission loss probability.
    """

    topology: str = "complete"
    degree: int = 4
    fanout: Optional[int] = None
    mode: str = "flood"
    seen_capacity: Optional[int] = None
    loss_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(f"unknown gossip mode {self.mode!r} (use {_MODES})")
        if self.degree < 1:
            raise ValueError("degree must be >= 1")
        if self.fanout is not None and self.fanout < 1:
            raise ValueError("fanout must be >= 1 (or None for all neighbors)")
        if self.seen_capacity is not None and self.seen_capacity < 1:
            raise ValueError("seen_capacity must be >= 1 (or None for unbounded)")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss rate must be in [0, 1)")

    @classmethod
    def large_fleet(
        cls,
        degree: int = 8,
        fanout: int = 4,
        seen_capacity: int = 4096,
        loss_rate: float = 0.0,
    ) -> "NetworkConfig":
        """The 1000-node preset: ring+random topology, inv-pull relay."""
        return cls(
            topology="ring_random",
            degree=degree,
            fanout=fanout,
            mode="inv",
            seen_capacity=seen_capacity,
            loss_rate=loss_rate,
        )
