"""Message envelopes for the P2P layer.

Every payload travelling the SmartCrowd overlay — SRAs, initial and
detailed reports, freshly mined blocks — is wrapped in a
:class:`Message` with a content-derived id so gossip deduplication is
exact.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.crypto.hashing import hash_fields

__all__ = ["MessageKind", "Message"]

_uid = itertools.count()


class MessageKind(enum.Enum):
    """Overlay message types (Phases #1-#3 of §IV-B)."""

    SRA_ANNOUNCE = "sra_announce"
    INITIAL_REPORT = "initial_report"
    DETAILED_REPORT = "detailed_report"
    BLOCK_ANNOUNCE = "block_announce"
    CONSUMER_QUERY = "consumer_query"
    CONSUMER_RESPONSE = "consumer_response"
    CONTROL = "control"


@dataclass(frozen=True)
class Message:
    """A gossiped message.

    ``dedup_key`` identifies the *content* (e.g. a report id), so a
    relayed copy is recognized as already-seen regardless of path;
    ``uid`` identifies this particular envelope.
    """

    kind: MessageKind
    payload: Any
    origin: str
    dedup_key: bytes
    uid: int = field(default_factory=lambda: next(_uid))

    @classmethod
    def wrap(
        cls, kind: MessageKind, payload: Any, origin: str, salt: "int | None" = None
    ) -> "Message":
        """Wrap a payload, deriving a dedup key from its identity.

        Payloads exposing ``record_id``/``report_id``/``sra_id`` use
        that as content identity; everything else hashes origin+uid
        (i.e. never deduplicated against other messages).

        ``salt`` marks a *retransmission*: the dedup key is re-derived
        from (content id, salt) so the retry floods past nodes that
        already relayed the original, while receivers recognize the
        payload itself by its content id and stay idempotent.
        """
        for attribute in ("record_id", "report_id", "sra_id", "block_id"):
            key = getattr(payload, attribute, None)
            if isinstance(key, bytes):
                if salt is not None:
                    key = hash_fields(b"retransmit", key, salt)
                return cls(kind=kind, payload=payload, origin=origin, dedup_key=key)
        unique = next(_uid)
        return cls(
            kind=kind,
            payload=payload,
            origin=origin,
            dedup_key=hash_fields(kind.value, origin, unique),
            uid=unique,
        )
