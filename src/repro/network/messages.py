"""Message envelopes for the P2P layer.

Every payload travelling the SmartCrowd overlay — SRAs, initial and
detailed reports, freshly mined blocks — is wrapped in a
:class:`Message` with a content-derived id so gossip deduplication is
exact.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.crypto.hashing import hash_fields

__all__ = [
    "CONTROL_WIRE_BYTES",
    "Message",
    "MessageKind",
    "wire_size",
]

_uid = itertools.count()

#: Wire size of a control frame (``inv``/``getdata``): one kind byte, a
#: 32-byte content digest, and a small framing overhead — the Bitcoin
#: inv-vector ballpark.  Used by the gossip layer's bytes-on-wire
#: accounting.
CONTROL_WIRE_BYTES = 37

#: Serialized size of a block header: the seven Fig. 2 fields
#: (two 32-byte hashes, four 8-byte integers, a 20-byte miner address)
#: plus framing — the "80-ish bytes" a light client stores, framed.
HEADER_WIRE_BYTES = 120


def wire_size(message: "Message") -> int:
    """Estimated bytes this message occupies on a link.

    Blocks count their header plus record encodings; bare headers count
    :data:`HEADER_WIRE_BYTES`; payloads exposing a byte encoding
    (``to_bytes``/``to_payload``) are measured exactly; raw ``bytes``
    by length; anything else falls back to its ``repr`` length.  The
    envelope adds the control-frame overhead (kind + dedup key +
    framing).

    The result is memoized on the envelope (one measurement per
    message, however many links carry it).
    """
    cached = getattr(message, "_wire_size", None)
    if cached is not None:
        return cached
    payload = message.payload
    body: int
    records = getattr(payload, "records", None)
    if records is not None and hasattr(payload, "header"):
        # A full block: header + record bodies (duck-typed so the
        # network layer stays import-independent of repro.chain).
        body = HEADER_WIRE_BYTES + sum(len(r.to_bytes()) for r in records)
    elif hasattr(payload, "header_hash") and hasattr(payload, "merkle_root"):
        body = HEADER_WIRE_BYTES
    elif isinstance(payload, (bytes, bytearray)):
        body = len(payload)
    else:
        encoder = getattr(payload, "to_bytes", None) or getattr(
            payload, "to_payload", None
        )
        if encoder is not None:
            try:
                body = len(encoder())
            except TypeError:
                body = len(repr(payload))
        else:
            body = len(repr(payload))
    total = CONTROL_WIRE_BYTES + body
    object.__setattr__(message, "_wire_size", total)  # frozen-safe memo
    return total


class MessageKind(enum.Enum):
    """Overlay message types (Phases #1-#3 of §IV-B)."""

    SRA_ANNOUNCE = "sra_announce"
    INITIAL_REPORT = "initial_report"
    DETAILED_REPORT = "detailed_report"
    BLOCK_ANNOUNCE = "block_announce"
    CONSUMER_QUERY = "consumer_query"
    CONSUMER_RESPONSE = "consumer_response"
    CONTROL = "control"


@dataclass(frozen=True)
class Message:
    """A gossiped message.

    ``dedup_key`` identifies the *content* (e.g. a report id), so a
    relayed copy is recognized as already-seen regardless of path;
    ``uid`` identifies this particular envelope.
    """

    kind: MessageKind
    payload: Any
    origin: str
    dedup_key: bytes
    uid: int = field(default_factory=lambda: next(_uid))

    @classmethod
    def wrap(
        cls, kind: MessageKind, payload: Any, origin: str, salt: "int | None" = None
    ) -> "Message":
        """Wrap a payload, deriving a dedup key from its identity.

        Payloads exposing ``record_id``/``report_id``/``sra_id`` use
        that as content identity; everything else hashes origin+uid
        (i.e. never deduplicated against other messages).

        ``salt`` marks a *retransmission*: the dedup key is re-derived
        from (content id, salt) so the retry floods past nodes that
        already relayed the original, while receivers recognize the
        payload itself by its content id and stay idempotent.
        """
        for attribute in ("record_id", "report_id", "sra_id", "block_id"):
            key = getattr(payload, attribute, None)
            if isinstance(key, bytes):
                if salt is not None:
                    key = hash_fields(b"retransmit", key, salt)
                return cls(kind=kind, payload=payload, origin=origin, dedup_key=key)
        unique = next(_uid)
        return cls(
            kind=kind,
            payload=payload,
            origin=origin,
            dedup_key=hash_fields(kind.value, origin, unique),
            uid=unique,
        )

    def with_payload(self, payload: Any) -> "Message":
        """A copy of this envelope carrying a different payload.

        Keeps the kind, origin, and — crucially — the dedup key, so a
        reduced form (e.g. a header-only block announcement served to a
        light node) deduplicates against the full form.
        """
        return Message(
            kind=self.kind,
            payload=payload,
            origin=self.origin,
            dedup_key=self.dedup_key,
            uid=self.uid,
        )
