"""Network nodes: the common base for providers, detectors, consumers.

A node owns a handler table keyed by :class:`MessageKind`; the gossip
layer calls :meth:`deliver` when a message arrives.  Subclasses in
:mod:`repro.core` implement the stakeholder behaviours of §IV-A.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.crypto.keys import KeyPair
from repro.network.messages import Message, MessageKind

__all__ = ["Node", "MessageHandler"]

MessageHandler = Callable[["Node", Message], None]


class Node:
    """A named overlay participant with a keypair and message handlers."""

    def __init__(self, name: str, keys: Optional[KeyPair] = None) -> None:
        self.name = name
        self.keys = keys if keys is not None else KeyPair.from_seed(name.encode())
        self._handlers: Dict[MessageKind, List[MessageHandler]] = {}
        self.network: Optional["GossipNetworkApi"] = None
        self.delivered_count = 0

    @property
    def address(self):
        """The node's account address."""
        return self.keys.address

    def on(self, kind: MessageKind, handler: MessageHandler) -> None:
        """Register a handler for a message kind (multiple allowed)."""
        self._handlers.setdefault(kind, []).append(handler)

    def deliver(self, message: Message) -> None:
        """Called by the gossip layer when a message reaches this node."""
        self.delivered_count += 1
        for handler in self._handlers.get(message.kind, []):
            handler(self, message)

    def broadcast(self, kind: MessageKind, payload) -> Message:
        """Gossip a payload to the whole overlay."""
        if self.network is None:
            raise RuntimeError(f"node {self.name} is not attached to a network")
        message = Message.wrap(kind, payload, origin=self.name)
        self.network.broadcast(self.name, message)
        return message

    def send(self, destination: str, kind: MessageKind, payload) -> Message:
        """Send a payload point-to-point."""
        if self.network is None:
            raise RuntimeError(f"node {self.name} is not attached to a network")
        message = Message.wrap(kind, payload, origin=self.name)
        self.network.unicast(self.name, destination, message)
        return message


class GossipNetworkApi:
    """Interface nodes use to reach the overlay (implemented by gossip)."""

    def broadcast(self, origin: str, message: Message) -> None:  # pragma: no cover
        raise NotImplementedError

    def unicast(
        self, origin: str, destination: str, message: Message
    ) -> None:  # pragma: no cover
        raise NotImplementedError
