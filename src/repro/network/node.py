"""Network nodes: the common base for providers, detectors, consumers.

A node owns a handler table keyed by :class:`MessageKind`; the gossip
layer calls :meth:`deliver` when a message arrives.  Subclasses in
:mod:`repro.core` implement the stakeholder behaviours of §IV-A.

Nodes also carry a *lifecycle*: :meth:`crash` models a process dying
(it stops delivering, relaying, and originating traffic) and
:meth:`restart` brings it back.  Durable state — keys, handler tables,
and whatever subclasses persist (a provider's chain replica survives
on disk) — is retained across a crash; only in-flight messages are
lost.  Subclasses hook :meth:`on_restarted` to recover, e.g. a chain
replica resyncs from its peers (§V-C fault tolerance).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.crypto.keys import KeyPair
from repro.network.messages import Message, MessageKind

__all__ = ["Node", "MessageHandler"]

MessageHandler = Callable[["Node", Message], None]


class Node:
    """A named overlay participant with a keypair and message handlers."""

    #: Light nodes set this: in inv-pull gossip their payload pulls are
    #: served the block *header* instead of the full body (§V-B's
    #: "lightweight detector" storing headers, not the chain).
    wants_headers_only = False

    def __init__(self, name: str, keys: Optional[KeyPair] = None) -> None:
        self.name = name
        self._keys = keys
        self._handlers: Dict[MessageKind, List[MessageHandler]] = {}
        self.network: Optional["GossipNetworkApi"] = None
        self.delivered_count = 0
        #: Lifecycle: a crashed node neither receives nor sends.
        self.crashed = False
        self.crash_count = 0
        self.restart_count = 0
        #: Sends attempted while down (simulation callbacks firing on a
        #: dead process are silently dropped, as the real process would).
        self.sends_while_crashed = 0
        #: Observers of crash/restart transitions (e.g. a query service
        #: pre-warming its index after the node's recovery completes).
        self._lifecycle_listeners: List[Callable[[str], None]] = []

    @property
    def keys(self) -> KeyPair:
        """The node's keypair, derived from its name on first use.

        Derivation is a real secp256k1 scalar multiplication (~2 ms), so
        a 100k-node fleet must not pay it per node at construction —
        only the replicas that actually sign (mine) ever touch it.
        """
        if self._keys is None:
            self._keys = KeyPair.from_seed(self.name.encode())
        return self._keys

    @keys.setter
    def keys(self, value: Optional[KeyPair]) -> None:
        self._keys = value

    @property
    def address(self):
        """The node's account address."""
        return self.keys.address

    @property
    def alive(self) -> bool:
        """True unless the node is currently crashed."""
        return not self.crashed

    # -- lifecycle ----------------------------------------------------------

    def crash(self) -> None:
        """Kill the process: all delivery and sending stops."""
        if self.crashed:
            return
        self.crashed = True
        self.crash_count += 1
        self._notify_lifecycle("crash")

    def restart(self) -> None:
        """Bring the process back up and run recovery hooks."""
        if not self.crashed:
            return
        self.crashed = False
        self.restart_count += 1
        self.on_restarted()
        self._notify_lifecycle("restart")

    def on_restarted(self) -> None:
        """Recovery hook after a restart (subclasses resync here)."""

    def subscribe_lifecycle(self, listener: Callable[[str], None]) -> None:
        """Observe crash/restart transitions.

        ``listener`` is called with ``"crash"`` after the node goes
        down and ``"restart"`` after it is back up *and* its recovery
        hooks (:meth:`on_restarted`) have run — so a restart listener
        sees the recovered state, not the mid-recovery one.
        """
        self._lifecycle_listeners.append(listener)

    def _notify_lifecycle(self, event: str) -> None:
        for listener in list(self._lifecycle_listeners):
            listener(event)

    # -- messaging ----------------------------------------------------------

    def on(self, kind: MessageKind, handler: MessageHandler) -> None:
        """Register a handler for a message kind (multiple allowed)."""
        self._handlers.setdefault(kind, []).append(handler)

    def deliver(self, message: Message) -> None:
        """Called by the gossip layer when a message reaches this node.

        A crashed node delivers nothing: the counter is not incremented
        and no handler runs (the message is simply lost, like a packet
        arriving at a dead process).
        """
        if self.crashed:
            return
        self.delivered_count += 1
        for handler in self._handlers.get(message.kind, []):
            handler(self, message)

    def broadcast(
        self, kind: MessageKind, payload, salt: Optional[int] = None
    ) -> Optional[Message]:
        """Gossip a payload to the whole overlay.

        ``salt`` distinguishes retransmissions: a salted envelope gets a
        fresh dedup key so the flood propagates again to nodes that
        missed the original (receivers stay idempotent at the
        application layer).  Returns None if the node is crashed.
        """
        if self.crashed:
            self.sends_while_crashed += 1
            return None
        if self.network is None:
            raise RuntimeError(f"node {self.name} is not attached to a network")
        message = Message.wrap(kind, payload, origin=self.name, salt=salt)
        self.network.broadcast(self.name, message)
        return message

    def send(self, destination: str, kind: MessageKind, payload) -> Optional[Message]:
        """Send a payload point-to-point (dropped if crashed)."""
        if self.crashed:
            self.sends_while_crashed += 1
            return None
        if self.network is None:
            raise RuntimeError(f"node {self.name} is not attached to a network")
        message = Message.wrap(kind, payload, origin=self.name)
        self.network.unicast(self.name, destination, message)
        return message


class GossipNetworkApi:
    """Interface nodes use to reach the overlay (implemented by gossip)."""

    def broadcast(self, origin: str, message: Message) -> None:  # pragma: no cover
        raise NotImplementedError

    def unicast(
        self, origin: str, destination: str, message: Message
    ) -> None:  # pragma: no cover
        raise NotImplementedError
