"""Discrete-event simulation engine.

SmartCrowd's announcements and reports "are disseminated among all
stakeholders" (§IV-B) over a peer-to-peer network.  The reproduction
replaces the prototype's LAN with a deterministic discrete-event
simulator: events are (time, sequence, callback) triples on a heap;
ties break by insertion order so runs are exactly reproducible for a
given seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, List, Optional

from repro.compat import warn_deprecated
from repro.telemetry import NULL_TELEMETRY, Telemetry

__all__ = ["Simulator", "ScheduledEvent"]


@dataclass(order=True)
class ScheduledEvent:
    """One pending event; ordering is (time, seq) for determinism."""

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    #: Owner hook so the simulator can count cancelled shells in O(1)
    #: and compact its heap; cleared once the event leaves the queue.
    _on_cancel: Optional[Callable[[], None]] = field(
        default=None, compare=False, repr=False
    )

    def cancel(self) -> None:
        """Mark the event so the simulator skips it (idempotent)."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._on_cancel is not None:
            self._on_cancel()


class Simulator:
    """A minimal but complete discrete-event simulator.

    Not a wall-clock system: ``now`` only advances when events fire.
    """

    def __init__(
        self, start_time: float = 0.0, telemetry: Optional[Telemetry] = None
    ) -> None:
        self._now = start_time
        self._queue: List[ScheduledEvent] = []
        self._seq = itertools.count()
        self._processed = 0
        #: Cancelled shells still sitting in the heap.  Tracked so
        #: ``pending`` is O(1) and so long chaos runs (which cancel
        #: retry timers constantly) don't leak dead heap entries.
        self._cancelled = 0
        #: Observability hook; mutable so a deployment can arm it after
        #: construction.  Disabled dispatch pays one truthiness check.
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events fired so far."""
        return self._processed

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued — O(1)."""
        return len(self._queue) - self._cancelled

    def _note_cancelled(self) -> None:
        """Event-cancel hook: count the shell; compact if they dominate."""
        self._cancelled += 1
        if self._cancelled * 2 > len(self._queue):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled shells and re-heapify the survivors."""
        self._queue = [event for event in self._queue if not event.cancelled]
        heapq.heapify(self._queue)
        self._cancelled = 0

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any, **kwargs: Any
    ) -> ScheduledEvent:
        """Schedule ``callback(*args, **kwargs)`` after ``delay`` seconds."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        bound: Callable[[], None]
        if args or kwargs:
            bound = lambda: callback(*args, **kwargs)  # noqa: E731
        else:
            bound = callback
        event = ScheduledEvent(
            time=self._now + delay,
            seq=next(self._seq),
            callback=bound,
            _on_cancel=self._note_cancelled,
        )
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any, **kwargs: Any
    ) -> ScheduledEvent:
        """Schedule at an absolute simulated time."""
        return self.schedule(time - self._now, callback, *args, **kwargs)

    def step(self) -> bool:
        """Fire the next event; returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            event._on_cancel = None  # left the queue: late cancels are no-ops
            if event.cancelled:
                self._cancelled -= 1
                continue
            self._now = event.time
            telemetry = self.telemetry
            if telemetry.enabled:
                started = perf_counter()
                event.callback()
                telemetry.histogram("sim.dispatch_seconds").observe(
                    perf_counter() - started
                )
                telemetry.counter("sim.events_processed").inc()
                telemetry.gauge("sim.queue_depth").set(self.pending)
            else:
                event.callback()
            self._processed += 1
            return True
        return False

    def advance(self, max_events: Optional[int] = None) -> int:
        """Run to quiescence (or ``max_events``); returns events fired.

        Part of the unified time-control surface shared with
        :class:`~repro.core.platform.SmartCrowdPlatform`:
        ``schedule``/``schedule_at`` queue work,
        ``advance``/``advance_until``/``advance_for`` move the clock and
        return the count of work items processed.
        """
        fired = 0
        while self.step():
            fired += 1
            if max_events is not None and fired >= max_events:
                break
        return fired

    def advance_until(self, deadline: float) -> int:
        """Fire all events with time <= ``deadline``; advance ``now`` to it."""
        fired = 0
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                head._on_cancel = None
                self._cancelled -= 1
                continue
            if head.time > deadline:
                break
            self.step()
            fired += 1
        self._now = max(self._now, deadline)
        return fired

    def advance_for(self, duration: float) -> int:
        """Fire all events within the next ``duration`` seconds."""
        return self.advance_until(self._now + duration)

    # -- deprecated spellings (pre-unification) -----------------------------

    def run(self, max_events: Optional[int] = None) -> int:
        """Deprecated spelling of :meth:`advance` (warns once)."""
        warn_deprecated("Simulator.run", "Simulator.advance")
        return self.advance(max_events)

    def run_until(self, deadline: float) -> int:
        """Deprecated spelling of :meth:`advance_until` (warns once)."""
        warn_deprecated("Simulator.run_until", "Simulator.advance_until")
        return self.advance_until(deadline)
