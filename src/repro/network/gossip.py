"""Gossip overlay: flooding or inv-pull relay, with dedup, loss, partitions.

SRAs propagate hop by hop — "Only no error occurs can P_i propagate Δ
to its neighbors" (§V-A) — so the overlay supports *relay filters*: a
node may validate a message before forwarding it, which is how spoofed
SRAs die at the first honest hop.

Two relay modes (:class:`~repro.network.config.NetworkConfig`):

``flood``
    The paper's 5-provider LAN: every node pushes the full payload to
    its (non-partitioned) neighbors the first time it sees a message.
    O(edges) payload copies per broadcast — fine at small scale,
    quadratic on the default complete mesh.

``inv``
    Bitcoin-shaped announce + pull for large fleets: a relay sends a
    tiny inventory frame (content digest) to its neighbors; a peer that
    has not seen the digest pulls the payload from the first announcer
    (``getdata``), then announces onward.  Each node transfers the full
    payload at most once, so a broadcast costs O(edges) *control* frames
    plus O(nodes) payload copies.  Inventory frames roll the loss dice
    like any datagram; the pull exchange is modeled as
    connection-oriented (reliable but latency-sampled), as in the
    prototype's TCP peer links.  Light nodes
    (:attr:`~repro.network.node.Node.wants_headers_only`) pull only the
    block header — relayed inventory still carries the full content for
    downstream full nodes.

Per-node seen-digest state is O(1) amortized per lookup and can be
memory-bounded to an LRU of recent digests (``seen_capacity``), so a
long-lived 1000-node fleet does not grow dedup state without bound.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

import networkx as nx

from repro.network.config import NetworkConfig
from repro.network.latency import DEFAULT_LATENCY, LatencyModel
from repro.network.messages import CONTROL_WIRE_BYTES, Message, wire_size
from repro.network.node import GossipNetworkApi, Node
from repro.network.simulator import Simulator
from repro.telemetry import MetricsRegistry, NULL_TELEMETRY, Telemetry

__all__ = ["GossipNetwork", "SeenLRU", "build_topology"]

#: Relay predicate: (relaying node, message) -> forward it or not.
RelayFilter = Callable[[Node, Message], bool]


def build_topology(
    names: List[str],
    kind: str = "complete",
    degree: int = 4,
    rng: Optional[random.Random] = None,
) -> nx.Graph:
    """Build an overlay topology over ``names``.

    ``complete`` — everyone peers with everyone (the paper's 5-provider
    LAN); ``ring`` — a cycle; ``random_regular`` — d-regular random
    graph (Bitcoin-like); ``small_world`` — Watts–Strogatz;
    ``ring_random`` — a cycle plus random chords up to ``degree``
    average degree (always connected, bounded degree — the large-fleet
    default).
    """
    rng = rng if rng is not None else random.Random(0)
    count = len(names)
    if kind == "complete":
        graph = nx.complete_graph(count)
    elif kind == "ring":
        graph = nx.cycle_graph(count)
    elif kind == "random_regular":
        actual_degree = min(degree, count - 1)
        if (actual_degree * count) % 2 == 1:
            actual_degree = max(1, actual_degree - 1)
        graph = nx.random_regular_graph(actual_degree, count, seed=rng.randrange(2**31))
    elif kind == "small_world":
        k = min(degree, count - 1)
        if k % 2 == 1:
            k = max(2, k - 1)
        graph = nx.watts_strogatz_graph(count, k, 0.1, seed=rng.randrange(2**31))
    elif kind == "ring_random":
        graph = nx.cycle_graph(count)
        # The ring contributes degree 2; add random chords until the
        # average degree reaches the target.  Connectivity is guaranteed
        # by the ring regardless of which chords land.
        chords_wanted = max(0, count * (degree - 2) // 2)
        attempts = 0
        while chords_wanted > 0 and attempts < 20 * chords_wanted + 100:
            attempts += 1
            a = rng.randrange(count)
            b = rng.randrange(count)
            if a == b or graph.has_edge(a, b):
                continue
            graph.add_edge(a, b)
            chords_wanted -= 1
    else:
        raise ValueError(f"unknown topology kind {kind!r}")
    return nx.relabel_nodes(graph, dict(enumerate(names)))


class SeenLRU:
    """A bounded set of recently seen digests — O(1) amortized ops.

    Backed by an insertion-ordered dict used as a ring of the most
    recent ``capacity`` keys; at capacity, adding a new key evicts the
    oldest.  ``capacity=None`` means unbounded (a plain set with dict
    clothes), the small-fleet default.
    """

    __slots__ = ("_entries", "capacity")

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 (or None for unbounded)")
        self.capacity = capacity
        self._entries: Dict[bytes, None] = {}

    def __contains__(self, key: bytes) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def add(self, key: bytes) -> None:
        """Insert a key, evicting the oldest once over capacity."""
        entries = self._entries
        if key in entries:
            return
        entries[key] = None
        if self.capacity is not None and len(entries) > self.capacity:
            del entries[next(iter(entries))]


class GossipNetwork(GossipNetworkApi):
    """A gossip overlay on a simulator clock (flood or inv-pull relay).

    Messages travel edges with sampled latency; each node forwards a
    message to its neighbors the first time it sees it (by dedup key),
    unless a relay filter vetoes forwarding.  Supports probabilistic
    message loss, duplication, delay spikes, node crashes, and explicit
    partitions for fault-injection tests (:mod:`repro.faults`).

    Topology/relay knobs arrive through one
    :class:`~repro.network.config.NetworkConfig` (``config``); the bare
    ``loss_rate`` kwarg is kept for the small-fleet call sites that
    predate it.
    """

    def __init__(
        self,
        simulator: Simulator,
        topology: nx.Graph,
        latency: LatencyModel = DEFAULT_LATENCY,
        loss_rate: float = 0.0,
        rng: Optional[random.Random] = None,
        telemetry: Optional[Telemetry] = None,
        config: Optional[NetworkConfig] = None,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss rate must be in [0, 1)")
        self.config = config if config is not None else NetworkConfig()
        self.simulator = simulator
        self.topology = topology
        self.latency = latency
        #: Per-transmission loss probability; an explicit kwarg wins
        #: over the config's value so legacy call sites keep working.
        self.loss_rate = loss_rate if loss_rate > 0.0 else self.config.loss_rate
        #: Probability a transmitted copy is delivered twice (link-level
        #: duplication fault; the second copy is suppressed by dedup).
        self.duplication_rate = 0.0
        #: Optional delay-spike hook: (src, dst, rng) -> extra seconds
        #: added to the sampled link latency (injected congestion; also
        #: the source of message *reordering* under chaos).
        self.extra_delay: Optional[Callable[[str, str, random.Random], float]] = None
        self._rng = rng if rng is not None else random.Random(0)
        #: Sharded engines set this to route traffic for topology
        #: neighbors that live on another shard.  Duck-typed interface
        #: (see :class:`repro.shard.engine.ShardGateway`): ``is_remote``,
        #: ``send_payload``, ``send_inv``, ``send_getdata``.  ``None``
        #: (the default) keeps the overlay purely local: edges to
        #: unattached names are silently inert, as before.
        self.remote_gateway = None
        self._nodes: Dict[str, Node] = {}
        self._seen: Dict[str, SeenLRU] = {}
        #: inv mode: per node, digests announced to us that we have
        #: requested but not yet received — key -> announcing peer.
        self._pending: Dict[str, Dict[bytes, str]] = {}
        self._relay_filters: List[RelayFilter] = []
        self._cut_links: Set[Tuple[str, str]] = set()
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        # Transport counters live in a metrics registry (the shared one
        # when telemetry is armed, a private one otherwise, so the
        # legacy attribute views below always read real counts).
        metrics = (
            self.telemetry.metrics if self.telemetry.enabled else MetricsRegistry()
        )
        self._sent = metrics.counter("gossip.messages", status="sent")
        self._dropped = metrics.counter("gossip.messages", status="dropped")
        self._duplicated = metrics.counter(
            "gossip.messages", status="duplicate_suppressed"
        )
        self._lost_to_crashes = metrics.counter(
            "gossip.messages", status="lost_to_crash"
        )
        self._broadcasts = metrics.counter("gossip.broadcasts")
        self._bytes_sent = metrics.counter("gossip.bytes", status="sent")
        self._inv_frames = metrics.counter("gossip.frames", frame="inv")
        self._getdata_frames = metrics.counter("gossip.frames", frame="getdata")
        self._payload_frames = metrics.counter("gossip.frames", frame="payload")

    # -- transport counters (compatibility views) --------------------------

    @property
    def messages_sent(self) -> int:
        """Physical copies put on a link (echoes from duplication included)."""
        return self._sent.value

    @property
    def messages_dropped(self) -> int:
        """Copies lost to the ``loss_rate`` roll."""
        return self._dropped.value

    @property
    def messages_duplicated(self) -> int:
        """Deliveries suppressed because the receiver had already seen
        the dedup key (flood redundancy + injected duplicates)."""
        return self._duplicated.value

    @property
    def messages_lost_to_crashes(self) -> int:
        """Deliveries lost because the receiving node was crashed."""
        return self._lost_to_crashes.value

    @property
    def bytes_sent(self) -> int:
        """Estimated bytes put on the wire (payloads + control frames)."""
        return self._bytes_sent.value

    # -- membership --------------------------------------------------------

    def attach(self, node: Node) -> None:
        """Register a node; it must exist in the topology."""
        if node.name not in self.topology:
            raise ValueError(f"{node.name} is not in the topology")
        self._nodes[node.name] = node
        self._seen[node.name] = SeenLRU(self.config.seen_capacity)
        self._pending[node.name] = {}
        node.network = self

    def attach_all(self, nodes: Iterable[Node]) -> None:
        """Attach many nodes."""
        for node in nodes:
            self.attach(node)

    def node(self, name: str) -> Node:
        """Look up an attached node."""
        return self._nodes[name]

    def neighbors(self, name: str) -> List[str]:
        """Current (non-partitioned) neighbors of a node."""
        return [
            peer
            for peer in self.topology.neighbors(name)
            if not self._is_cut(name, peer)
        ]

    # -- fault injection -----------------------------------------------------

    def add_relay_filter(self, predicate: RelayFilter) -> None:
        """Install a forwarding veto (decentralized SRA verification)."""
        self._relay_filters.append(predicate)

    def cut_link(self, a: str, b: str) -> None:
        """Sever a link (partition injection)."""
        self._cut_links.add((min(a, b), max(a, b)))

    def heal_link(self, a: str, b: str) -> None:
        """Restore a severed link."""
        self._cut_links.discard((min(a, b), max(a, b)))

    def partition(self, group_a: Iterable[str], group_b: Iterable[str]) -> None:
        """Cut every link between two node groups."""
        group_b = list(group_b)
        for a in group_a:
            for b in group_b:
                if self.topology.has_edge(a, b):
                    self.cut_link(a, b)

    def heal_all(self) -> None:
        """Restore every severed link."""
        self._cut_links.clear()

    def crash_node(self, name: str) -> None:
        """Crash an attached node (it stops receiving and sending)."""
        self._nodes[name].crash()

    def restart_node(self, name: str) -> None:
        """Restart a crashed node; its recovery hooks run (resync)."""
        self._nodes[name].restart()

    def alive_nodes(self) -> List[str]:
        """Names of attached nodes that are not crashed."""
        return [name for name, node in self._nodes.items() if not node.crashed]

    def _is_cut(self, a: str, b: str) -> bool:
        return (min(a, b), max(a, b)) in self._cut_links

    # -- transport -----------------------------------------------------------

    def broadcast(self, origin: str, message: Message) -> None:
        """Relay a message from ``origin`` across the whole overlay."""
        if origin not in self._nodes:
            raise ValueError(f"unknown origin {origin}")
        self._seen[origin].add(message.dedup_key)
        if self.telemetry.enabled:
            self._broadcasts.inc()
            self.telemetry.event(
                "gossip.broadcast",
                origin=origin,
                kind=message.kind.name,
                dedup_key=message.dedup_key.hex()[:16],
            )
        self._forward(origin, message)

    def unicast(self, origin: str, destination: str, message: Message) -> None:
        """Direct delivery along one (virtual) link — not relayed."""
        if destination not in self._nodes:
            raise ValueError(f"unknown destination {destination}")
        self._transmit(origin, destination, message, relay=False)

    def _relay_targets(self, relay: str) -> List[str]:
        """Attached neighbors a relay pushes to — all, or a ``fanout`` sample.

        With a remote gateway installed, neighbors owned by another
        shard are eligible targets too; the push to them becomes a
        cross-shard frame instead of a local simulator event.
        """
        gateway = self.remote_gateway
        if gateway is None:
            peers = [peer for peer in self.neighbors(relay) if peer in self._nodes]
        else:
            peers = [
                peer
                for peer in self.neighbors(relay)
                if peer in self._nodes or gateway.is_remote(peer)
            ]
        fanout = self.config.fanout
        if fanout is not None and len(peers) > fanout:
            peers = self._rng.sample(peers, fanout)
        return peers

    def _forward(self, relay: str, message: Message) -> None:
        if self.config.mode == "inv":
            for peer in self._relay_targets(relay):
                self._send_inv(relay, peer, message)
        else:
            for peer in self._relay_targets(relay):
                self._transmit(relay, peer, message)

    # -- flood path ----------------------------------------------------------

    def _transmit(
        self, src: str, dst: str, message: Message, relay: bool = True
    ) -> None:
        if self._is_cut(src, dst):
            return
        gateway = self.remote_gateway
        remote = (
            dst not in self._nodes and gateway is not None and gateway.is_remote(dst)
        )
        # Link-level duplication is decided up front: the echo is a real
        # second transmission, so it is counted in ``messages_sent`` and
        # rolls the same loss dice as the original copy (previously it
        # bypassed both, under-counting chaos-lane traffic and
        # over-delivering under loss).
        copies = 1
        if self.duplication_rate > 0 and self._rng.random() < self.duplication_rate:
            copies = 2
        arrival = 0.0
        for _ in range(copies):
            self._sent.inc()
            self._payload_frames.inc()
            self._bytes_sent.inc(wire_size(message))
            if self.loss_rate > 0 and self._rng.random() < self.loss_rate:
                self._dropped.inc()
                continue
            delay = self.latency.sample(src, dst, self._rng)
            if self.extra_delay is not None:
                delay += max(0.0, self.extra_delay(src, dst, self._rng))
            # Each surviving copy arrives after the previous one — the
            # echo trails the original on its own sampled latency.
            arrival += delay
            if remote:
                gateway.send_payload(
                    src, dst, message, self.simulator.now + arrival
                )
            else:
                self.simulator.schedule(arrival, self._receive, dst, message, relay)

    # -- inv-pull path ---------------------------------------------------------

    def _link_delay(self, src: str, dst: str) -> float:
        delay = self.latency.sample(src, dst, self._rng)
        if self.extra_delay is not None:
            delay += max(0.0, self.extra_delay(src, dst, self._rng))
        return delay

    def _send_inv(self, src: str, dst: str, message: Message) -> None:
        """Announce a content digest to one peer (best-effort datagram)."""
        if self._is_cut(src, dst):
            return
        self._sent.inc()
        self._inv_frames.inc()
        self._bytes_sent.inc(CONTROL_WIRE_BYTES)
        if self.loss_rate > 0 and self._rng.random() < self.loss_rate:
            self._dropped.inc()
            return
        delay = self._link_delay(src, dst)
        gateway = self.remote_gateway
        if dst not in self._nodes and gateway is not None and gateway.is_remote(dst):
            # The announcing shard keeps the content so the pull that
            # comes back across the boundary can be served locally.
            gateway.send_inv(src, dst, message, self.simulator.now + delay)
            return
        self.simulator.schedule(delay, self._receive_inv, dst, src, message)

    def _announcer_gone(self, name: str, announcer: str) -> bool:
        """Is a pending pull from ``announcer`` doomed (peer or link dead)?

        A remote announcer's liveness is its own shard's business — it
        is presumed alive (finalize's settle loop heals a pull that a
        remote crash actually stranded), so duplicate inventories are
        suppressed exactly as for a live local announcer.
        """
        node = self._nodes.get(announcer)
        if node is None:
            gateway = self.remote_gateway
            if gateway is not None and gateway.is_remote(announcer):
                return self._is_cut(name, announcer)
            return True
        return node.crashed or self._is_cut(name, announcer)

    def _receive_inv(self, name: str, announcer: str, message: Message) -> None:
        node = self._nodes.get(name)
        if node is None:
            return
        if node.crashed:
            self._lost_to_crashes.inc()
            return
        key = message.dedup_key
        if key in self._seen[name]:
            self._duplicated.inc()
            return
        pending = self._pending[name]
        prior = pending.get(key)
        if prior is not None:
            # Already pulling this digest; re-request from the new
            # announcer only if the first request died with its peer
            # (crash) or its link (partition) — otherwise the duplicate
            # inventory is suppressed like any redundant copy.
            if not self._announcer_gone(name, prior):
                self._duplicated.inc()
                return
        pending[key] = announcer
        self._send_getdata(name, announcer, message)

    def _send_getdata(self, src: str, dst: str, message: Message) -> None:
        """Pull a payload from an announcer (connection-oriented)."""
        if self._is_cut(src, dst):
            return
        self._sent.inc()
        self._getdata_frames.inc()
        self._bytes_sent.inc(CONTROL_WIRE_BYTES)
        self.simulator.schedule(
            self._link_delay(src, dst), self._receive_getdata, dst, src, message
        )

    def _receive_getdata(self, name: str, requester: str, message: Message) -> None:
        node = self._nodes.get(name)
        if node is None or node.crashed:
            # The request dies with the responder; a later inventory
            # from a live announcer re-triggers the pull.
            self._lost_to_crashes.inc()
            return
        if self._is_cut(name, requester):
            return
        reduced = message
        target = self._nodes.get(requester)
        if (
            target is not None
            and getattr(target, "wants_headers_only", False)
            and hasattr(message.payload, "header")
        ):
            # Light clients pull the 120-byte header, not the body.
            reduced = message.with_payload(message.payload.header)
        self._sent.inc()
        self._payload_frames.inc()
        self._bytes_sent.inc(wire_size(reduced))
        self.simulator.schedule(
            self._link_delay(name, requester),
            self._receive,
            requester,
            reduced,
            True,
            message,
        )

    # -- cross-shard entry points ----------------------------------------------
    #
    # A sharded engine injects boundary traffic by scheduling these at
    # the frame's (barrier-clamped) arrival time.  They mirror the local
    # handlers above exactly — same dedup, pending, crash, counter, and
    # header-reduction behavior — differing only in transport: responses
    # that must cross back go out through the gateway as frames.

    def receive_remote_inv(
        self,
        name: str,
        announcer: str,
        message_kind,
        origin: str,
        dedup_key: bytes,
    ) -> None:
        """An inventory announced from another shard reaches ``name``.

        Unlike the local path there is no payload in hand — only the
        digest — so an accepted announcement pulls via a ``getdata``
        frame back to the announcing shard, which serves from the
        content it cached when it announced.
        """
        node = self._nodes.get(name)
        if node is None:
            return
        if node.crashed:
            self._lost_to_crashes.inc()
            return
        if dedup_key in self._seen[name]:
            self._duplicated.inc()
            return
        pending = self._pending[name]
        prior = pending.get(dedup_key)
        if prior is not None:
            if not self._announcer_gone(name, prior):
                self._duplicated.inc()
                return
        pending[dedup_key] = announcer
        if self._is_cut(name, announcer):
            return
        self._sent.inc()
        self._getdata_frames.inc()
        self._bytes_sent.inc(CONTROL_WIRE_BYTES)
        self.remote_gateway.send_getdata(
            name,
            announcer,
            message_kind,
            origin,
            dedup_key,
            bool(getattr(node, "wants_headers_only", False)),
            self.simulator.now + self._link_delay(name, announcer),
        )

    def serve_remote_getdata(
        self, name: str, requester: str, message: Message, wants_headers: bool
    ) -> None:
        """Serve a pull from another shard out of ``name``'s announced content.

        ``message`` is the full envelope the engine resolved from the
        announcing shard's content cache.  The full body ships across
        the boundary even for a header-only requester — the receiving
        shard reduces at delivery but relays the full content onward,
        matching the local light-node path — but the *wire accounting*
        charges the reduced size, like the local serve does.
        """
        node = self._nodes.get(name)
        if node is None or node.crashed:
            self._lost_to_crashes.inc()
            return
        if self._is_cut(name, requester):
            return
        reduced = message
        if wants_headers and hasattr(message.payload, "header"):
            reduced = message.with_payload(message.payload.header)
        self._sent.inc()
        self._payload_frames.inc()
        self._bytes_sent.inc(wire_size(reduced))
        self.remote_gateway.send_payload(
            name,
            requester,
            message,
            self.simulator.now + self._link_delay(name, requester),
            reduce_for_delivery=wants_headers,
        )

    def deliver_remote_payload(
        self, name: str, message: Message, reduce_for_delivery: bool = False
    ) -> None:
        """A payload frame from another shard reaches ``name``.

        ``reduce_for_delivery`` re-applies the light-node header
        reduction the serving shard deferred: the node is delivered the
        header while the full content keeps relaying downstream.
        """
        if reduce_for_delivery and hasattr(message.payload, "header"):
            self._receive(name, message.with_payload(message.payload.header), True, message)
        else:
            self._receive(name, message)

    # -- delivery --------------------------------------------------------------

    def _receive(
        self,
        name: str,
        message: Message,
        relay: bool = True,
        relay_message: Optional[Message] = None,
    ) -> None:
        """Deliver a payload to a node, then relay onward.

        ``relay_message`` is what gets announced downstream when it
        differs from the delivered form — a light node receives the
        header but keeps announcing the full content so full nodes
        behind it can still pull the body.
        """
        node = self._nodes.get(name)
        if node is None:
            return
        if node.crashed:
            # Lost on a dead process; NOT marked seen, so a later
            # retransmission can still reach the node after restart.
            self._lost_to_crashes.inc()
            return
        if message.dedup_key in self._seen[name]:
            self._duplicated.inc()
            return
        self._seen[name].add(message.dedup_key)
        self._pending[name].pop(message.dedup_key, None)
        node.deliver(message)
        # Relay unless unicast or a filter vetoes (failed SRA verification).
        if relay and all(
            predicate(node, message) for predicate in self._relay_filters
        ):
            self._forward(name, relay_message if relay_message is not None else message)

    def reach(self, dedup_key: bytes) -> int:
        """How many nodes have seen a message with this key."""
        return sum(1 for seen in self._seen.values() if dedup_key in seen)

    def summary(self) -> Dict[str, float]:
        """Simulator + transport counters in one dict.

        The chaos harness and experiment reports read this; it is the
        single place where drop/duplication suppression statistics are
        exposed alongside the simulator clock.
        """
        crashed = sum(1 for node in self._nodes.values() if node.crashed)
        return {
            "time": self.simulator.now,
            "events_processed": self.simulator.events_processed,
            "events_pending": self.simulator.pending,
            "nodes": len(self._nodes),
            "nodes_crashed": crashed,
            "messages_sent": self.messages_sent,
            "messages_dropped": self.messages_dropped,
            "messages_duplicated": self.messages_duplicated,
            "messages_lost_to_crashes": self.messages_lost_to_crashes,
            "bytes_sent": self.bytes_sent,
            "inv_frames": self._inv_frames.value,
            "getdata_frames": self._getdata_frames.value,
            "payload_frames": self._payload_frames.value,
        }
