"""The chaos plan DSL: a declarative schedule of faults.

A :class:`ChaosPlan` is an ordered list of :class:`FaultEvent`\\ s on
the simulated clock — node crashes and restarts, timed partitions,
and link-level fault knobs (loss, duplication, delay spikes).  Plans
are pure data: they can be built explicitly with the fluent methods,
generated randomly from a seed (:meth:`ChaosPlan.random`), inspected,
and replayed deterministically by the
:class:`~repro.faults.injector.FaultInjector`.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["ChaosPlan", "DISK_FAULTS", "FaultEvent", "FaultKind"]


class FaultKind(enum.Enum):
    """Every fault the injector can apply."""

    CRASH = "crash"
    RESTART = "restart"
    PARTITION = "partition"
    HEAL_PARTITION = "heal_partition"
    SET_LOSS = "set_loss"
    SET_DUPLICATION = "set_duplication"
    DELAY_SPIKE = "delay_spike"
    CLEAR_DELAY_SPIKE = "clear_delay_spike"
    # Disk faults: corrupt a down node's durable store so its restart
    # exercises the crash-recovery path (see repro.store.faultinject).
    TORN_WRITE = "torn_write"
    BIT_FLIP = "bit_flip"
    DROP_SNAPSHOT = "drop_snapshot"
    DROP_INDEX = "drop_index"


#: Fault kinds that modify a node's on-disk store.
DISK_FAULTS = frozenset(
    {
        FaultKind.TORN_WRITE,
        FaultKind.BIT_FLIP,
        FaultKind.DROP_SNAPSHOT,
        FaultKind.DROP_INDEX,
    }
)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``targets`` holds node names for CRASH/RESTART and disk faults,
    and the two side groups for PARTITION/HEAL_PARTITION; ``value``
    carries the rate for SET_LOSS/SET_DUPLICATION and the maximum
    extra seconds for DELAY_SPIKE; ``params`` carries the disk-fault
    knobs (frame index, bytes/bit, snapshots kept).
    """

    at: float
    kind: FaultKind
    targets: Tuple[Tuple[str, ...], ...] = ()
    value: float = 0.0
    params: Tuple[int, ...] = ()

    def describe(self) -> str:
        """Human-readable one-liner for chaos logs."""
        if self.kind in (FaultKind.CRASH, FaultKind.RESTART) or (
            self.kind in DISK_FAULTS
        ):
            names = ",".join(self.targets[0]) if self.targets else "?"
            suffix = f" params={self.params}" if self.params else ""
            return f"t={self.at:.1f} {self.kind.value} {names}{suffix}"
        if self.kind in (FaultKind.PARTITION, FaultKind.HEAL_PARTITION):
            sides = " | ".join(",".join(group) for group in self.targets)
            return f"t={self.at:.1f} {self.kind.value} [{sides}]"
        return f"t={self.at:.1f} {self.kind.value} value={self.value}"


@dataclass
class ChaosPlan:
    """An editable, replayable schedule of faults."""

    events: List[FaultEvent] = field(default_factory=list)

    # -- fluent builders ---------------------------------------------------

    def _add(self, event: FaultEvent) -> "ChaosPlan":
        if event.at < 0:
            raise ValueError("fault time cannot be negative")
        self.events.append(event)
        return self

    def crash(self, node: str, at: float) -> "ChaosPlan":
        """Kill ``node`` at time ``at``."""
        return self._add(FaultEvent(at=at, kind=FaultKind.CRASH, targets=((node,),)))

    def restart(self, node: str, at: float) -> "ChaosPlan":
        """Restart ``node`` at time ``at`` (recovery hooks run)."""
        return self._add(FaultEvent(at=at, kind=FaultKind.RESTART, targets=((node,),)))

    def crash_for(self, node: str, at: float, downtime: float) -> "ChaosPlan":
        """Crash ``node`` at ``at`` and restart it ``downtime`` later."""
        if downtime <= 0:
            raise ValueError("downtime must be positive")
        return self.crash(node, at).restart(node, at + downtime)

    # -- disk faults (durable stores) --------------------------------------

    def torn_write(
        self, node: str, at: float, frame: int = -1, keep_bytes: int = -1
    ) -> "ChaosPlan":
        """Tear ``node``'s block log mid-frame while it is down.

        ``frame`` picks the victim frame (negative counts from the
        end); ``keep_bytes`` is how much of it survives (default about
        half).  The node must be crashed at ``at`` — see
        :meth:`validate`.
        """
        return self._add(
            FaultEvent(
                at=at, kind=FaultKind.TORN_WRITE, targets=((node,),),
                params=(frame, keep_bytes),
            )
        )

    def bit_flip(self, node: str, at: float, frame: int = -1, bit: int = -1) -> "ChaosPlan":
        """Flip one bit of a stored frame while ``node`` is down."""
        return self._add(
            FaultEvent(
                at=at, kind=FaultKind.BIT_FLIP, targets=((node,),),
                params=(frame, bit),
            )
        )

    def drop_snapshot(
        self, node: str, at: float, keep_oldest: int = 0
    ) -> "ChaosPlan":
        """Delete ``node``'s ledger snapshots while it is down.

        ``keep_oldest=0`` loses them all (genesis replay on recovery);
        ``keep_oldest=1`` leaves a *stale* one (older anchor, longer
        delta replay).
        """
        if keep_oldest < 0:
            raise ValueError("keep_oldest cannot be negative")
        return self._add(
            FaultEvent(
                at=at, kind=FaultKind.DROP_SNAPSHOT, targets=((node,),),
                params=(keep_oldest,),
            )
        )

    def drop_index(self, node: str, at: float) -> "ChaosPlan":
        """Delete ``node``'s persisted serving index while it is down.

        The block log survives, so chain recovery is unaffected; the
        fault forces the next query service over this store onto the
        cold from-genesis build path instead of a warm start.
        """
        return self._add(
            FaultEvent(at=at, kind=FaultKind.DROP_INDEX, targets=((node,),))
        )

    def partition(
        self,
        side_a: Sequence[str],
        side_b: Sequence[str],
        at: float,
        heal_at: Optional[float] = None,
    ) -> "ChaosPlan":
        """Cut every link between two groups; optionally heal later."""
        groups = (tuple(side_a), tuple(side_b))
        self._add(FaultEvent(at=at, kind=FaultKind.PARTITION, targets=groups))
        if heal_at is not None:
            if heal_at <= at:
                raise ValueError("heal must come after the partition")
            self._add(
                FaultEvent(at=heal_at, kind=FaultKind.HEAL_PARTITION, targets=groups)
            )
        return self

    def set_loss(self, rate: float, at: float) -> "ChaosPlan":
        """Set the network-wide message loss rate at time ``at``."""
        if not 0.0 <= rate < 1.0:
            raise ValueError("loss rate must be in [0, 1)")
        return self._add(FaultEvent(at=at, kind=FaultKind.SET_LOSS, value=rate))

    def set_duplication(self, rate: float, at: float) -> "ChaosPlan":
        """Set the link duplication probability at time ``at``."""
        if not 0.0 <= rate < 1.0:
            raise ValueError("duplication rate must be in [0, 1)")
        return self._add(FaultEvent(at=at, kind=FaultKind.SET_DUPLICATION, value=rate))

    def delay_spike(
        self, max_extra: float, at: float, until: Optional[float] = None
    ) -> "ChaosPlan":
        """Add up to ``max_extra`` seconds of random latency per hop.

        Delay spikes also *reorder* messages (two copies on the same
        link can overtake each other).  ``until`` clears the spike.
        """
        if max_extra <= 0:
            raise ValueError("delay spike must be positive")
        self._add(FaultEvent(at=at, kind=FaultKind.DELAY_SPIKE, value=max_extra))
        if until is not None:
            if until <= at:
                raise ValueError("spike end must come after its start")
            self._add(FaultEvent(at=until, kind=FaultKind.CLEAR_DELAY_SPIKE))
        return self

    # -- random generation --------------------------------------------------

    @classmethod
    def random(
        cls,
        names: Sequence[str],
        duration: float,
        epoch: float,
        crash_probability: float = 0.2,
        min_downtime: float = 30.0,
        max_downtime: float = 120.0,
        max_concurrent_down: Optional[int] = None,
        start: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> "ChaosPlan":
        """Generate a crash/restart schedule by epoch-wise coin flips.

        Each epoch, every listed node crashes with ``crash_probability``
        and restarts after a sampled downtime.  At most
        ``max_concurrent_down`` nodes (default: just under half) are
        down at once, so the system never loses a usable majority, and
        every crash is restarted before ``start + duration`` — the plan
        always *heals*.
        """
        if epoch <= 0 or duration <= 0:
            raise ValueError("duration and epoch must be positive")
        if not 0.0 <= crash_probability <= 1.0:
            raise ValueError("crash probability must be in [0, 1]")
        if not 0 < min_downtime <= max_downtime:
            raise ValueError("need 0 < min_downtime <= max_downtime")
        rng = rng if rng is not None else random.Random(0)
        if max_concurrent_down is None:
            max_concurrent_down = max(1, (len(names) - 1) // 2)
        plan = cls()
        end = start + duration
        #: node -> time it comes back up (tracks concurrency cap)
        down_until: Dict[str, float] = {}
        tick = start
        while tick < end:
            for name in names:
                if down_until.get(name, 0.0) > tick:
                    continue  # still down
                concurrent = sum(1 for t in down_until.values() if t > tick)
                if concurrent >= max_concurrent_down:
                    break
                if rng.random() >= crash_probability:
                    continue
                crash_at = tick + rng.uniform(0.0, epoch * 0.5)
                downtime = rng.uniform(min_downtime, max_downtime)
                # The plan must fully heal: clamp the restart inside it.
                restart_at = min(crash_at + downtime, end - 1e-6)
                if restart_at <= crash_at:
                    continue
                plan.crash(name, crash_at)
                plan.restart(name, restart_at)
                down_until[name] = restart_at
            tick += epoch
        plan.sort()
        return plan

    # -- validation ----------------------------------------------------------

    def validate(self) -> "ChaosPlan":
        """Check crash/restart ordering; raises ValueError on nonsense.

        Replays the schedule in time order (stable, so builder order
        breaks ties — matching how the injector applies simultaneous
        events) and rejects:

        * a RESTART of a node that is not down at that time,
        * a second CRASH of a node that is already down,
        * a disk fault against a node that is *not* down (a live store
          is mid-use; real disk corruption surfaces at recovery).

        Returns self, so it chains fluently.
        """
        down_since: Dict[str, float] = {}
        for event in sorted(self.events, key=lambda e: e.at):
            if event.kind is FaultKind.CRASH:
                for name in event.targets[0]:
                    if name in down_since:
                        raise ValueError(
                            f"crash of {name!r} at t={event.at:g} while it "
                            f"is already down (crashed at "
                            f"t={down_since[name]:g} with no restart in "
                            "between)"
                        )
                    down_since[name] = event.at
            elif event.kind is FaultKind.RESTART:
                for name in event.targets[0]:
                    if name not in down_since:
                        raise ValueError(
                            f"restart of {name!r} at t={event.at:g} has no "
                            "preceding crash: the node is already up"
                        )
                    del down_since[name]
            elif event.kind in DISK_FAULTS:
                for name in event.targets[0]:
                    if name not in down_since:
                        raise ValueError(
                            f"{event.kind.value} against {name!r} at "
                            f"t={event.at:g} requires the node to be down "
                            "(schedule a crash before the disk fault)"
                        )
        return self

    # -- inspection ----------------------------------------------------------

    def sort(self) -> "ChaosPlan":
        """Order events by time (stable, so builder order breaks ties)."""
        self.events.sort(key=lambda event: event.at)
        return self

    def crashes(self) -> List[FaultEvent]:
        """All CRASH events."""
        return [e for e in self.events if e.kind is FaultKind.CRASH]

    def restarts(self) -> List[FaultEvent]:
        """All RESTART events."""
        return [e for e in self.events if e.kind is FaultKind.RESTART]

    def heals_completely(self) -> bool:
        """True if every crash has a later restart and every partition
        a later heal — i.e. the plan ends with the system whole."""
        downed: Dict[str, int] = {}
        partitions = 0
        for event in sorted(self.events, key=lambda e: e.at):
            if event.kind is FaultKind.CRASH:
                for name in event.targets[0]:
                    downed[name] = downed.get(name, 0) + 1
            elif event.kind is FaultKind.RESTART:
                for name in event.targets[0]:
                    downed[name] = max(0, downed.get(name, 0) - 1)
            elif event.kind is FaultKind.PARTITION:
                partitions += 1
            elif event.kind is FaultKind.HEAL_PARTITION:
                partitions = max(0, partitions - 1)
        return partitions == 0 and all(count == 0 for count in downed.values())

    def horizon(self) -> float:
        """Time of the last scheduled fault (0.0 for an empty plan)."""
        return max((event.at for event in self.events), default=0.0)

    def describe(self) -> str:
        """Multi-line human-readable plan listing."""
        return "\n".join(
            event.describe() for event in sorted(self.events, key=lambda e: e.at)
        )

    def __len__(self) -> int:
        return len(self.events)
