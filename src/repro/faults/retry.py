"""Retry policy for the two-phase report submission (§V-B under faults).

A detector that gossips ``R†`` (and later ``R*``) has no delivery
guarantee: the message may be dropped, the mining providers may be
partitioned away, or the detector itself may crash before the report
is mined.  The policy below governs the recovery loop: wait for the
report to appear on-chain within ``deadline`` seconds, otherwise
re-gossip with exponential backoff and jitter, up to ``max_attempts``
times.  Retries are *idempotent end to end* — report ids are
content-derived, mempools deduplicate by id, miners exclude ids
already canonical, and the contract pays each vulnerability at most
once — so re-gossiping can never double-charge a fee or double-pay a
reward.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

__all__ = ["RetryPolicy", "DEFAULT_RETRY_POLICY"]


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs of the retrying two-phase submitter.

    ``deadline`` — seconds to wait for on-chain inclusion before the
    first retry check; ``base_backoff`` — delay before retry *n* is
    ``base_backoff * multiplier**n``; ``jitter`` — each delay is
    scaled by a uniform factor in ``[1-jitter, 1+jitter]`` so
    synchronized detectors do not re-flood in lockstep;
    ``max_attempts`` — retransmissions before giving up.
    """

    deadline: float = 120.0
    base_backoff: float = 30.0
    multiplier: float = 2.0
    jitter: float = 0.25
    max_attempts: int = 5

    def __post_init__(self) -> None:
        if self.deadline <= 0:
            raise ValueError("deadline must be positive")
        if self.base_backoff <= 0:
            raise ValueError("base backoff must be positive")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.max_attempts < 0:
            raise ValueError("max_attempts cannot be negative")

    def backoff(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """Delay before retransmission number ``attempt`` (0-based)."""
        if attempt < 0:
            raise ValueError("attempt cannot be negative")
        delay = self.base_backoff * (self.multiplier ** attempt)
        if rng is not None and self.jitter > 0:
            delay *= rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)
        return delay

    def exhausted(self, attempt: int) -> bool:
        """True once ``attempt`` retransmissions have been spent."""
        return attempt >= self.max_attempts


#: A sane default for simulations with ~15 s block times.
DEFAULT_RETRY_POLICY = RetryPolicy()
