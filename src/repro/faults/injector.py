"""The fault injector: replays a chaos plan against a live overlay.

:class:`FaultInjector` binds a :class:`~repro.faults.plan.ChaosPlan`
to a :class:`~repro.network.simulator.Simulator` and a
:class:`~repro.network.gossip.GossipNetwork`: every fault event is
scheduled on the simulation clock and applied exactly when simulated
time reaches it, interleaved deterministically with the workload's own
traffic.  Crashes and restarts go through the node lifecycle
(:meth:`~repro.network.node.Node.crash` /
:meth:`~repro.network.node.Node.restart`), so restart recovery hooks —
chain resync, mempool revalidation — fire exactly as they would in a
real process coming back up.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.faults.plan import DISK_FAULTS, ChaosPlan, FaultEvent, FaultKind
from repro.network.gossip import GossipNetwork
from repro.network.simulator import Simulator
from repro.store.faultinject import (
    drop_index_file,
    drop_snapshots,
    flip_bit,
    tear_frame,
)
from repro.telemetry import NULL_TELEMETRY, Telemetry

__all__ = ["FaultInjector"]


class FaultInjector:
    """Schedules and applies a chaos plan.

    The injector keeps an applied-fault log (time, description) so
    gauntlet reports can interleave faults with invariant outcomes.
    """

    def __init__(
        self,
        simulator: Simulator,
        network: GossipNetwork,
        plan: ChaosPlan,
        rng: Optional[random.Random] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.simulator = simulator
        self.network = network
        self.plan = plan
        self._rng = rng if rng is not None else random.Random(0)
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.log: List[Tuple[float, str]] = []
        self.faults_applied = 0
        self._armed = False

    def arm(self) -> int:
        """Schedule every plan event on the simulator; returns the count.

        Events are scheduled at absolute plan times; arming twice is an
        error (the plan would double-apply).  The plan's crash/restart
        ordering is validated first — a restart without a preceding
        crash, or a crash of an already-down node, is a plan bug and
        raises ValueError here rather than silently firing no-op
        lifecycle events mid-run.
        """
        if self._armed:
            raise RuntimeError("injector is already armed")
        self.plan.validate()
        self._armed = True
        for event in self.plan.events:
            self.simulator.schedule_at(
                max(event.at, self.simulator.now), self._apply, event
            )
        return len(self.plan.events)

    # -- application --------------------------------------------------------

    def _apply(self, event: FaultEvent) -> None:
        kind = event.kind
        if kind is FaultKind.CRASH:
            for name in event.targets[0]:
                self.network.crash_node(name)
        elif kind is FaultKind.RESTART:
            for name in event.targets[0]:
                self.network.restart_node(name)
        elif kind is FaultKind.PARTITION:
            side_a, side_b = event.targets
            self.network.partition(side_a, side_b)
        elif kind is FaultKind.HEAL_PARTITION:
            side_a, side_b = event.targets
            for a in side_a:
                for b in side_b:
                    self.network.heal_link(a, b)
        elif kind is FaultKind.SET_LOSS:
            self.network.loss_rate = event.value
        elif kind is FaultKind.SET_DUPLICATION:
            self.network.duplication_rate = event.value
        elif kind is FaultKind.DELAY_SPIKE:
            max_extra = event.value
            self.network.extra_delay = (
                lambda _src, _dst, rng, _cap=max_extra: rng.uniform(0.0, _cap)
            )
        elif kind is FaultKind.CLEAR_DELAY_SPIKE:
            self.network.extra_delay = None
        elif kind in DISK_FAULTS:
            self._apply_disk_fault(event)
        else:  # pragma: no cover - enum is exhaustive
            raise ValueError(f"unknown fault kind {kind!r}")
        self.faults_applied += 1
        self.log.append((self.simulator.now, event.describe()))
        if self.telemetry.enabled:
            self.telemetry.counter("faults.injected", kind=kind.name.lower()).inc()
            self.telemetry.event("fault.injected", fault=event.describe())

    def _apply_disk_fault(self, event: FaultEvent) -> None:
        """Corrupt the target nodes' durable stores (they must exist).

        Plan validation already guarantees the node is down; real disk
        corruption happens *behind* a dead process, and the damage only
        surfaces when the restart's store recovery scans the log.
        """
        params = event.params
        for name in event.targets[0]:
            node = self.network.node(name)
            store = getattr(node, "store", None)
            if store is None:
                raise ValueError(
                    f"{event.kind.value} targets {name!r}, which has no "
                    "durable store attached"
                )
            if event.kind is FaultKind.TORN_WRITE:
                tear_frame(
                    store,
                    frame_index=params[0] if params else -1,
                    keep_bytes=params[1] if len(params) > 1 else -1,
                )
            elif event.kind is FaultKind.BIT_FLIP:
                flip_bit(
                    store,
                    frame_index=params[0] if params else -1,
                    bit=params[1] if len(params) > 1 else -1,
                )
            elif event.kind is FaultKind.DROP_SNAPSHOT:
                drop_snapshots(
                    store, keep_oldest=params[0] if params else 0
                )
            elif event.kind is FaultKind.DROP_INDEX:
                drop_index_file(store)
            else:  # pragma: no cover - DISK_FAULTS is exhaustive
                raise ValueError(f"unknown disk fault {event.kind!r}")

    # -- views ---------------------------------------------------------------

    def describe_log(self) -> str:
        """The applied faults, one per line."""
        return "\n".join(description for _, description in self.log)
