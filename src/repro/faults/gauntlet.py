"""The chaos gauntlet: the full SmartCrowd workflow under injected faults.

One gauntlet run builds a :class:`~repro.core.stakeholders.DecentralizedDeployment`
(real two-phase report traffic, per-replica chains, on-chain contracts),
arms a seeded :class:`~repro.faults.plan.ChaosPlan` over it — node
crashes and restarts, message loss, duplication, delay spikes, and a
timed two-way partition — lets the system run through the chaos, then
gives it a quiet settling window and checks:

* every :class:`~repro.faults.invariants.InvariantChecker` invariant
  (ledger conservation, unique confirmed reports, single-tip
  convergence, insurance accounting);
* the retry acceptance criterion — every detailed report a detector
  published lands on the canonical chain **exactly once**, despite
  crashes, drops, and retransmissions.
"""

from __future__ import annotations

import random
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.chain.ledger import LedgerStateMachine
from repro.chain.pow import PAPER_HASHPOWER_SHARES
from repro.core.distributed import DistributedChain
from repro.core.stakeholders import DecentralizedDeployment
from repro.detection import build_detector_fleet, build_system
from repro.faults.injector import FaultInjector
from repro.faults.invariants import (
    InvariantChecker,
    InvariantReport,
    confirmed_chain_bytes,
)
from repro.faults.plan import ChaosPlan
from repro.faults.retry import RetryPolicy
from repro.store import fsck
from repro.telemetry import NULL_TELEMETRY, Telemetry

__all__ = [
    "DISK_SCENARIOS",
    "DiskGauntletResult",
    "GauntletConfig",
    "GauntletResult",
    "run_disk_fault_gauntlet",
    "run_disk_fault_suite",
    "run_gauntlet",
    "run_many",
]


@dataclass(frozen=True)
class GauntletConfig:
    """Everything one gauntlet run depends on, for reproducibility."""

    seed: int = 0
    detector_threads: Tuple[int, ...] = (2, 5, 8)
    vulnerability_count: int = 3
    #: chaos window: faults are injected in [0, chaos_duration)
    chaos_duration: float = 1800.0
    epoch: float = 120.0
    crash_probability: float = 0.2
    loss_rate: float = 0.10
    duplication_rate: float = 0.05
    delay_spike: float = 2.0
    partition: bool = True
    crash_detectors: bool = True
    #: a near-total outage window [burst_start, burst_end) that forces
    #: the detector retry path: reports gossiped into it reach nobody
    burst_loss_rate: float = 0.9
    burst_start: float = 90.0
    burst_end: float = 300.0
    #: announce a second release mid-chaos (just before the partition)
    #: so fresh reports ride through the split and the heal reorg
    second_announce: bool = True
    #: quiet time after the chaos window before invariants are checked
    settle_time: float = 900.0
    #: extra bounded convergence rounds (60 s each) if still unsettled
    max_settle_rounds: int = 40
    retry_policy: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            deadline=180.0, base_backoff=45.0, max_attempts=6
        )
    )

    def __post_init__(self) -> None:
        if self.chaos_duration <= 0 or self.settle_time < 0:
            raise ValueError("need positive chaos window and non-negative settle")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss rate must be in [0, 1)")
        if not 0.0 <= self.duplication_rate < 1.0:
            raise ValueError("duplication rate must be in [0, 1)")
        if not 0.0 <= self.burst_loss_rate < 1.0:
            raise ValueError("burst loss rate must be in [0, 1)")
        if self.burst_loss_rate > 0 and not (
            0 <= self.burst_start < self.burst_end <= self.chaos_duration
        ):
            raise ValueError("burst window must sit inside the chaos window")


@dataclass
class GauntletResult:
    """Outcome of one gauntlet run."""

    seed: int
    blocks_mined: int
    faults_applied: int
    fault_log: List[Tuple[float, str]]
    invariants: InvariantReport
    confirmed_reports: int
    missing_reports: List[str]
    duplicate_reports: List[str]
    converged: bool
    network: Dict[str, object]

    @property
    def ok(self) -> bool:
        """All invariants hold, each report on-chain exactly once."""
        return (
            self.invariants.ok
            and self.converged
            and not self.missing_reports
            and not self.duplicate_reports
        )

    def assert_ok(self) -> None:
        """Raise AssertionError with every problem if the run failed."""
        problems: List[str] = [str(v) for v in self.invariants.violations]
        if not self.converged:
            problems.append("replicas did not converge to a single tip")
        problems.extend(f"missing on-chain: {m}" for m in self.missing_reports)
        problems.extend(f"duplicated on-chain: {d}" for d in self.duplicate_reports)
        if problems:
            lines = "\n".join(f"  - {problem}" for problem in problems)
            raise AssertionError(f"gauntlet seed {self.seed} failed:\n{lines}")

    def render(self) -> str:
        """Human-readable run report."""
        lines = [
            f"gauntlet seed={self.seed}: "
            f"{'PASS' if self.ok else 'FAIL'} "
            f"({self.blocks_mined} blocks, {self.faults_applied} faults, "
            f"{self.confirmed_reports} reports confirmed exactly once)",
            f"  retries: {self.network.get('initial_retries', 0)} initial, "
            f"{self.network.get('detailed_retries', 0)} detailed; "
            f"resyncs: {self.network.get('resyncs_performed', 0)}; "
            f"records resubmitted after reorgs: "
            f"{self.network.get('records_resubmitted', 0)}",
            f"  transport: {self.network.get('messages_dropped', 0)} dropped, "
            f"{self.network.get('messages_duplicated', 0)} duplicated, "
            f"{self.network.get('messages_lost_to_crashes', 0)} lost to crashes",
        ]
        lines.append("  " + self.invariants.render().replace("\n", "\n  "))
        for missing in self.missing_reports:
            lines.append(f"  MISSING {missing}")
        for duplicate in self.duplicate_reports:
            lines.append(f"  DUPLICATE {duplicate}")
        return "\n".join(lines)


def _build_plan(config: GauntletConfig, deployment: DecentralizedDeployment,
                rng: random.Random) -> ChaosPlan:
    """The seeded chaos schedule for one run."""
    providers = list(deployment.providers)
    detectors = list(deployment.detectors)
    plan = ChaosPlan()
    end = config.chaos_duration
    if config.loss_rate > 0:
        plan.set_loss(config.loss_rate, at=0.0).set_loss(0.0, at=end)
    if config.burst_loss_rate > 0:
        plan.set_loss(config.burst_loss_rate, at=config.burst_start)
        plan.set_loss(config.loss_rate, at=config.burst_end)
    if config.duplication_rate > 0:
        plan.set_duplication(config.duplication_rate, at=0.0)
        plan.set_duplication(0.0, at=end)
    if config.delay_spike > 0:
        plan.delay_spike(config.delay_spike, at=0.0, until=end)
    if config.partition:
        # One timed two-way split with hashpower on both sides.
        side_a = tuple(providers[::2]) + tuple(detectors[::2])
        side_b = tuple(providers[1::2]) + tuple(detectors[1::2])
        plan.partition(side_a, side_b, at=end * 0.35, heal_at=end * 0.55)
    crashable = providers + (detectors if config.crash_detectors else [])
    random_part = ChaosPlan.random(
        crashable,
        duration=config.chaos_duration,
        epoch=config.epoch,
        crash_probability=config.crash_probability,
        rng=rng,
    )
    plan.events.extend(random_part.events)
    return plan.sort()


def _unsettled_reports(deployment: DecentralizedDeployment) -> bool:
    """True while some published R* has not been confirmed on-chain."""
    for detector in deployment.detectors.values():
        for initial_id in detector._pending_detailed:
            if initial_id not in detector._published:
                if initial_id in detector._record_heights:
                    return True  # R† mined, burial depth still pending
        if detector._awaiting_detailed:
            return True
    return False


def run_gauntlet(
    config: Optional[GauntletConfig] = None,
    telemetry: Optional[Telemetry] = None,
) -> GauntletResult:
    """One full chaos gauntlet run; deterministic in ``config.seed``.

    Pass a :class:`~repro.telemetry.Telemetry` to capture metrics and a
    simulation-clock trace of the run (faults injected vs transport
    effects observed, post-heal convergence time, a summary event);
    telemetry never draws from the RNGs, so an instrumented run follows
    the exact trajectory of an uninstrumented one for the same seed.
    """
    config = config if config is not None else GauntletConfig()
    telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
    rng = random.Random(config.seed)

    deployment = DecentralizedDeployment(
        PAPER_HASHPOWER_SHARES,
        build_detector_fleet(
            thread_counts=config.detector_threads, seed=config.seed
        ),
        seed=config.seed,
        # Keep the bounty window open through chaos + settling so late
        # (retried) reports are still judged on their merits.
        detection_window=config.chaos_duration + config.settle_time + 3600.0,
        retry_policy=config.retry_policy,
        telemetry=telemetry,
    )
    system = build_system(
        f"gauntlet-{config.seed}",
        vulnerability_count=config.vulnerability_count,
        rng=random.Random(config.seed + 1),
    )
    deployment.announce("provider-1", system)

    plan = _build_plan(config, deployment, rng)
    injector = FaultInjector(
        deployment.simulator, deployment.network, plan,
        rng=random.Random(config.seed + 2),
        telemetry=telemetry,
    )
    injector.arm()

    horizon = config.chaos_duration + config.settle_time
    mined = 0
    if config.second_announce:
        # Second release just ahead of the partition: its reports are
        # submitted into the split and must survive the heal reorg.
        second_at = config.chaos_duration * 0.33
        mined += deployment.advance_for(second_at)
        announcer = next(
            (p for p in deployment.providers.values() if not p.crashed), None
        )
        if announcer is not None:
            deployment.announce(
                announcer.name,
                build_system(
                    f"gauntlet-{config.seed}-b",
                    vulnerability_count=config.vulnerability_count,
                    rng=random.Random(config.seed + 3),
                ),
            )
        mined += deployment.advance_for(horizon - second_at)
    else:
        mined += deployment.advance_for(horizon)
    # Bounded extra rounds: keep mining quietly until every replica
    # agrees on one tip and every published report is confirmed.
    converged_at: Optional[float] = None
    for _ in range(config.max_settle_rounds):
        deployment.simulator.advance()
        if deployment.converged() and not _unsettled_reports(deployment):
            converged_at = deployment.simulator.now
            break
        mined += deployment.advance_for(60.0)
    deployment.simulator.advance()
    if converged_at is None and deployment.converged():
        converged_at = deployment.simulator.now

    checker = InvariantChecker.for_deployment(deployment)
    invariants = checker.run_all()

    confirmed = 0
    missing: List[str] = []
    duplicates: List[str] = []
    for name, detector in sorted(deployment.detectors.items()):
        for detailed_id in sorted(detector.detailed_ids):
            counts = checker.record_occurrences(detailed_id)
            label = f"{name} R* {detailed_id.hex()[:12]}"
            if any(count > 1 for count in counts.values()):
                duplicates.append(f"{label} counts={counts}")
            elif any(count == 0 for count in counts.values()):
                missing.append(f"{label} counts={counts}")
            else:
                confirmed += 1

    network = deployment.summary()
    if telemetry.enabled:
        # Injected vs observed: faults.injected counters record what the
        # plan did; the gossip.messages counters record what the
        # transport actually dropped/duplicated under those faults.
        telemetry.gauge("gauntlet.faults_applied").set(injector.faults_applied)
        if converged_at is not None:
            # Upper bound at settle-round granularity: the first point
            # we *observe* a single tip, not the instant it formed.
            telemetry.gauge("gauntlet.post_heal_convergence_seconds").set(
                max(0.0, converged_at - config.chaos_duration)
            )
        telemetry.event(
            "gauntlet.summary",
            seed=config.seed,
            blocks_mined=mined,
            faults_injected=injector.faults_applied,
            messages_dropped=network.get("messages_dropped", 0),
            messages_duplicated=network.get("messages_duplicated", 0),
            messages_lost_to_crashes=network.get(
                "messages_lost_to_crashes", 0
            ),
            confirmed_reports=confirmed,
            converged=deployment.converged(),
        )

    return GauntletResult(
        seed=config.seed,
        blocks_mined=mined,
        faults_applied=injector.faults_applied,
        fault_log=list(injector.log),
        invariants=invariants,
        confirmed_reports=confirmed,
        missing_reports=missing,
        duplicate_reports=duplicates,
        converged=deployment.converged(),
        network=network,
    )


def run_many(seeds: Tuple[int, ...] = (0, 1, 2), **overrides) -> List[GauntletResult]:
    """Run the gauntlet across seeds (the ≥3-seed acceptance sweep)."""
    results = []
    for seed in seeds:
        results.append(run_gauntlet(GauntletConfig(seed=seed, **overrides)))
    return results


# -- disk-fault gauntlet ------------------------------------------------------

#: The three on-disk corruption shapes the store must survive.
DISK_SCENARIOS: Tuple[str, ...] = ("torn_write", "bit_flip", "drop_snapshot")


@dataclass
class DiskGauntletResult:
    """Outcome of one store-backed crash/corrupt/recover run."""

    seed: int
    scenario: str
    victim: str
    blocks_mined: int
    faults_applied: int
    fault_log: List[Tuple[float, str]]
    #: fsck ran against the corrupted store while the victim was down.
    corruption_detected: bool
    corruption_kinds: List[str]
    store_recoveries: int
    #: Post-heal: confirmed canonical prefix byte-identical to a
    #: never-crashed replica's.
    chain_match: bool
    #: Post-heal: store-replayed ledger equals a from-genesis replay.
    ledger_match: bool
    #: Post-heal: fsck reports the recovered store clean.
    fsck_clean_after: bool
    converged: bool

    @property
    def ok(self) -> bool:
        """Corruption was detected, then fully healed."""
        return (
            self.corruption_detected
            and self.store_recoveries >= 1
            and self.chain_match
            and self.ledger_match
            and self.fsck_clean_after
            and self.converged
        )

    def assert_ok(self) -> None:
        """Raise AssertionError with every problem if the run failed."""
        problems: List[str] = []
        if not self.corruption_detected:
            problems.append(
                "fsck did not flag the corrupted store while the node was down"
            )
        if self.store_recoveries < 1:
            problems.append("restart never went through store recovery")
        if not self.chain_match:
            problems.append(
                "recovered confirmed chain differs from the never-crashed replica"
            )
        if not self.ledger_match:
            problems.append(
                "store-replayed ledger differs from a from-genesis replay"
            )
        if not self.fsck_clean_after:
            problems.append("fsck still reports issues after recovery")
        if not self.converged:
            problems.append("replicas did not converge to a single tip")
        if problems:
            lines = "\n".join(f"  - {problem}" for problem in problems)
            raise AssertionError(
                f"disk gauntlet seed {self.seed} "
                f"scenario {self.scenario!r} failed:\n{lines}"
            )

    def render(self) -> str:
        """Human-readable run report."""
        detected = ", ".join(self.corruption_kinds) or "none"
        return (
            f"disk gauntlet seed={self.seed} scenario={self.scenario}: "
            f"{'PASS' if self.ok else 'FAIL'} "
            f"({self.blocks_mined} blocks, {self.faults_applied} faults, "
            f"victim={self.victim}, detected=[{detected}], "
            f"recoveries={self.store_recoveries}, "
            f"chain_match={self.chain_match}, ledger_match={self.ledger_match}, "
            f"fsck_clean_after={self.fsck_clean_after})"
        )


def run_disk_fault_gauntlet(
    scenario: str,
    seed: int = 0,
    store_dir: Optional[str] = None,
    snapshot_interval: int = 4,
) -> DiskGauntletResult:
    """One store-backed crash/corrupt/recover run; deterministic in ``seed``.

    A five-replica :class:`~repro.core.distributed.DistributedChain`
    persists every replica to disk.  The plan crashes one victim, hits
    its (now process-less) store with the requested disk fault, and
    restarts it; while the victim is down an fsck probe must *detect*
    the injected corruption, and after the heal the recovered replica's
    confirmed chain must be byte-identical to a never-crashed one, its
    store-replayed ledger must equal a from-genesis replay, and fsck
    must come back clean.

    ``store_dir`` defaults to a fresh temp directory removed before
    returning; pass a path to keep the stores for inspection.
    """
    if scenario not in DISK_SCENARIOS:
        raise ValueError(
            f"unknown disk scenario {scenario!r}; pick one of {DISK_SCENARIOS}"
        )
    cleanup = store_dir is None
    root = (
        Path(tempfile.mkdtemp(prefix="repro-disk-gauntlet-"))
        if store_dir is None
        else Path(store_dir)
    )
    try:
        shares = {f"provider-{i}": 0.2 for i in range(1, 6)}
        fleet = DistributedChain(
            shares,
            mean_block_time=5.0,
            seed=seed,
            store_dir=str(root),
            store_snapshot_interval=snapshot_interval,
        )
        names = sorted(shares)
        victim = names[seed % len(names)]
        reference = next(name for name in names if name != victim)

        plan = ChaosPlan().crash(victim, at=150.0)
        if scenario == "torn_write":
            plan.torn_write(victim, at=170.0)
        elif scenario == "bit_flip":
            plan.bit_flip(victim, at=170.0)
        else:
            plan.drop_snapshot(victim, at=170.0)
        plan.restart(victim, at=230.0)
        injector = FaultInjector(
            fleet.simulator, fleet.network, plan, rng=random.Random(seed + 11)
        )
        injector.arm()

        victim_node = fleet.replicas[victim]
        assert victim_node.store is not None
        probe: Dict[str, object] = {}

        def _probe_down_store() -> None:
            # What an operator's fsck would see on the dead node's disk.
            report = fsck(victim_node.store.path)
            probe["ok"] = report.ok
            probe["kinds"] = sorted({issue.kind for issue in report.issues})

        fleet.simulator.schedule_at(200.0, _probe_down_store)

        while fleet.simulator.now < 420.0:
            fleet.step()
        fleet.finalize()

        machine = LedgerStateMachine()
        state, nonces = machine.replay(fleet.replicas[victim].chain)
        replay = victim_node.store.replay_ledger()
        ledger_match = (
            replay.state.snapshot() == state.snapshot()
            and replay.nonces == nonces
        )
        return DiskGauntletResult(
            seed=seed,
            scenario=scenario,
            victim=victim,
            blocks_mined=fleet.blocks_mined,
            faults_applied=injector.faults_applied,
            fault_log=list(injector.log),
            corruption_detected=probe.get("ok") is False,
            corruption_kinds=list(probe.get("kinds", [])),
            store_recoveries=victim_node.store_recoveries,
            chain_match=(
                confirmed_chain_bytes(fleet.replicas[victim].chain)
                == confirmed_chain_bytes(fleet.replicas[reference].chain)
                != b""
            ),
            ledger_match=ledger_match,
            fsck_clean_after=fsck(victim_node.store.path).ok,
            converged=fleet.converged(),
        )
    finally:
        if cleanup:
            shutil.rmtree(root, ignore_errors=True)


def run_disk_fault_suite(
    seeds: Tuple[int, ...] = (0, 1, 2),
    scenarios: Tuple[str, ...] = DISK_SCENARIOS,
) -> List[DiskGauntletResult]:
    """The acceptance sweep: every disk scenario under every seed."""
    results = []
    for scenario in scenarios:
        for seed in seeds:
            results.append(run_disk_fault_gauntlet(scenario, seed=seed))
    return results
