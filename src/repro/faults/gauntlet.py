"""The chaos gauntlet: the full SmartCrowd workflow under injected faults.

One gauntlet run builds a :class:`~repro.core.stakeholders.DecentralizedDeployment`
(real two-phase report traffic, per-replica chains, on-chain contracts),
arms a seeded :class:`~repro.faults.plan.ChaosPlan` over it — node
crashes and restarts, message loss, duplication, delay spikes, and a
timed two-way partition — lets the system run through the chaos, then
gives it a quiet settling window and checks:

* every :class:`~repro.faults.invariants.InvariantChecker` invariant
  (ledger conservation, unique confirmed reports, single-tip
  convergence, insurance accounting);
* the retry acceptance criterion — every detailed report a detector
  published lands on the canonical chain **exactly once**, despite
  crashes, drops, and retransmissions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.chain.pow import PAPER_HASHPOWER_SHARES
from repro.core.stakeholders import DecentralizedDeployment
from repro.detection import build_detector_fleet, build_system
from repro.faults.injector import FaultInjector
from repro.faults.invariants import InvariantChecker, InvariantReport
from repro.faults.plan import ChaosPlan
from repro.faults.retry import RetryPolicy
from repro.telemetry import NULL_TELEMETRY, Telemetry

__all__ = ["GauntletConfig", "GauntletResult", "run_gauntlet", "run_many"]


@dataclass(frozen=True)
class GauntletConfig:
    """Everything one gauntlet run depends on, for reproducibility."""

    seed: int = 0
    detector_threads: Tuple[int, ...] = (2, 5, 8)
    vulnerability_count: int = 3
    #: chaos window: faults are injected in [0, chaos_duration)
    chaos_duration: float = 1800.0
    epoch: float = 120.0
    crash_probability: float = 0.2
    loss_rate: float = 0.10
    duplication_rate: float = 0.05
    delay_spike: float = 2.0
    partition: bool = True
    crash_detectors: bool = True
    #: a near-total outage window [burst_start, burst_end) that forces
    #: the detector retry path: reports gossiped into it reach nobody
    burst_loss_rate: float = 0.9
    burst_start: float = 90.0
    burst_end: float = 300.0
    #: announce a second release mid-chaos (just before the partition)
    #: so fresh reports ride through the split and the heal reorg
    second_announce: bool = True
    #: quiet time after the chaos window before invariants are checked
    settle_time: float = 900.0
    #: extra bounded convergence rounds (60 s each) if still unsettled
    max_settle_rounds: int = 40
    retry_policy: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            deadline=180.0, base_backoff=45.0, max_attempts=6
        )
    )

    def __post_init__(self) -> None:
        if self.chaos_duration <= 0 or self.settle_time < 0:
            raise ValueError("need positive chaos window and non-negative settle")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss rate must be in [0, 1)")
        if not 0.0 <= self.duplication_rate < 1.0:
            raise ValueError("duplication rate must be in [0, 1)")
        if not 0.0 <= self.burst_loss_rate < 1.0:
            raise ValueError("burst loss rate must be in [0, 1)")
        if self.burst_loss_rate > 0 and not (
            0 <= self.burst_start < self.burst_end <= self.chaos_duration
        ):
            raise ValueError("burst window must sit inside the chaos window")


@dataclass
class GauntletResult:
    """Outcome of one gauntlet run."""

    seed: int
    blocks_mined: int
    faults_applied: int
    fault_log: List[Tuple[float, str]]
    invariants: InvariantReport
    confirmed_reports: int
    missing_reports: List[str]
    duplicate_reports: List[str]
    converged: bool
    network: Dict[str, object]

    @property
    def ok(self) -> bool:
        """All invariants hold, each report on-chain exactly once."""
        return (
            self.invariants.ok
            and self.converged
            and not self.missing_reports
            and not self.duplicate_reports
        )

    def assert_ok(self) -> None:
        """Raise AssertionError with every problem if the run failed."""
        problems: List[str] = [str(v) for v in self.invariants.violations]
        if not self.converged:
            problems.append("replicas did not converge to a single tip")
        problems.extend(f"missing on-chain: {m}" for m in self.missing_reports)
        problems.extend(f"duplicated on-chain: {d}" for d in self.duplicate_reports)
        if problems:
            lines = "\n".join(f"  - {problem}" for problem in problems)
            raise AssertionError(f"gauntlet seed {self.seed} failed:\n{lines}")

    def render(self) -> str:
        """Human-readable run report."""
        lines = [
            f"gauntlet seed={self.seed}: "
            f"{'PASS' if self.ok else 'FAIL'} "
            f"({self.blocks_mined} blocks, {self.faults_applied} faults, "
            f"{self.confirmed_reports} reports confirmed exactly once)",
            f"  retries: {self.network.get('initial_retries', 0)} initial, "
            f"{self.network.get('detailed_retries', 0)} detailed; "
            f"resyncs: {self.network.get('resyncs_performed', 0)}; "
            f"records resubmitted after reorgs: "
            f"{self.network.get('records_resubmitted', 0)}",
            f"  transport: {self.network.get('messages_dropped', 0)} dropped, "
            f"{self.network.get('messages_duplicated', 0)} duplicated, "
            f"{self.network.get('messages_lost_to_crashes', 0)} lost to crashes",
        ]
        lines.append("  " + self.invariants.render().replace("\n", "\n  "))
        for missing in self.missing_reports:
            lines.append(f"  MISSING {missing}")
        for duplicate in self.duplicate_reports:
            lines.append(f"  DUPLICATE {duplicate}")
        return "\n".join(lines)


def _build_plan(config: GauntletConfig, deployment: DecentralizedDeployment,
                rng: random.Random) -> ChaosPlan:
    """The seeded chaos schedule for one run."""
    providers = list(deployment.providers)
    detectors = list(deployment.detectors)
    plan = ChaosPlan()
    end = config.chaos_duration
    if config.loss_rate > 0:
        plan.set_loss(config.loss_rate, at=0.0).set_loss(0.0, at=end)
    if config.burst_loss_rate > 0:
        plan.set_loss(config.burst_loss_rate, at=config.burst_start)
        plan.set_loss(config.loss_rate, at=config.burst_end)
    if config.duplication_rate > 0:
        plan.set_duplication(config.duplication_rate, at=0.0)
        plan.set_duplication(0.0, at=end)
    if config.delay_spike > 0:
        plan.delay_spike(config.delay_spike, at=0.0, until=end)
    if config.partition:
        # One timed two-way split with hashpower on both sides.
        side_a = tuple(providers[::2]) + tuple(detectors[::2])
        side_b = tuple(providers[1::2]) + tuple(detectors[1::2])
        plan.partition(side_a, side_b, at=end * 0.35, heal_at=end * 0.55)
    crashable = providers + (detectors if config.crash_detectors else [])
    random_part = ChaosPlan.random(
        crashable,
        duration=config.chaos_duration,
        epoch=config.epoch,
        crash_probability=config.crash_probability,
        rng=rng,
    )
    plan.events.extend(random_part.events)
    return plan.sort()


def _unsettled_reports(deployment: DecentralizedDeployment) -> bool:
    """True while some published R* has not been confirmed on-chain."""
    for detector in deployment.detectors.values():
        for initial_id in detector._pending_detailed:
            if initial_id not in detector._published:
                if initial_id in detector._record_heights:
                    return True  # R† mined, burial depth still pending
        if detector._awaiting_detailed:
            return True
    return False


def run_gauntlet(
    config: Optional[GauntletConfig] = None,
    telemetry: Optional[Telemetry] = None,
) -> GauntletResult:
    """One full chaos gauntlet run; deterministic in ``config.seed``.

    Pass a :class:`~repro.telemetry.Telemetry` to capture metrics and a
    simulation-clock trace of the run (faults injected vs transport
    effects observed, post-heal convergence time, a summary event);
    telemetry never draws from the RNGs, so an instrumented run follows
    the exact trajectory of an uninstrumented one for the same seed.
    """
    config = config if config is not None else GauntletConfig()
    telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
    rng = random.Random(config.seed)

    deployment = DecentralizedDeployment(
        PAPER_HASHPOWER_SHARES,
        build_detector_fleet(
            thread_counts=config.detector_threads, seed=config.seed
        ),
        seed=config.seed,
        # Keep the bounty window open through chaos + settling so late
        # (retried) reports are still judged on their merits.
        detection_window=config.chaos_duration + config.settle_time + 3600.0,
        retry_policy=config.retry_policy,
        telemetry=telemetry,
    )
    system = build_system(
        f"gauntlet-{config.seed}",
        vulnerability_count=config.vulnerability_count,
        rng=random.Random(config.seed + 1),
    )
    deployment.announce("provider-1", system)

    plan = _build_plan(config, deployment, rng)
    injector = FaultInjector(
        deployment.simulator, deployment.network, plan,
        rng=random.Random(config.seed + 2),
        telemetry=telemetry,
    )
    injector.arm()

    horizon = config.chaos_duration + config.settle_time
    mined = 0
    if config.second_announce:
        # Second release just ahead of the partition: its reports are
        # submitted into the split and must survive the heal reorg.
        second_at = config.chaos_duration * 0.33
        mined += deployment.advance_for(second_at)
        announcer = next(
            (p for p in deployment.providers.values() if not p.crashed), None
        )
        if announcer is not None:
            deployment.announce(
                announcer.name,
                build_system(
                    f"gauntlet-{config.seed}-b",
                    vulnerability_count=config.vulnerability_count,
                    rng=random.Random(config.seed + 3),
                ),
            )
        mined += deployment.advance_for(horizon - second_at)
    else:
        mined += deployment.advance_for(horizon)
    # Bounded extra rounds: keep mining quietly until every replica
    # agrees on one tip and every published report is confirmed.
    converged_at: Optional[float] = None
    for _ in range(config.max_settle_rounds):
        deployment.simulator.advance()
        if deployment.converged() and not _unsettled_reports(deployment):
            converged_at = deployment.simulator.now
            break
        mined += deployment.advance_for(60.0)
    deployment.simulator.advance()
    if converged_at is None and deployment.converged():
        converged_at = deployment.simulator.now

    checker = InvariantChecker.for_deployment(deployment)
    invariants = checker.run_all()

    confirmed = 0
    missing: List[str] = []
    duplicates: List[str] = []
    for name, detector in sorted(deployment.detectors.items()):
        for detailed_id in sorted(detector.detailed_ids):
            counts = checker.record_occurrences(detailed_id)
            label = f"{name} R* {detailed_id.hex()[:12]}"
            if any(count > 1 for count in counts.values()):
                duplicates.append(f"{label} counts={counts}")
            elif any(count == 0 for count in counts.values()):
                missing.append(f"{label} counts={counts}")
            else:
                confirmed += 1

    network = deployment.summary()
    if telemetry.enabled:
        # Injected vs observed: faults.injected counters record what the
        # plan did; the gossip.messages counters record what the
        # transport actually dropped/duplicated under those faults.
        telemetry.gauge("gauntlet.faults_applied").set(injector.faults_applied)
        if converged_at is not None:
            # Upper bound at settle-round granularity: the first point
            # we *observe* a single tip, not the instant it formed.
            telemetry.gauge("gauntlet.post_heal_convergence_seconds").set(
                max(0.0, converged_at - config.chaos_duration)
            )
        telemetry.event(
            "gauntlet.summary",
            seed=config.seed,
            blocks_mined=mined,
            faults_injected=injector.faults_applied,
            messages_dropped=network.get("messages_dropped", 0),
            messages_duplicated=network.get("messages_duplicated", 0),
            messages_lost_to_crashes=network.get(
                "messages_lost_to_crashes", 0
            ),
            confirmed_reports=confirmed,
            converged=deployment.converged(),
        )

    return GauntletResult(
        seed=config.seed,
        blocks_mined=mined,
        faults_applied=injector.faults_applied,
        fault_log=list(injector.log),
        invariants=invariants,
        confirmed_reports=confirmed,
        missing_reports=missing,
        duplicate_reports=duplicates,
        converged=deployment.converged(),
        network=network,
    )


def run_many(seeds: Tuple[int, ...] = (0, 1, 2), **overrides) -> List[GauntletResult]:
    """Run the gauntlet across seeds (the ≥3-seed acceptance sweep)."""
    results = []
    for seed in seeds:
        results.append(run_gauntlet(GauntletConfig(seed=seed, **overrides)))
    return results
