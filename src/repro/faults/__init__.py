"""Fault injection, recovery, and post-chaos invariants (§V-C).

The chaos harness for the SmartCrowd reproduction: declarative fault
schedules (:mod:`~repro.faults.plan`), a deterministic injector
(:mod:`~repro.faults.injector`), the detector-side retry policy for
the two-phase report submission (:mod:`~repro.faults.retry`), the
post-heal invariant sweep (:mod:`~repro.faults.invariants`), and the
end-to-end chaos gauntlets — workload chaos and disk-fault recovery —
(:mod:`~repro.faults.gauntlet`).
"""

from repro.faults.gauntlet import (
    DISK_SCENARIOS,
    DiskGauntletResult,
    GauntletConfig,
    GauntletResult,
    run_disk_fault_gauntlet,
    run_disk_fault_suite,
    run_gauntlet,
    run_many,
)
from repro.faults.injector import FaultInjector
from repro.faults.invariants import (
    InvariantChecker,
    InvariantReport,
    InvariantViolation,
    confirmed_chain_bytes,
)
from repro.faults.plan import DISK_FAULTS, ChaosPlan, FaultEvent, FaultKind
from repro.faults.retry import DEFAULT_RETRY_POLICY, RetryPolicy

__all__ = [
    "ChaosPlan",
    "DEFAULT_RETRY_POLICY",
    "DISK_FAULTS",
    "DISK_SCENARIOS",
    "DiskGauntletResult",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "GauntletConfig",
    "GauntletResult",
    "InvariantChecker",
    "InvariantReport",
    "InvariantViolation",
    "RetryPolicy",
    "confirmed_chain_bytes",
    "run_disk_fault_gauntlet",
    "run_disk_fault_suite",
    "run_gauntlet",
    "run_many",
]
